//! Table 4: updates — swapping adjacent buffer positions vs. adjacent keys,
//! refitting update vs. full rebuild.
//!
//! The paper's findings, all reproduced by this experiment:
//!
//! 1. update time is independent of the number of applied swaps (the whole
//!    buffer is passed to the update routine either way),
//! 2. updating (refitting) is cheaper than rebuilding,
//! 3. swapping adjacent *positions* of a shuffled buffer moves primitives far
//!    and degrades lookup time badly as the number of swaps grows, while
//!    swapping adjacent *keys* barely changes the geometry and leaves lookup
//!    time intact.

use rtindex_core::{RtIndex, RtIndexConfig};
use rtx_workloads as wl;

use crate::report::{fmt_ms, Table};
use crate::scale::ExperimentScale;

/// Applies `swaps` swaps of adjacent buffer positions.
pub fn swap_adjacent_positions(keys: &mut [u64], swaps: usize) {
    for pair in 0..swaps.min(keys.len() / 2) {
        keys.swap(2 * pair, 2 * pair + 1);
    }
}

/// Applies `swaps` swaps of rank-adjacent keys (key k <-> key k+1), which on
/// a dense key set changes each affected key by ±1.
pub fn swap_adjacent_keys(keys: &mut [u64], swaps: usize) {
    let n = keys.len() as u64;
    let mut position_of = vec![0usize; keys.len()];
    for (pos, &k) in keys.iter().enumerate() {
        position_of[k as usize] = pos;
    }
    for pair in 0..swaps.min(keys.len() / 2) {
        let a = (2 * pair) as u64;
        let b = a + 1;
        if b >= n {
            break;
        }
        let pa = position_of[a as usize];
        let pb = position_of[b as usize];
        keys.swap(pa, pb);
        position_of.swap(a as usize, b as usize);
    }
}

struct UpdateRun {
    update_ms: f64,
    lookup_ms: f64,
}

fn run_update_workload(scale: &ExperimentScale, swaps: usize, swap_positions: bool) -> UpdateRun {
    let device = crate::scaled_device(scale);
    let n = scale.default_keys();
    let mut keys = wl::dense_shuffled(n, scale.seed);
    let lookups = wl::point_lookups(&keys, scale.default_lookups(), scale.seed + 1);

    let mut index =
        RtIndex::build(&device, &keys, RtIndexConfig::default().updatable()).expect("build");
    if swap_positions {
        swap_adjacent_positions(&mut keys, swaps);
    } else {
        swap_adjacent_keys(&mut keys, swaps);
    }
    index.update_keys(&keys).expect("update");
    let update_ms = index.build_metrics().simulated_time_s * 1e3;
    let out = index.point_lookup_batch(&lookups, None).expect("lookup");
    assert_eq!(out.hit_count(), lookups.len(), "updates must not lose keys");
    UpdateRun {
        update_ms,
        lookup_ms: out.metrics.simulated_time_s * 1e3,
    }
}

fn rebuild_reference(scale: &ExperimentScale) -> UpdateRun {
    let device = crate::scaled_device(scale);
    let n = scale.default_keys();
    let keys = wl::dense_shuffled(n, scale.seed);
    let lookups = wl::point_lookups(&keys, scale.default_lookups(), scale.seed + 1);
    let index = RtIndex::build(&device, &keys, RtIndexConfig::default()).expect("build");
    let out = index.point_lookup_batch(&lookups, None).expect("lookup");
    UpdateRun {
        update_ms: index.build_metrics().simulated_time_s * 1e3,
        lookup_ms: out.metrics.simulated_time_s * 1e3,
    }
}

/// Runs the update experiment.
pub fn run(scale: &ExperimentScale) -> Vec<Table> {
    let swap_counts: Vec<usize> = [4u32, 8, 12, scale.keys_exp.saturating_sub(2)]
        .iter()
        .map(|&e| 1usize << e)
        .collect();

    let mut table = Table::new(
        "Table 4: update and lookup time [ms] after swaps (refit) vs. full rebuild",
        &[
            "experiment",
            "phase",
            "2^4",
            "2^8",
            "2^12",
            "max swaps",
            "rebuild",
        ],
    );
    let rebuild = rebuild_reference(scale);

    for (label, swap_positions) in [("swap adj. positions", true), ("swap adj. keys", false)] {
        let runs: Vec<UpdateRun> = swap_counts
            .iter()
            .map(|&s| run_update_workload(scale, s, swap_positions))
            .collect();
        let mut update_row = vec![label.to_string(), "updates".to_string()];
        let mut lookup_row = vec![label.to_string(), "lookups".to_string()];
        for r in &runs {
            update_row.push(fmt_ms(r.update_ms));
            lookup_row.push(fmt_ms(r.lookup_ms));
        }
        update_row.push(fmt_ms(rebuild.update_ms));
        lookup_row.push(fmt_ms(rebuild.lookup_ms));
        table.push_row(update_row);
        table.push_row(lookup_row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_time_is_independent_of_swap_count_and_cheaper_than_rebuild() {
        let scale = ExperimentScale::tiny();
        let few = run_update_workload(&scale, 1 << 4, true);
        let many = run_update_workload(&scale, 1 << 10, true);
        let rebuild = rebuild_reference(&scale);
        let ratio = many.update_ms / few.update_ms;
        assert!(
            (0.8..1.25).contains(&ratio),
            "update cost must not depend on the swap count (ratio {ratio})"
        );
        assert!(
            few.update_ms < rebuild.update_ms,
            "refitting ({}) must be cheaper than rebuilding ({})",
            few.update_ms,
            rebuild.update_ms
        );
    }

    #[test]
    fn position_swaps_degrade_lookups_key_swaps_do_not() {
        let scale = ExperimentScale::tiny();
        let max_swaps = scale.default_keys() / 2;
        let positions = run_update_workload(&scale, max_swaps, true);
        let keys = run_update_workload(&scale, max_swaps, false);
        let rebuild = rebuild_reference(&scale);
        assert!(
            positions.lookup_ms > keys.lookup_ms * 1.2,
            "position swaps ({}) must hurt lookups much more than key swaps ({})",
            positions.lookup_ms,
            keys.lookup_ms
        );
        assert!(
            keys.lookup_ms < rebuild.lookup_ms * 1.5,
            "key swaps must keep lookups close to the rebuilt structure"
        );
    }

    #[test]
    fn swap_helpers_preserve_the_key_multiset() {
        let mut a: Vec<u64> = (0..64).rev().collect();
        let mut b = a.clone();
        swap_adjacent_positions(&mut a, 10);
        swap_adjacent_keys(&mut b, 10);
        let mut sa = a.clone();
        sa.sort_unstable();
        let mut sb = b.clone();
        sb.sort_unstable();
        assert_eq!(sa, (0..64).collect::<Vec<u64>>());
        assert_eq!(sb, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn smoke_table_shape() {
        let tables = run(&ExperimentScale::tiny());
        assert_eq!(tables[0].rows.len(), 4);
        assert_eq!(tables[0].headers.len(), 7);
    }
}
