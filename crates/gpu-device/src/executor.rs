//! Parallel "kernel" execution.
//!
//! A CUDA kernel launch spawns one logical thread per work item (one per
//! lookup in the raytracing pipeline). We execute those logical threads on a
//! pool of host worker threads: the grid is split into contiguous chunks, and
//! each worker runs the per-thread closure for its chunk while accumulating
//! counters in a private [`ThreadCtx`]. At the end, all contexts are merged
//! into a single [`KernelStats`] record, which mirrors how Nsight aggregates
//! per-kernel metrics.

use crate::profiler::KernelStats;

/// Per-logical-thread execution context: local counters that are merged into
/// the kernel's [`KernelStats`] after the launch.
#[derive(Debug, Default)]
pub struct ThreadCtx {
    /// Counters accumulated by this worker.
    pub stats: KernelStats,
}

impl ThreadCtx {
    /// Creates a fresh context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` executed instructions.
    #[inline]
    pub fn add_instructions(&mut self, n: u64) {
        self.stats.instructions += n;
    }

    /// Records a memory read of `bytes` that missed the caches.
    #[inline]
    pub fn add_dram_read(&mut self, bytes: u64) {
        self.stats.dram_bytes_read += bytes;
    }

    /// Records a memory read of `bytes` served by the L2 cache.
    #[inline]
    pub fn add_l2_read(&mut self, bytes: u64) {
        self.stats.l2_hit_bytes += bytes;
    }

    /// Records a memory read of `bytes` served by the L1 cache.
    #[inline]
    pub fn add_l1_read(&mut self, bytes: u64) {
        self.stats.l1_hit_bytes += bytes;
    }

    /// Records a memory write of `bytes`.
    #[inline]
    pub fn add_dram_write(&mut self, bytes: u64) {
        self.stats.dram_bytes_written += bytes;
    }
}

/// Number of host worker threads used to execute kernels.
///
/// Capped at 16 to keep per-test overhead reasonable; the logical-thread
/// semantics do not depend on this number.
pub fn worker_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// Executes `grid_size` logical threads of a kernel in parallel.
///
/// `body(ctx, thread_idx)` is called once per logical thread. Returns the
/// merged [`KernelStats`] with `threads_launched` and `kernel_launches`
/// filled in.
pub fn launch_kernel<F>(grid_size: usize, body: F) -> KernelStats
where
    F: Fn(&mut ThreadCtx, usize) + Sync,
{
    let mut merged = KernelStats {
        threads_launched: grid_size as u64,
        kernel_launches: 1,
        ..KernelStats::new()
    };
    if grid_size == 0 {
        return merged;
    }

    let workers = worker_count().min(grid_size);
    let chunk = grid_size.div_ceil(workers);
    let partials = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let body = &body;
            handles.push(scope.spawn(move |_| {
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(grid_size);
                let mut ctx = ThreadCtx::new();
                for i in start..end {
                    body(&mut ctx, i);
                }
                ctx.stats
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("kernel worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("kernel scope panicked");

    for p in partials {
        merged.merge(&p);
    }
    // merge() also added the zeroed launch bookkeeping of the partials; the
    // canonical values are set explicitly.
    merged.threads_launched = grid_size as u64;
    merged.kernel_launches = 1;
    merged
}

/// Executes `grid_size` logical threads that each produce one output value,
/// writing results into a caller-provided slice. This mirrors a CUDA kernel
/// writing to a result buffer indexed by thread id.
pub fn launch_kernel_with_output<T, F>(grid_size: usize, output: &mut [T], body: F) -> KernelStats
where
    T: Send,
    F: Fn(&mut ThreadCtx, usize) -> T + Sync,
{
    assert!(
        output.len() >= grid_size,
        "output buffer too small: {} < {}",
        output.len(),
        grid_size
    );
    let mut merged = KernelStats {
        threads_launched: grid_size as u64,
        kernel_launches: 1,
        ..KernelStats::new()
    };
    if grid_size == 0 {
        return merged;
    }

    let workers = worker_count().min(grid_size);
    let chunk = grid_size.div_ceil(workers);
    let out_chunks: Vec<&mut [T]> = output[..grid_size].chunks_mut(chunk).collect();

    let partials = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (w, out_chunk) in out_chunks.into_iter().enumerate() {
            let body = &body;
            handles.push(scope.spawn(move |_| {
                let start = w * chunk;
                let mut ctx = ThreadCtx::new();
                for (j, slot) in out_chunk.iter_mut().enumerate() {
                    *slot = body(&mut ctx, start + j);
                }
                ctx.stats
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("kernel worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("kernel scope panicked");

    for p in partials {
        merged.merge(&p);
    }
    merged.threads_launched = grid_size as u64;
    merged.kernel_launches = 1;
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn empty_launch_returns_bookkeeping_only() {
        let stats = launch_kernel(0, |_, _| panic!("must not run"));
        assert_eq!(stats.threads_launched, 0);
        assert_eq!(stats.kernel_launches, 1);
        assert_eq!(stats.instructions, 0);
    }

    #[test]
    fn every_logical_thread_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let n = 10_000;
        let stats = launch_kernel(n, |ctx, i| {
            counter.fetch_add(i as u64 + 1, Ordering::Relaxed);
            ctx.add_instructions(1);
        });
        assert_eq!(
            counter.load(Ordering::Relaxed),
            (n as u64) * (n as u64 + 1) / 2
        );
        assert_eq!(stats.instructions, n as u64);
        assert_eq!(stats.threads_launched, n as u64);
        assert_eq!(stats.kernel_launches, 1);
    }

    #[test]
    fn counters_are_merged_across_workers() {
        let stats = launch_kernel(1000, |ctx, _| {
            ctx.add_dram_read(64);
            ctx.add_l2_read(32);
            ctx.add_l1_read(16);
            ctx.add_dram_write(8);
            ctx.add_instructions(3);
        });
        assert_eq!(stats.dram_bytes_read, 64_000);
        assert_eq!(stats.l2_hit_bytes, 32_000);
        assert_eq!(stats.l1_hit_bytes, 16_000);
        assert_eq!(stats.dram_bytes_written, 8_000);
        assert_eq!(stats.instructions, 3_000);
    }

    #[test]
    fn output_kernel_writes_per_thread_results() {
        let n = 5000;
        let mut out = vec![0u64; n];
        let stats = launch_kernel_with_output(n, &mut out, |ctx, i| {
            ctx.add_instructions(1);
            (i as u64) * 2
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 * 2));
        assert_eq!(stats.instructions, n as u64);
    }

    #[test]
    fn output_kernel_with_fewer_items_than_buffer() {
        let mut out = vec![9u32; 10];
        let stats = launch_kernel_with_output(3, &mut out, |_, i| i as u32);
        assert_eq!(&out[..3], &[0, 1, 2]);
        assert_eq!(&out[3..], &[9; 7]);
        assert_eq!(stats.threads_launched, 3);
    }

    #[test]
    #[should_panic(expected = "output buffer too small")]
    fn output_kernel_rejects_small_buffer() {
        let mut out = vec![0u8; 2];
        let _ = launch_kernel_with_output(3, &mut out, |_, i| i as u8);
    }

    #[test]
    fn worker_count_is_positive_and_bounded() {
        let w = worker_count();
        assert!((1..=16).contains(&w));
    }
}
