//! Index configuration: the five design dimensions of Section 3.

use optix_sim::PrimitiveKind;
use rtx_bvh::BuilderKind;

use crate::key_mode::KeyMode;
use crate::ray_strategy::{PointRayStrategy, RangeRayStrategy};

/// Complete configuration of an [`RtIndex`](crate::index::RtIndex).
///
/// The default value is the configuration the paper selects after evaluating
/// all five design dimensions:
///
/// * 3D key mode with decomposition 23+23+18,
/// * triangle primitives (hardware intersection),
/// * perpendicular rays for point lookups,
/// * parallel-from-offset rays for range lookups,
/// * compacted BVH,
/// * updates via full rebuild (refitting disabled).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtIndexConfig {
    /// How keys become float32 coordinates.
    pub key_mode: KeyMode,
    /// Scene primitive per key.
    pub primitive: PrimitiveKind,
    /// Ray shape for point lookups.
    pub point_ray: PointRayStrategy,
    /// Ray shape for range lookups.
    pub range_ray: RangeRayStrategy,
    /// Whether to compact the BVH after building.
    pub compact: bool,
    /// Whether to allow refitting updates (disables compaction, as in OptiX).
    pub allow_update: bool,
    /// BVH construction algorithm of the simulated driver.
    pub builder: BuilderKind,
    /// Maximum primitives per BVH leaf.
    pub max_leaf_size: usize,
}

impl Default for RtIndexConfig {
    fn default() -> Self {
        RtIndexConfig {
            key_mode: KeyMode::three_d_default(),
            primitive: PrimitiveKind::Triangle,
            point_ray: PointRayStrategy::Perpendicular,
            range_ray: RangeRayStrategy::ParallelFromOffset,
            compact: true,
            allow_update: false,
            builder: BuilderKind::Lbvh,
            max_leaf_size: 4,
        }
    }
}

impl RtIndexConfig {
    /// The paper's selected configuration (same as `Default`).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Returns the configuration with a different key mode.
    pub fn with_key_mode(mut self, mode: KeyMode) -> Self {
        self.key_mode = mode;
        self
    }

    /// Returns the configuration with a different primitive kind.
    pub fn with_primitive(mut self, primitive: PrimitiveKind) -> Self {
        self.primitive = primitive;
        self
    }

    /// Returns the configuration with a different point-lookup ray strategy.
    pub fn with_point_ray(mut self, strategy: PointRayStrategy) -> Self {
        self.point_ray = strategy;
        self
    }

    /// Returns the configuration with a different range-lookup ray strategy.
    pub fn with_range_ray(mut self, strategy: RangeRayStrategy) -> Self {
        self.range_ray = strategy;
        self
    }

    /// Returns the configuration with compaction enabled or disabled.
    pub fn with_compaction(mut self, compact: bool) -> Self {
        self.compact = compact;
        self
    }

    /// Returns the configuration with refitting updates enabled (this also
    /// disables compaction, mirroring the OptiX flag interaction).
    pub fn updatable(mut self) -> Self {
        self.allow_update = true;
        self.compact = false;
        self
    }

    /// Returns the configuration with a different BVH builder.
    pub fn with_builder(mut self, builder: BuilderKind) -> Self {
        self.builder = builder;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::Decomposition;

    #[test]
    fn default_matches_paper_selection() {
        let c = RtIndexConfig::default();
        assert_eq!(c.key_mode, KeyMode::ThreeD(Decomposition::DEFAULT));
        assert_eq!(c.primitive, PrimitiveKind::Triangle);
        assert_eq!(c.point_ray, PointRayStrategy::Perpendicular);
        assert_eq!(c.range_ray, RangeRayStrategy::ParallelFromOffset);
        assert!(c.compact);
        assert!(!c.allow_update);
        assert_eq!(RtIndexConfig::paper_default(), c);
    }

    #[test]
    fn builder_style_setters() {
        let c = RtIndexConfig::default()
            .with_key_mode(KeyMode::Naive)
            .with_primitive(PrimitiveKind::Aabb)
            .with_point_ray(PointRayStrategy::ParallelFromZero)
            .with_range_ray(RangeRayStrategy::ParallelFromZero)
            .with_compaction(false)
            .with_builder(BuilderKind::Sah);
        assert_eq!(c.key_mode, KeyMode::Naive);
        assert_eq!(c.primitive, PrimitiveKind::Aabb);
        assert_eq!(c.point_ray, PointRayStrategy::ParallelFromZero);
        assert_eq!(c.range_ray, RangeRayStrategy::ParallelFromZero);
        assert!(!c.compact);
        assert_eq!(c.builder, BuilderKind::Sah);
    }

    #[test]
    fn updatable_disables_compaction() {
        let c = RtIndexConfig::default().updatable();
        assert!(c.allow_update);
        assert!(!c.compact);
    }
}
