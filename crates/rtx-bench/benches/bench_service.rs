//! Service-layer benchmarks: wall-clock throughput of the coalescing
//! multi-client service against per-batch serial submission.
//!
//! Each iteration pushes the same total operation volume through one
//! `RX@4` backend, either as small batches executed one at a time (the
//! no-service baseline) or as concurrent clients fanning into one
//! `QueryService` whose coalescer fuses them into large submissions. On
//! any host the coalesced path should win clearly from 8 clients up —
//! fused batches amortise the fixed per-submission cost (scatter/gather
//! planning and per-shard launches) that small batches pay in full. Set
//! `RTX_WORKERS` to pin the worker pool for reproducible comparisons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_device::Device;
use rtx_harness::experiments::service_throughput::client_batches;
use rtx_harness::registry;
use rtx_query::{IndexSpec, QueryBatch, SecondaryIndex};
use rtx_serve::{QueryService, ServiceConfig};
use rtx_workloads as wl;

const KEYS: usize = 1 << 15;
const BATCH_OPS: usize = 32;
const BATCHES_PER_CLIENT: usize = 8;
const CLIENT_COUNTS: [usize; 4] = [1, 4, 8, 16];

fn build_backend(spec: &IndexSpec<'_>) -> Box<dyn SecondaryIndex> {
    registry().build("RX@4", spec).expect("sharded build")
}

/// The per-client submission schedule of one iteration — the same workload
/// shape the `service_throughput` experiment (and the CI perf gate)
/// measures.
fn schedule(keys: &[u64], clients: usize) -> Vec<Vec<QueryBatch>> {
    client_batches(keys, clients, BATCH_OPS, BATCHES_PER_CLIENT, 90)
}

fn bench_serial_submission(c: &mut Criterion) {
    let device = Device::default_eval();
    let keys = wl::dense_shuffled(KEYS, 90);
    let values = wl::value_column(KEYS, 91);
    let spec = IndexSpec::with_values(&device, &keys, &values);
    let backend = build_backend(&spec);

    let mut group = c.benchmark_group("service/serial_submission");
    for clients in CLIENT_COUNTS {
        let batches = schedule(&keys, clients);
        let total_ops = clients * BATCHES_PER_CLIENT * BATCH_OPS;
        group.throughput(Throughput::Elements(total_ops as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(clients),
            &batches,
            |b, batches| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for round in 0..BATCHES_PER_CLIENT {
                        for client in batches {
                            hits += backend.execute(&client[round]).unwrap().hit_count();
                        }
                    }
                    hits
                })
            },
        );
    }
    group.finish();
}

fn bench_coalesced_service(c: &mut Criterion) {
    let device = Device::default_eval();
    let keys = wl::dense_shuffled(KEYS, 90);
    let values = wl::value_column(KEYS, 91);
    let spec = IndexSpec::with_values(&device, &keys, &values);

    let mut group = c.benchmark_group("service/coalesced");
    for clients in CLIENT_COUNTS {
        let service = QueryService::start(
            build_backend(&spec),
            ServiceConfig::new().with_linger(std::time::Duration::ZERO),
        );
        let batches = schedule(&keys, clients);
        let total_ops = clients * BATCHES_PER_CLIENT * BATCH_OPS;
        group.throughput(Throughput::Elements(total_ops as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(clients),
            &batches,
            |b, batches| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        let workers: Vec<_> = batches
                            .iter()
                            .map(|client| {
                                let handle = service.handle();
                                scope.spawn(move || {
                                    let mut hits = 0usize;
                                    for batch in client {
                                        hits += handle.query(batch.clone()).unwrap().hit_count();
                                    }
                                    hits
                                })
                            })
                            .collect();
                        workers
                            .into_iter()
                            .map(|w| w.join().unwrap())
                            .sum::<usize>()
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_serial_submission, bench_coalesced_service);
criterion_main!(benches);
