//! Range-lookup benchmarks: ray origin (Table 3), selectivity (Figure 17)
//! and decomposition (Figure 9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtindex_core::{Decomposition, KeyMode, RangeRayStrategy, RtIndex, RtIndexConfig};
use rtx_bench::BenchFixture;
use rtx_workloads as wl;

fn bench_selectivity(c: &mut Criterion) {
    let fixture = BenchFixture::default_size();
    let n = fixture.keys.len() as u64;
    let mut group = c.benchmark_group("rx_range_lookup_selectivity");
    for qualifying in [1u64, 16, 256] {
        let ranges = wl::range_lookups(n, 1 << 12, qualifying, 5);
        group.throughput(Throughput::Elements(ranges.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(qualifying), &ranges, |b, r| {
            b.iter(|| {
                fixture
                    .rx
                    .range_lookup_batch(r, Some(&fixture.values))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_ray_origin(c: &mut Criterion) {
    let fixture = BenchFixture::default_size();
    let n = fixture.keys.len() as u64;
    let ranges = wl::range_lookups(n, 1 << 12, 64, 6);
    let mut group = c.benchmark_group("rx_range_lookup_ray_origin");
    for strategy in [
        RangeRayStrategy::ParallelFromOffset,
        RangeRayStrategy::ParallelFromZero,
    ] {
        let index = RtIndex::build(
            &fixture.device,
            &fixture.keys,
            RtIndexConfig::default().with_range_ray(strategy),
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &ranges,
            |b, r| b.iter(|| index.range_lookup_batch(r, Some(&fixture.values)).unwrap()),
        );
    }
    group.finish();
}

fn bench_decomposition(c: &mut Criterion) {
    let fixture = BenchFixture::default_size();
    let n = fixture.keys.len() as u64;
    let ranges = wl::range_lookups(n, 1 << 11, 128, 7);
    let bits = 16u32;
    let mut group = c.benchmark_group("rx_range_lookup_decomposition");
    for decomposition in [
        Decomposition::new(bits - 3, 3, 0),
        Decomposition::new(8, bits - 8, 0),
    ] {
        let index = RtIndex::build(
            &fixture.device,
            &fixture.keys,
            RtIndexConfig::default().with_key_mode(KeyMode::ThreeD(decomposition)),
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(decomposition.label()),
            &ranges,
            |b, r| b.iter(|| index.range_lookup_batch(r, Some(&fixture.values)).unwrap()),
        );
    }
    group.finish();
}

/// Shared Criterion configuration: small sample counts and short measurement
/// windows keep `cargo bench --workspace` runnable in CI while still
/// producing stable medians for the simulated workloads.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_selectivity, bench_ray_origin, bench_decomposition
}
criterion_main!(benches);
