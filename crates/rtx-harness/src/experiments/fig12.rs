//! Figure 12: impact of sorted inserts and/or sorted lookups.
//!
//! Sorting the build keys does not change lookup time (every index reorders
//! keys internally anyway); sorting the lookup batch helps all indexes
//! because neighbouring lookups touch neighbouring parts of the structure.

use rtindex_core::RtIndexConfig;
use rtx_workloads as wl;

use crate::indexes::{build_all_indexes, measure_points};
use crate::report::{fmt_ms, Table};
use crate::scale::ExperimentScale;

/// The four combinations evaluated by the figure.
pub const COMBINATIONS: [&str; 4] = [
    "both unsorted",
    "sorted inserts",
    "sorted lookups",
    "both sorted",
];

/// Runs the sortedness experiment.
pub fn run(scale: &ExperimentScale) -> Vec<Table> {
    let device = crate::scaled_device(scale);
    let n = scale.default_keys();
    let unsorted_keys = wl::dense_shuffled(n, scale.seed);
    let sorted_keys = wl::keyset::dense_sorted(n);
    let unsorted_lookups =
        wl::point_lookups(&unsorted_keys, scale.default_lookups(), scale.seed + 1);
    let sorted_lookups = wl::lookups::sorted_lookups(&unsorted_lookups);

    let mut table = Table::new(
        "Figure 12: sorted keys / sorted point lookups, cumulative lookup time [ms]",
        &["combination", "HT", "B+", "SA", "RX"],
    );
    for combo in COMBINATIONS {
        let keys = if combo.contains("inserts") || combo == "both sorted" {
            &sorted_keys
        } else {
            &unsorted_keys
        };
        let lookups = if combo.contains("lookups") || combo == "both sorted" {
            &sorted_lookups
        } else {
            &unsorted_lookups
        };
        let values = wl::value_column(n, scale.seed + 7);
        let indexes = build_all_indexes(&device, keys, Some(&values), RtIndexConfig::default());
        let mut row = vec![combo.to_string()];
        for name in ["HT", "B+", "SA", "RX"] {
            let cell = indexes
                .iter()
                .find(|ix| ix.name() == name)
                .map(|ix| fmt_ms(measure_points(ix.as_ref(), lookups, true).sim_ms))
                .unwrap_or_else(|| "N/A".to_string());
            row.push(cell);
        }
        table.push_row(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_lookups_reduce_memory_traffic_for_rx() {
        // Use the scaled device so the index does not fit entirely into the
        // L2 cache at test size (as it does not at paper scale).
        let device = crate::scaled_device(&ExperimentScale::tiny());
        let keys = wl::dense_shuffled(1 << 14, 1);
        let values = wl::value_column(keys.len(), 2);
        let unsorted = wl::point_lookups(&keys, 1 << 14, 3);
        let sorted = wl::lookups::sorted_lookups(&unsorted);
        let index = rtindex_core::RtIndex::build(&device, &keys, RtIndexConfig::default()).unwrap();
        let out_unsorted = index.point_lookup_batch(&unsorted, Some(&values)).unwrap();
        let out_sorted = index.point_lookup_batch(&sorted, Some(&values)).unwrap();
        assert_eq!(out_unsorted.total_value_sum(), out_sorted.total_value_sum());
        assert!(
            out_sorted.metrics.kernel.dram_bytes_read < out_unsorted.metrics.kernel.dram_bytes_read,
            "sorted lookups must read less DRAM ({} vs {})",
            out_sorted.metrics.kernel.dram_bytes_read,
            out_unsorted.metrics.kernel.dram_bytes_read
        );
        assert!(out_sorted.metrics.simulated_time_s <= out_unsorted.metrics.simulated_time_s);
    }

    #[test]
    fn build_order_does_not_change_rx_lookup_time_much() {
        let device = crate::default_device();
        let n = 1 << 13;
        let unsorted_keys = wl::dense_shuffled(n, 1);
        let sorted_keys = wl::keyset::dense_sorted(n);
        let lookups = wl::point_lookups(&unsorted_keys, 1 << 13, 3);
        let a = rtindex_core::RtIndex::build(&device, &unsorted_keys, RtIndexConfig::default())
            .unwrap()
            .point_lookup_batch(&lookups, None)
            .unwrap();
        let b = rtindex_core::RtIndex::build(&device, &sorted_keys, RtIndexConfig::default())
            .unwrap()
            .point_lookup_batch(&lookups, None)
            .unwrap();
        let ratio = a.metrics.simulated_time_s / b.metrics.simulated_time_s;
        assert!(
            (0.5..2.0).contains(&ratio),
            "insert order must not matter much, ratio {ratio}"
        );
    }

    #[test]
    fn smoke_has_four_rows() {
        let tables = run(&ExperimentScale::tiny());
        assert_eq!(tables[0].rows.len(), 4);
    }
}
