//! [`QueryBatch`]: one submission mixing point lookups, range lookups and
//! an optional value-column fetch.
//!
//! The paper's methodology submits homogeneous batches (all points or all
//! ranges); real secondary-index traffic mixes both. A [`QueryBatch`]
//! preserves the submission order of a mixed stream while the executor
//! regroups the operations into homogeneous kernel launches — and, for
//! large submissions, splits every launch into bounded chunks
//! ([`QueryBatch::with_chunk_size`]) the way a real system bounds its
//! launch width and result-buffer footprint.

/// One operation of a [`QueryBatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOp {
    /// Point lookup of a key.
    Point(u64),
    /// Inclusive range lookup `[lower, upper]`.
    Range(u64, u64),
}

/// A batch of mixed lookups, built incrementally and executed through
/// [`SecondaryIndex::execute`](crate::index::SecondaryIndex::execute).
///
/// ```
/// use rtx_query::{QueryBatch, QueryOp};
///
/// let batch = QueryBatch::new()
///     .point(7)
///     .range(10, 19)
///     .points([1, 2])
///     .fetch_values(true)
///     .with_chunk_size(1024);
/// assert_eq!(batch.len(), 4);
/// assert_eq!(batch.point_count(), 3);
/// assert_eq!(batch.range_count(), 1);
/// assert_eq!(batch.ops()[1], QueryOp::Range(10, 19));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryBatch {
    ops: Vec<QueryOp>,
    fetch_values: bool,
    chunk_size: Option<usize>,
}

impl QueryBatch {
    /// An empty batch.
    pub fn new() -> Self {
        QueryBatch::default()
    }

    /// A batch of point lookups, one per query key.
    pub fn of_points(queries: &[u64]) -> Self {
        QueryBatch::new().points(queries.iter().copied())
    }

    /// A batch of inclusive range lookups.
    pub fn of_ranges(ranges: &[(u64, u64)]) -> Self {
        QueryBatch::new().ranges(ranges.iter().copied())
    }

    /// Appends one point lookup.
    pub fn point(mut self, key: u64) -> Self {
        self.ops.push(QueryOp::Point(key));
        self
    }

    /// Appends point lookups for every key of `queries`.
    pub fn points<I: IntoIterator<Item = u64>>(mut self, queries: I) -> Self {
        self.ops.extend(queries.into_iter().map(QueryOp::Point));
        self
    }

    /// Appends one inclusive range lookup `[lower, upper]`.
    pub fn range(mut self, lower: u64, upper: u64) -> Self {
        self.ops.push(QueryOp::Range(lower, upper));
        self
    }

    /// Appends an inclusive range lookup per `(lower, upper)` pair.
    pub fn ranges<I: IntoIterator<Item = (u64, u64)>>(mut self, ranges: I) -> Self {
        self.ops
            .extend(ranges.into_iter().map(|(l, u)| QueryOp::Range(l, u)));
        self
    }

    /// Appends every operation of `other`, preserving its order. This is the
    /// fuse primitive of cross-client batch coalescing
    /// ([`FusedBatch`](crate::fuse::FusedBatch)): many small submissions
    /// concatenate into one large one. Only the operations are taken —
    /// `other`'s value-fetch and chunk-size settings are the caller's to
    /// reconcile.
    pub fn append_ops(&mut self, other: &QueryBatch) {
        self.ops.extend_from_slice(other.ops());
    }

    /// Requests that every qualifying row's value be fetched and summed per
    /// operation (the paper's secondary-index methodology). Requires the
    /// index to have been built with a value column.
    pub fn fetch_values(mut self, fetch: bool) -> Self {
        self.fetch_values = fetch;
        self
    }

    /// Bounds the number of operations per kernel launch: each homogeneous
    /// run (points, ranges) is split into chunks of at most `chunk_size`
    /// operations, executed back to back with their metrics merged. Results
    /// are identical to unchunked execution. A chunk size of 0 means
    /// unbounded (the default).
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = (chunk_size > 0).then_some(chunk_size);
        self
    }

    /// The operations in submission order.
    pub fn ops(&self) -> &[QueryOp] {
        &self.ops
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the batch holds no operation.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of point lookups in the batch.
    pub fn point_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, QueryOp::Point(_)))
            .count()
    }

    /// Number of range lookups in the batch.
    pub fn range_count(&self) -> usize {
        self.len() - self.point_count()
    }

    /// Whether a value fetch was requested.
    pub fn fetches_values(&self) -> bool {
        self.fetch_values
    }

    /// The configured chunk size, or `None` for unbounded launches.
    pub fn chunk_size(&self) -> Option<usize> {
        self.chunk_size
    }
}

/// Structure-of-arrays layout of a mixed lookup stream.
///
/// A [`QueryBatch`] stores one `QueryOp` enum per operation, which the
/// executor must regroup into homogeneous point/range runs on every
/// execution. `QueryOps` does that regrouping **once, at build/fuse time**:
/// point keys and range bounds live in separate dense vectors, and the
/// original submission order is kept in a packed order-tag bitmap (bit set =
/// range). Executors consume the dense vectors directly; result scatter uses
/// the bitmap to walk slots in submission order without touching an enum.
///
/// All mutators work in place so a service can keep one `QueryOps` alive and
/// [`clear`](QueryOps::clear) it between submissions — steady state
/// re-fusing allocates nothing.
///
/// ```
/// use rtx_query::{QueryBatch, QueryOps, QueryOp};
///
/// let mut ops = QueryOps::new();
/// ops.push_point(7);
/// ops.push_range(10, 19);
/// ops.append_batch(&QueryBatch::new().points([1, 2]));
/// assert_eq!(ops.len(), 4);
/// assert_eq!(ops.points(), &[7, 1, 2]);
/// assert_eq!(ops.ranges(), &[(10, 19)]);
/// assert_eq!(ops.iter().nth(1), Some(QueryOp::Range(10, 19)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryOps {
    points: Vec<u64>,
    ranges: Vec<(u64, u64)>,
    /// Packed order tags: bit `i % 64` of word `i / 64` is set when the
    /// operation at submission slot `i` is a range lookup.
    tags: Vec<u64>,
    len: usize,
    fetch_values: bool,
    chunk_size: Option<usize>,
}

impl QueryOps {
    /// An empty op stream.
    pub fn new() -> Self {
        QueryOps::default()
    }

    /// Builds the SoA layout from an enum-stream batch in one pass.
    pub fn from_batch(batch: &QueryBatch) -> Self {
        let mut ops = QueryOps::new();
        ops.append_batch(batch);
        ops.fetch_values = batch.fetches_values();
        ops.chunk_size = batch.chunk_size();
        ops
    }

    fn push_tag(&mut self, is_range: bool) {
        let word = self.len / 64;
        if word == self.tags.len() {
            self.tags.push(0);
        }
        if is_range {
            self.tags[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Appends one point lookup at the next submission slot.
    pub fn push_point(&mut self, key: u64) {
        self.points.push(key);
        self.push_tag(false);
    }

    /// Appends one inclusive range lookup at the next submission slot.
    pub fn push_range(&mut self, lower: u64, upper: u64) {
        self.ranges.push((lower, upper));
        self.push_tag(true);
    }

    /// Appends every operation of `batch`, preserving its order — the fuse
    /// primitive, mirroring [`QueryBatch::append_ops`]. Only the operations
    /// are taken; `batch`'s fetch/chunk settings are the caller's to
    /// reconcile.
    pub fn append_batch(&mut self, batch: &QueryBatch) {
        for op in batch.ops() {
            match *op {
                QueryOp::Point(key) => self.push_point(key),
                QueryOp::Range(lower, upper) => self.push_range(lower, upper),
            }
        }
    }

    /// Empties the stream, keeping every buffer's capacity.
    pub fn clear(&mut self) {
        self.points.clear();
        self.ranges.clear();
        self.tags.clear();
        self.len = 0;
    }

    /// Sets the value-fetch flag in place.
    pub fn set_fetch_values(&mut self, fetch: bool) {
        self.fetch_values = fetch;
    }

    /// Sets the per-launch chunk bound in place (0 = unbounded).
    pub fn set_chunk_size(&mut self, chunk_size: usize) {
        self.chunk_size = (chunk_size > 0).then_some(chunk_size);
    }

    /// The point keys, dense, in submission order among points.
    pub fn points(&self) -> &[u64] {
        &self.points
    }

    /// The inclusive range bounds, dense, in submission order among ranges.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// True when the operation at submission slot `slot` is a range lookup.
    pub fn is_range(&self, slot: usize) -> bool {
        debug_assert!(slot < self.len);
        self.tags[slot / 64] & (1u64 << (slot % 64)) != 0
    }

    /// Total number of operations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the stream holds no operation.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of point lookups.
    pub fn point_count(&self) -> usize {
        self.points.len()
    }

    /// Number of range lookups.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Whether a value fetch was requested.
    pub fn fetches_values(&self) -> bool {
        self.fetch_values
    }

    /// The configured chunk size, or `None` for unbounded launches.
    pub fn chunk_size(&self) -> Option<usize> {
        self.chunk_size
    }

    /// The operations in submission order, re-materialized as enums.
    pub fn iter(&self) -> impl Iterator<Item = QueryOp> + '_ {
        let mut points = self.points.iter();
        let mut ranges = self.ranges.iter();
        (0..self.len).map(move |slot| {
            if self.is_range(slot) {
                let &(lower, upper) = ranges.next().expect("tag bitmap out of sync");
                QueryOp::Range(lower, upper)
            } else {
                QueryOp::Point(*points.next().expect("tag bitmap out of sync"))
            }
        })
    }

    /// Rebuilds an enum-stream [`QueryBatch`] (a compatibility escape hatch
    /// for callers that still speak the AoS layout; allocates).
    pub fn to_batch(&self) -> QueryBatch {
        let mut batch = QueryBatch {
            ops: Vec::with_capacity(self.len),
            fetch_values: self.fetch_values,
            chunk_size: self.chunk_size,
        };
        batch.ops.extend(self.iter());
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_mixed_ops_in_order() {
        let batch = QueryBatch::new()
            .range(5, 9)
            .point(1)
            .ranges([(0, 0), (2, 4)])
            .points([8, 9]);
        assert_eq!(batch.len(), 6);
        assert_eq!(batch.point_count(), 3);
        assert_eq!(batch.range_count(), 3);
        assert_eq!(batch.ops()[0], QueryOp::Range(5, 9));
        assert_eq!(batch.ops()[1], QueryOp::Point(1));
        assert_eq!(batch.ops()[5], QueryOp::Point(9));
        assert!(!batch.fetches_values());
        assert!(batch.chunk_size().is_none());
    }

    #[test]
    fn convenience_constructors() {
        let p = QueryBatch::of_points(&[1, 2, 3]);
        assert_eq!(p.point_count(), 3);
        assert_eq!(p.range_count(), 0);
        let r = QueryBatch::of_ranges(&[(1, 2)]);
        assert_eq!(r.range_count(), 1);
        assert!(QueryBatch::new().is_empty());
    }

    #[test]
    fn append_ops_concatenates_preserving_order_and_settings() {
        let mut fused = QueryBatch::new().point(1).fetch_values(true);
        fused.append_ops(&QueryBatch::new().range(2, 5).point(9).with_chunk_size(3));
        assert_eq!(
            fused.ops(),
            &[QueryOp::Point(1), QueryOp::Range(2, 5), QueryOp::Point(9)]
        );
        // Only the operations transfer; the target's own settings stay.
        assert!(fused.fetches_values());
        assert_eq!(fused.chunk_size(), None);
    }

    #[test]
    fn chunk_size_zero_means_unbounded() {
        assert_eq!(QueryBatch::new().with_chunk_size(0).chunk_size(), None);
        assert_eq!(QueryBatch::new().with_chunk_size(7).chunk_size(), Some(7));
    }

    #[test]
    fn soa_round_trips_mixed_streams() {
        let batch = QueryBatch::new()
            .range(5, 9)
            .point(1)
            .ranges([(0, 0), (2, 4)])
            .points([8, 9])
            .fetch_values(true)
            .with_chunk_size(3);
        let ops = QueryOps::from_batch(&batch);
        assert_eq!(ops.len(), 6);
        assert_eq!(ops.point_count(), 3);
        assert_eq!(ops.range_count(), 3);
        assert_eq!(ops.points(), &[1, 8, 9]);
        assert_eq!(ops.ranges(), &[(5, 9), (0, 0), (2, 4)]);
        assert!(ops.is_range(0) && !ops.is_range(1) && ops.is_range(3));
        assert!(ops.fetches_values());
        assert_eq!(ops.chunk_size(), Some(3));
        assert_eq!(ops.iter().collect::<Vec<_>>(), batch.ops());
        assert_eq!(ops.to_batch(), batch);
    }

    #[test]
    fn soa_tag_bitmap_spans_words() {
        let mut ops = QueryOps::new();
        for i in 0..200u64 {
            if i % 3 == 0 {
                ops.push_range(i, i + 1);
            } else {
                ops.push_point(i);
            }
        }
        assert_eq!(ops.len(), 200);
        for slot in 0..200 {
            assert_eq!(ops.is_range(slot), slot % 3 == 0, "slot {slot}");
        }
        let cap_before = ops.points.capacity();
        ops.clear();
        assert!(ops.is_empty());
        assert_eq!(ops.points.capacity(), cap_before, "clear keeps capacity");
        // Refill after clear re-derives tags from scratch.
        ops.push_point(42);
        ops.push_range(1, 2);
        assert!(!ops.is_range(0) && ops.is_range(1));
        assert_eq!(
            ops.iter().collect::<Vec<_>>(),
            &[QueryOp::Point(42), QueryOp::Range(1, 2)]
        );
    }

    #[test]
    fn soa_in_place_settings() {
        let mut ops = QueryOps::new();
        ops.set_fetch_values(true);
        ops.set_chunk_size(0);
        assert!(ops.fetches_values());
        assert_eq!(ops.chunk_size(), None);
        ops.set_chunk_size(16);
        assert_eq!(ops.chunk_size(), Some(16));
    }
}
