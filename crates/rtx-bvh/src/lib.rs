//! # rtx-bvh
//!
//! Bounding volume hierarchies: the data structure behind `optixAccelBuild`.
//!
//! NVIDIA does not document the BVH its driver builds, so this crate provides
//! two standard GPU-style builders whose externally visible properties match
//! everything the RTIndeX paper relies on:
//!
//! * [`build_sah`] — a binned surface-area-heuristic
//!   builder (higher quality, slower build),
//! * [`build_lbvh`] — a Morton-code (LBVH) builder in
//!   the spirit of what GPU drivers run (fast, slightly lower quality).
//!
//! On top of the builders the crate implements the three operations OptiX
//! exposes for acceleration structures:
//!
//! * **traversal** with any-hit semantics ([`traverse()`]) including traversal
//!   statistics (nodes visited, box tests, primitive tests, early aborts),
//! * **compaction** ([`Bvh::compact`]) which removes the build-time slack
//!   from the structure's memory footprint,
//! * **refitting updates** ([`refit`](crate::refit::refit)) which adjust the
//!   existing bounding volumes to moved primitives without changing the tree
//!   topology — including the quality degradation the paper observes when
//!   too many primitives move (Table 4).

pub mod builder;
pub mod node;
pub mod pipeline;
pub mod primitives;
pub mod quality;
pub mod refit;
pub mod traverse;

pub use builder::{build_lbvh, build_sah, BuildConfig, BuilderKind};
pub use node::{Bvh, BvhNode};
pub use pipeline::{BuildPipeline, PipelineBuild, DEFAULT_TARGET_SUBTREES};
pub use primitives::{AabbSet, PrimitiveSet, SphereSet, TriangleSet};
pub use quality::BvhQuality;
pub use traverse::{traverse, AnyHitControl, TraversalStats};
