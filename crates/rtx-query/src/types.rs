//! The result and metadata types shared by every backend.
//!
//! These used to be defined separately in `rtindex-core` (for RX) and
//! `gpu-baselines` (for HT/B+/SA); they now live here once and are
//! re-exported from those crates for backwards compatibility.

use gpu_device::KernelStats;
use optix_sim::LaunchMetrics;

/// Reserved rowID written into the result array when a lookup misses.
pub const MISS: u32 = u32::MAX;

/// Result of a single lookup within a batch (the result-array semantics of
/// the paper's methodology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LookupResult {
    /// RowID of the first (smallest) qualifying entry, or [`MISS`].
    pub first_row: u32,
    /// Number of qualifying entries (0 on a miss; > 1 for duplicate keys or
    /// range lookups).
    pub hit_count: u32,
    /// Sum of the values fetched for all qualifying rowIDs (0 when no value
    /// fetch was requested or on a miss).
    pub value_sum: u64,
}

impl LookupResult {
    /// A miss result.
    pub fn miss() -> Self {
        LookupResult {
            first_row: MISS,
            hit_count: 0,
            value_sum: 0,
        }
    }

    /// True when the lookup found at least one qualifying entry.
    pub fn is_hit(&self) -> bool {
        self.hit_count > 0
    }

    /// Merges another partial answer for the *same* logical lookup into this
    /// one: hit counts and value sums add, the first row is the minimum
    /// (which is also why [`MISS`] is `u32::MAX`). This is how the sharded
    /// execution layer combines per-shard answers to a split or broadcast
    /// operation, and how a miss merged with anything stays faithful.
    pub fn merge(&mut self, other: &LookupResult) {
        self.first_row = self.first_row.min(other.first_row);
        self.hit_count += other.hit_count;
        self.value_sum = self.value_sum.wrapping_add(other.value_sum);
    }
}

/// Result of one homogeneous lookup batch (all points or all ranges): the
/// per-lookup results plus the launch metrics of the execution.
#[derive(Debug, Clone, Default)]
pub struct BatchOutcome {
    /// One result per submitted lookup, in submission order.
    pub results: Vec<LookupResult>,
    /// Launch metrics (counters, simulated time, host time).
    pub metrics: LaunchMetrics,
}

impl BatchOutcome {
    /// Number of lookups that found at least one qualifying entry.
    pub fn hit_count(&self) -> usize {
        self.results.iter().filter(|r| r.is_hit()).count()
    }

    /// Sum of all per-lookup value sums (the aggregate the paper's
    /// methodology computes).
    pub fn total_value_sum(&self) -> u64 {
        self.results
            .iter()
            .map(|r| r.value_sum)
            .fold(0u64, u64::wrapping_add)
    }

    /// Simulated device time in milliseconds.
    pub fn sim_ms(&self) -> f64 {
        self.metrics.simulated_time_s * 1e3
    }

    /// Host wall-clock milliseconds of the software execution.
    pub fn host_ms(&self) -> f64 {
        self.metrics.host_time.as_secs_f64() * 1e3
    }

    /// Merged kernel counters of the execution.
    pub fn kernel(&self) -> &KernelStats {
        &self.metrics.kernel
    }
}

/// Result of executing a (possibly mixed) [`QueryBatch`]: one result per
/// submitted operation, in submission order, plus the metrics merged over
/// every launch the execution needed. Structurally identical to a
/// homogeneous [`BatchOutcome`], so it *is* one.
///
/// [`QueryBatch`]: crate::batch::QueryBatch
pub type QueryOutcome = BatchOutcome;

/// Metrics of an index build, uniform across backends.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexBuildMetrics {
    /// Simulated device build time in seconds.
    pub simulated_time_s: f64,
    /// Host wall-clock build time.
    pub host_time: std::time::Duration,
    /// Temporary device memory used during the build (released afterwards).
    pub scratch_bytes: u64,
}

impl IndexBuildMetrics {
    /// Simulated build time in milliseconds.
    pub fn sim_ms(&self) -> f64 {
        self.simulated_time_s * 1e3
    }
}

/// What a backend can do. Queried before dispatching operations so that
/// unsupported submissions fail uniformly instead of per-backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Whether the backend answers range lookups (the hash table does not).
    pub range_lookups: bool,
    /// Whether the backend supports duplicate keys (the B+-tree does not).
    pub duplicate_keys: bool,
    /// Whether the backend supports the full 64-bit key domain (the
    /// B+-tree only supports 32-bit keys).
    pub full_64bit_keys: bool,
    /// Whether the backend supports batched inserts/deletes/upserts (i.e.
    /// also implements [`UpdatableIndex`](crate::index::UpdatableIndex)).
    pub updates: bool,
}

impl Capabilities {
    /// Capabilities of a fully general read-only backend.
    pub fn read_only() -> Self {
        Capabilities {
            range_lookups: true,
            duplicate_keys: true,
            full_64bit_keys: true,
            updates: false,
        }
    }
}

/// A structural breakdown of the device/host memory an index occupies,
/// refining the single [`SecondaryIndex::memory_bytes`] number into the
/// components an operator actually watches: the compacted base, the
/// mutable delta, the tombstone bookkeeping, and (for durable wrappers)
/// the WAL write buffer.
///
/// Backends without a given component report 0 for it; components sum
/// across shards with [`MemoryUsage::add`].
///
/// [`SecondaryIndex::memory_bytes`]: crate::index::SecondaryIndex::memory_bytes
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryUsage {
    /// Bytes of the immutable/compacted base structure (BVH + columns,
    /// hash table, tree nodes, sorted array...).
    pub base_bytes: u64,
    /// Bytes of the mutable delta structures absorbing updates.
    pub delta_bytes: u64,
    /// Bytes of tombstone / liveness bookkeeping (bitmaps, mirrors).
    pub tombstone_bytes: u64,
    /// Bytes buffered by a durability layer ahead of the next fsync.
    pub wal_buffer_bytes: u64,
}

impl MemoryUsage {
    /// A usage report attributing everything to the base structure — the
    /// correct shape for a monolithic read-only index.
    pub fn base_only(bytes: u64) -> Self {
        MemoryUsage {
            base_bytes: bytes,
            ..Default::default()
        }
    }

    /// Total bytes across every component.
    pub fn total(&self) -> u64 {
        self.base_bytes + self.delta_bytes + self.tombstone_bytes + self.wal_buffer_bytes
    }

    /// Component-wise accumulation (used to sum shards).
    pub fn add(&mut self, other: &MemoryUsage) {
        self.base_bytes += other.base_bytes;
        self.delta_bytes += other.delta_bytes;
        self.tombstone_bytes += other.tombstone_bytes;
        self.wal_buffer_bytes += other.wal_buffer_bytes;
    }
}

/// Cumulative durability counters of a WAL-backed index, surfaced through
/// [`SecondaryIndex::durability_stats`] and the service stats.
///
/// [`SecondaryIndex::durability_stats`]: crate::index::SecondaryIndex::durability_stats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurableStats {
    /// Live WAL bytes on disk (records not yet truncated by a snapshot).
    pub wal_bytes: u64,
    /// fsync calls issued since open.
    pub fsyncs: u64,
    /// Snapshots written since open.
    pub snapshots: u64,
    /// Batch sequence number covered by the latest snapshot (0 before any).
    pub last_snapshot_bsn: u64,
    /// Bytes of the latest snapshot file (0 before any).
    pub last_snapshot_bytes: u64,
    /// Update batches replayed from the WAL by the most recent `open`.
    pub replayed_batches: u64,
}

impl DurableStats {
    /// Component-wise accumulation of per-shard stats; the snapshot frontier
    /// reports the *oldest* shard snapshot (the recovery-relevant bound).
    pub fn add(&mut self, other: &DurableStats) {
        self.wal_bytes += other.wal_bytes;
        self.fsyncs += other.fsyncs;
        self.snapshots += other.snapshots;
        self.last_snapshot_bsn = if self.last_snapshot_bsn == 0 {
            other.last_snapshot_bsn
        } else if other.last_snapshot_bsn == 0 {
            self.last_snapshot_bsn
        } else {
            self.last_snapshot_bsn.min(other.last_snapshot_bsn)
        };
        self.last_snapshot_bytes += other.last_snapshot_bytes;
        self.replayed_batches += other.replayed_batches;
    }
}

/// Result of one batched update through
/// [`UpdatableIndex`](crate::index::UpdatableIndex).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UpdateReport {
    /// Rows inserted by the batch.
    pub inserted_rows: usize,
    /// Rows deleted by the batch.
    pub deleted_rows: usize,
    /// Simulated device seconds spent applying the batch (including a
    /// triggered compaction/rebuild, when the backend has one).
    pub simulated_time_s: f64,
    /// Structural reorganisations (e.g. compactions) the batch triggered.
    pub reorganisations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_constructor_and_predicates() {
        let m = LookupResult::miss();
        assert_eq!(m.first_row, MISS);
        assert!(!m.is_hit());
        let h = LookupResult {
            first_row: 3,
            hit_count: 2,
            value_sum: 10,
        };
        assert!(h.is_hit());
    }

    #[test]
    fn merge_combines_partial_answers() {
        let mut acc = LookupResult::miss();
        acc.merge(&LookupResult {
            first_row: 9,
            hit_count: 2,
            value_sum: 7,
        });
        assert_eq!(acc.first_row, 9);
        acc.merge(&LookupResult {
            first_row: 3,
            hit_count: 1,
            value_sum: 5,
        });
        assert_eq!(acc.first_row, 3);
        assert_eq!(acc.hit_count, 3);
        assert_eq!(acc.value_sum, 12);
        acc.merge(&LookupResult::miss());
        assert_eq!(acc.first_row, 3, "a miss changes nothing");
        assert_eq!(acc.hit_count, 3);
    }

    #[test]
    fn outcome_aggregations() {
        let outcome = QueryOutcome {
            results: vec![
                LookupResult {
                    first_row: 0,
                    hit_count: 1,
                    value_sum: 5,
                },
                LookupResult::miss(),
                LookupResult {
                    first_row: 2,
                    hit_count: 3,
                    value_sum: 7,
                },
            ],
            ..Default::default()
        };
        assert_eq!(outcome.hit_count(), 2);
        assert_eq!(outcome.total_value_sum(), 12);
        assert_eq!(outcome.sim_ms(), 0.0);
    }

    #[test]
    fn memory_usage_totals_and_sums() {
        let mut a = MemoryUsage::base_only(100);
        assert_eq!(a.total(), 100);
        a.add(&MemoryUsage {
            base_bytes: 10,
            delta_bytes: 20,
            tombstone_bytes: 30,
            wal_buffer_bytes: 40,
        });
        assert_eq!(a.base_bytes, 110);
        assert_eq!(a.total(), 200);
    }

    #[test]
    fn durable_stats_sum_keeps_oldest_snapshot_frontier() {
        let mut a = DurableStats {
            wal_bytes: 10,
            fsyncs: 2,
            snapshots: 1,
            last_snapshot_bsn: 7,
            last_snapshot_bytes: 100,
            replayed_batches: 3,
        };
        a.add(&DurableStats {
            wal_bytes: 5,
            fsyncs: 1,
            snapshots: 1,
            last_snapshot_bsn: 4,
            last_snapshot_bytes: 50,
            replayed_batches: 0,
        });
        assert_eq!(a.wal_bytes, 15);
        assert_eq!(a.fsyncs, 3);
        assert_eq!(a.last_snapshot_bsn, 4, "oldest shard frontier wins");
        // A shard without any snapshot does not drag the frontier to 0...
        a.add(&DurableStats::default());
        assert_eq!(a.last_snapshot_bsn, 4);
        // ...and a frontier appears once the first snapshotted shard sums in.
        let mut b = DurableStats::default();
        b.add(&a);
        assert_eq!(b.last_snapshot_bsn, 4);
    }

    #[test]
    fn build_metrics_convert_to_ms() {
        let m = IndexBuildMetrics {
            simulated_time_s: 0.25,
            ..Default::default()
        };
        assert!((m.sim_ms() - 250.0).abs() < 1e-9);
    }
}
