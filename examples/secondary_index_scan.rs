//! Secondary-index scan: the paper's evaluation methodology as a runnable
//! program.
//!
//! A GPU-resident fact table has a key column and a value column. A batch of
//! range predicates is answered through the index; the qualifying rowIDs are
//! used to fetch and aggregate the projected values (here: a per-predicate
//! SUM), and the result is verified against a scan-based oracle.
//!
//! Run with: `cargo run --release --example secondary_index_scan`

use rtindex::{Device, GpuIndex, RtIndex, RtIndexConfig, SortedArray};
use rtx_workloads as wl;

fn main() {
    let device = Device::default_eval();
    let n = 1usize << 16;
    let seed = 7;

    // The fact table: a shuffled dense key column (e.g. order numbers) and a
    // value column (e.g. revenue in cents).
    let keys = wl::dense_shuffled(n, seed);
    let values = wl::value_column(n, seed + 1);
    println!("fact table: {n} rows");

    // Build the secondary index on the key column.
    let index = RtIndex::build(&device, &keys, RtIndexConfig::default()).expect("build");
    println!(
        "RX built: {:.2} MiB index memory, simulated build time {:.3} ms",
        index.index_memory_bytes() as f64 / (1 << 20) as f64,
        index.build_metrics().simulated_time_s * 1e3
    );

    // A batch of range predicates: WHERE key BETWEEN l AND l+63.
    let predicates = wl::range_lookups(n as u64, 1 << 12, 64, seed + 2);
    let out = index
        .range_lookup_batch(&predicates, Some(&values))
        .expect("range lookups");
    println!(
        "answered {} range predicates: {} hits, total SUM = {}",
        predicates.len(),
        out.hit_count(),
        out.total_value_sum()
    );
    println!(
        "simulated device time {:.3} ms ({:.1} GiB read from DRAM, cache hit rate {:.1}%)",
        out.metrics.simulated_time_s * 1e3,
        out.metrics.kernel.dram_bytes_read as f64 / (1u64 << 30) as f64,
        out.metrics.kernel.cache_hit_rate() * 100.0
    );

    // Verify against the ground-truth oracle (a plain scan).
    let truth = wl::GroundTruth::new(&keys, Some(&values));
    let expected = truth.batch_range_sum(&predicates);
    assert_eq!(
        out.total_value_sum(),
        expected,
        "index answer must match the scan"
    );
    println!("verified against a scan-based oracle: OK");

    // Compare with the sorted-array baseline on the same workload.
    let sa = SortedArray::build(&device, &keys);
    let sa_out = sa
        .range_lookup_batch(&device, &predicates, Some(&values))
        .expect("SA ranges");
    assert_eq!(sa_out.total_value_sum(), expected);
    println!(
        "sorted-array baseline: simulated {:.3} ms (RX: {:.3} ms)",
        sa_out.simulated_time_s * 1e3,
        out.metrics.simulated_time_s * 1e3
    );
}
