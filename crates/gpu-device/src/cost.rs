//! Converts kernel counters into a simulated execution time.
//!
//! The experiments of the paper are explained by a small number of resource
//! limits: instruction throughput of the programmable cores, triangle-test
//! throughput of the RT cores, DRAM bandwidth, warp occupancy and kernel
//! launch overhead. The cost model combines the counters of a kernel
//! ([`KernelStats`]) with a device description ([`DeviceSpec`]) into a
//! simulated time using a roofline-style maximum over the three throughput
//! terms, divided by the achieved occupancy and preceded by per-launch
//! overhead.
//!
//! Absolute values are *not* expected to match the paper (the authors ran on
//! real hardware), but relative behaviour — which index wins under which
//! workload, where crossovers happen — is governed by exactly these terms.

use std::time::Duration;

use crate::occupancy::OccupancyModel;
use crate::profiler::KernelStats;
use crate::spec::DeviceSpec;

/// A simulated execution time, kept separate from host wall-clock time to
/// avoid confusing the two in experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimulatedTime {
    seconds: f64,
}

impl SimulatedTime {
    /// Creates a simulated time from seconds.
    pub fn from_seconds(seconds: f64) -> Self {
        SimulatedTime { seconds }
    }

    /// Zero simulated time.
    pub fn zero() -> Self {
        SimulatedTime { seconds: 0.0 }
    }

    /// The value in seconds.
    pub fn as_seconds(&self) -> f64 {
        self.seconds
    }

    /// The value in milliseconds (the unit used by the paper's figures).
    pub fn as_millis(&self) -> f64 {
        self.seconds * 1e3
    }

    /// Converts to a `std::time::Duration` (saturating at zero).
    pub fn to_duration(&self) -> Duration {
        Duration::from_secs_f64(self.seconds.max(0.0))
    }

    /// Sum of two simulated times.
    pub fn plus(&self, other: SimulatedTime) -> SimulatedTime {
        SimulatedTime {
            seconds: self.seconds + other.seconds,
        }
    }
}

/// Breakdown of a simulated time into its roofline components, useful for
/// reproducing the paper's "memory bound vs. compute bound" discussions.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostBreakdown {
    /// Time the programmable cores would need for the executed instructions.
    pub compute_s: f64,
    /// Time the RT cores would need for the intersection tests.
    pub rt_core_s: f64,
    /// Time the memory system would need for the DRAM traffic.
    pub memory_s: f64,
    /// Kernel launch overhead.
    pub launch_overhead_s: f64,
    /// Occupancy divisor applied to the roofline maximum (0–1].
    pub occupancy_factor: f64,
    /// The final simulated time.
    pub total: SimulatedTime,
}

impl CostBreakdown {
    /// Name of the dominant roofline term.
    pub fn bound_by(&self) -> &'static str {
        if self.memory_s >= self.compute_s && self.memory_s >= self.rt_core_s {
            "memory"
        } else if self.compute_s >= self.rt_core_s {
            "compute"
        } else {
            "rt-core"
        }
    }
}

/// The cost model for one device.
#[derive(Debug, Clone)]
pub struct CostModel {
    spec: DeviceSpec,
    occupancy: OccupancyModel,
}

impl CostModel {
    /// Creates the cost model for `spec`.
    pub fn new(spec: DeviceSpec) -> Self {
        let occupancy = OccupancyModel::new(spec.clone());
        CostModel { spec, occupancy }
    }

    /// The underlying device spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The occupancy model.
    pub fn occupancy(&self) -> &OccupancyModel {
        &self.occupancy
    }

    /// Full roofline breakdown for a kernel.
    pub fn breakdown(&self, stats: &KernelStats) -> CostBreakdown {
        let compute_s = stats.instructions as f64 / self.spec.peak_instruction_throughput();

        // Fixed-function traversal work: triangle tests plus box tests run on
        // the RT cores; software intersection programs count as instructions
        // *and* keep the RT pipeline busy handing control back and forth, so
        // they are charged to the compute term via `instructions` (the caller
        // records them there) and only the dispatch cost appears here.
        let rt_tests = stats.rt_triangle_tests + stats.rt_box_tests;
        let rt_core_s = rt_tests as f64 / self.spec.peak_rt_intersection_throughput();

        let bytes = (stats.dram_bytes_read + stats.dram_bytes_written) as f64;
        let bw_util = self
            .occupancy
            .bandwidth_utilisation(stats.threads_launched)
            .max(0.05);
        let memory_s = bytes / (self.spec.mem_bandwidth * bw_util);

        let occ = (self.occupancy.active_warps_per_sm(stats.threads_launched)
            / self.spec.max_warps_per_sm as f64)
            .clamp(0.05, 1.0);

        // Roofline: the slowest resource dominates; low occupancy exposes
        // latency that overlapping warps would otherwise hide. The memory
        // term already folds occupancy in through the achieved bandwidth, so
        // the occupancy divisor is applied to the compute/RT terms only.
        let roofline = (compute_s / occ).max(rt_core_s / occ).max(memory_s);
        let launch_overhead_s = stats.kernel_launches as f64 * self.spec.kernel_launch_overhead_s;
        let total = SimulatedTime::from_seconds(roofline + launch_overhead_s);

        CostBreakdown {
            compute_s,
            rt_core_s,
            memory_s,
            launch_overhead_s,
            occupancy_factor: occ,
            total,
        }
    }

    /// Simulated execution time for a kernel.
    pub fn simulated_time(&self, stats: &KernelStats) -> SimulatedTime {
        self.breakdown(stats).total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(DeviceSpec::rtx_4090())
    }

    fn lookup_like_stats(threads: u64) -> KernelStats {
        KernelStats {
            threads_launched: threads,
            kernel_launches: 1,
            instructions: threads * 50,
            dram_bytes_read: threads * 128,
            rt_triangle_tests: threads * 4,
            rt_box_tests: threads * 20,
            ..KernelStats::new()
        }
    }

    #[test]
    fn simulated_time_scales_with_work() {
        let m = model();
        let small = m.simulated_time(&lookup_like_stats(1 << 16));
        let large = m.simulated_time(&lookup_like_stats(1 << 20));
        assert!(large.as_seconds() > small.as_seconds());
        // 16x the work should take somewhere between 4x and 16x the time
        // (occupancy improves for the larger launch).
        let ratio = large.as_seconds() / small.as_seconds();
        assert!(ratio > 4.0 && ratio <= 16.0, "ratio = {ratio}");
    }

    #[test]
    fn launch_overhead_adds_up() {
        let m = model();
        let mut one_launch = lookup_like_stats(1 << 20);
        let mut many_launches = lookup_like_stats(1 << 20);
        one_launch.kernel_launches = 1;
        many_launches.kernel_launches = 1 << 16;
        let t1 = m.simulated_time(&one_launch);
        let t2 = m.simulated_time(&many_launches);
        assert!(
            t2.as_seconds() > t1.as_seconds() + 0.1,
            "2^16 launches must add noticeable overhead: {} vs {}",
            t2.as_seconds(),
            t1.as_seconds()
        );
    }

    #[test]
    fn memory_heavy_kernel_is_memory_bound() {
        let m = model();
        let stats = KernelStats {
            threads_launched: 1 << 22,
            kernel_launches: 1,
            instructions: 1 << 10,
            dram_bytes_read: 10 << 30,
            ..KernelStats::new()
        };
        let b = m.breakdown(&stats);
        assert_eq!(b.bound_by(), "memory");
        assert!(b.total.as_seconds() > 0.0);
    }

    #[test]
    fn rt_heavy_kernel_is_rt_bound() {
        let m = model();
        let stats = KernelStats {
            threads_launched: 1 << 22,
            kernel_launches: 1,
            instructions: 1 << 10,
            dram_bytes_read: 1 << 10,
            rt_triangle_tests: 1 << 34,
            ..KernelStats::new()
        };
        assert_eq!(m.breakdown(&stats).bound_by(), "rt-core");
    }

    #[test]
    fn newer_generation_runs_rt_work_faster() {
        let stats = KernelStats {
            threads_launched: 1 << 22,
            kernel_launches: 1,
            rt_triangle_tests: 1 << 32,
            ..KernelStats::new()
        };
        let ada = CostModel::new(DeviceSpec::rtx_4090()).simulated_time(&stats);
        let turing = CostModel::new(DeviceSpec::rtx_2080ti()).simulated_time(&stats);
        assert!(ada.as_seconds() < turing.as_seconds());
    }

    #[test]
    fn simulated_time_conversions() {
        let t = SimulatedTime::from_seconds(0.0125);
        assert!((t.as_millis() - 12.5).abs() < 1e-9);
        assert_eq!(t.to_duration(), Duration::from_micros(12500));
        assert_eq!(SimulatedTime::zero().as_seconds(), 0.0);
        assert!((t.plus(t).as_millis() - 25.0).abs() < 1e-9);
    }
}
