//! Quickstart: build secondary indexes over a small table column through the
//! unified query API and answer one mixed batch of point and range lookups —
//! the running example of Figure 1 in the paper, on every backend at once.
//!
//! Run with: `cargo run --release --example quickstart`

use rtindex::{registry, Device, IndexSpec, QueryBatch, MISS};

fn main() {
    // The simulated GPU (an RTX 4090 by default).
    let device = Device::default_eval();

    // The exemplary table from Figure 1a: rowID -> (Article, Category), plus
    // a price column so lookups can fetch and aggregate values.
    let articles = ["Juice", "Bread", "Cookies", "Coffee", "Donuts", "Wine"];
    let category: Vec<u64> = vec![26, 25, 29, 23, 29, 27];
    let prices: Vec<u64> = vec![120, 90, 250, 410, 180, 700];

    // Every backend is built by name from one registry: the raytracing index
    // ("RX"), the three GPU baselines ("HT", "B+", "SA") and the updatable
    // delta-buffered index ("RXD").
    let registry = registry();
    println!("registered backends: {}", registry.backends().join(", "));

    // One mixed submission: Q1 from the paper (range [23, 25] -> Coffee and
    // Bread), two point lookups, one miss, all fetching the price column.
    let batch = QueryBatch::new()
        .range(23, 25)
        .point(29)
        .point(27)
        .point(24)
        .fetch_values(true);

    let spec = IndexSpec::with_values(&device, &category, &prices);
    for name in registry.backends() {
        let index = match registry.build(name, &spec) {
            Ok(index) => index,
            Err(err) => {
                println!("\n{name}: skipped ({err})");
                continue;
            }
        };
        if !index.capabilities().range_lookups {
            println!("\n{name}: no range support, skipping the mixed batch");
            continue;
        }
        let out = index.execute(&batch).expect("mixed batch");
        println!(
            "\n{name}: {} B of device memory, simulated batch time {:.4} ms",
            index.memory_bytes(),
            out.sim_ms()
        );
        for (op, result) in batch.ops().iter().zip(&out.results) {
            if result.first_row == MISS {
                println!("  {op:?}: miss");
            } else {
                println!(
                    "  {op:?}: {} row(s), first {} ({}), price sum {}",
                    result.hit_count,
                    result.first_row,
                    articles[result.first_row as usize],
                    result.value_sum
                );
            }
        }
    }

    // The updatable backend additionally takes writes through the same API.
    let mut dynamic = registry
        .build_updatable("RXD", &spec)
        .expect("updatable build");
    dynamic.insert(&[25], &[130]).expect("insert Cake at 25");
    dynamic.delete(&[29]).expect("delete the 29s");
    let out = dynamic
        .execute(&QueryBatch::new().point(25).point(29).fetch_values(true))
        .expect("lookup after updates");
    println!(
        "\nRXD after insert(25)/delete(29): key 25 holds {} rows (price sum {}), key 29 {}",
        out.results[0].hit_count,
        out.results[0].value_sum,
        if out.results[1].is_hit() {
            "hit"
        } else {
            "miss"
        },
    );
}
