//! The table: row store + index fan-out + transactional CDC ingest.
//!
//! # Ingest atomicity
//!
//! [`Table::ingest`] applies a CDC batch with all-or-nothing semantics.
//! Operations stream into the row store and — where possible — as *deltas*
//! into updatable indexes; everything else is rebuilt from the live row
//! store at the end of the batch:
//!
//! * **Inserts** are always delta-exact: every updatable index absorbs
//!   `insert(key_on_its_column, value)` and appends to its row mirror.
//! * **Deletes** key on the primary column. An updatable index *on the
//!   primary column* absorbs them exactly (`delete(key)` removes exactly
//!   the doomed rows). On any other column the index-level delete would
//!   also kill surviving rows that share the doomed row's key, so the
//!   index is marked for rebuild instead.
//! * **Read-only indexes** (RX, HT, B+, SA, and their sharded variants)
//!   cannot absorb deltas at all; they rebuild from the live row store
//!   after every mutating batch.
//!
//! If any sub-operation fails — an index rejecting a batch (e.g. the
//! B+-tree refusing a duplicate key on rebuild) — the table restores the
//! pre-batch row store and rebuilds every index that absorbed deltas or
//! was already rebuilt, reproducing the exact pre-batch logical state
//! before the error surfaces. Callers never observe a half-applied batch.
//!
//! # Row mirrors
//!
//! Each index answers `first_row` in its own local rowID space; the table
//! keeps a per-index mirror (`local → (key, table rowID)`, the same
//! protocol `rtx-shard` uses per shard) and translates every result into
//! table rowIDs. Monolithic dynamic backends renumber their local space
//! densely when a reorganisation lands, so the mirror compacts whenever an
//! update report carries `reorganisations > 0`; *sharded* backends keep
//! their outer rowID space stable across inner reorganisations (their own
//! per-shard mirrors absorb the renumbering), so mirrors over sharded
//! specs never compact.
//!
//! # Durable index specs
//!
//! A spec containing `"+wal:<path>"` treats that directory as
//! *table-private*: every (re)build wipes it first, because the durable
//! layer's open-or-create semantics would otherwise recover stale state
//! from an earlier build instead of indexing the current rows. Between
//! rebuilds the WAL logs delta updates as usual; whole-table recovery
//! from WAL directories is out of scope here.

use std::sync::Arc;

use gpu_device::Device;
use optix_sim::LaunchMetrics;
use rtx_query::{
    parse_durable_name, parse_schema_name, ColumnType, ExplainPlan, IndexDef, IndexError,
    IndexSpec, IngestBatch, IngestOp, KeySchema, KeyTuple, KeyValue, LookupResult, Predicate,
    QueryBatch, QueryOp, Record, Registry, Route, SecondaryIndex, ShardSpec, TableQuery,
    TableSchema, TypedBatch, TypedOp, UpdatableIndex, MISS,
};

use crate::planner::{CandidateView, Planner, ProbeCost};
use crate::store::RowStore;

/// A built table index: read-only backends rebuild per ingest batch,
/// updatable ones absorb deltas where exact (see the [module docs](self)).
enum Backend {
    ReadOnly(Box<dyn SecondaryIndex>),
    Updatable(Box<dyn UpdatableIndex>),
}

impl Backend {
    fn as_index(&self) -> &dyn SecondaryIndex {
        match self {
            Backend::ReadOnly(ix) => ix.as_ref(),
            Backend::Updatable(ix) => ix.as_ref(),
        }
    }
}

/// Local-rowID → `(key, table rowID)` mirror, one per index (the
/// `rtx-shard` row-mirror protocol).
#[derive(Debug, Clone, Default)]
struct Mirror {
    entries: Vec<Option<(u64, u32)>>,
}

impl Mirror {
    fn dense(keys: &[u64], rows: &[u32]) -> Self {
        Mirror {
            entries: keys.iter().zip(rows).map(|(&k, &r)| Some((k, r))).collect(),
        }
    }

    fn append(&mut self, key: u64, row: u32) {
        self.entries.push(Some((key, row)));
    }

    fn delete_key(&mut self, key: u64) {
        for entry in &mut self.entries {
            if matches!(entry, Some((k, _)) if *k == key) {
                *entry = None;
            }
        }
    }

    fn compact(&mut self) {
        self.entries.retain(Option::is_some);
    }

    fn global(&self, local: u32) -> u32 {
        self.entries[local as usize]
            .expect("index answered a rowID its mirror holds as deleted")
            .1
    }

    fn sample_keys(&self, count: usize) -> Vec<u64> {
        self.entries
            .iter()
            .filter_map(|e| e.map(|(k, _)| k))
            .take(count)
            .collect()
    }
}

struct IndexState {
    def: IndexDef,
    /// Positions of the key columns in the row store, leading first.
    columns: Vec<usize>,
    /// The typed key schema for composite indexes; `None` keeps the
    /// zero-overhead raw-`u64` path for classic single-column indexes.
    schema: Option<KeySchema>,
    backend: Backend,
    mirror: Mirror,
    /// False for sharded specs, whose outer rowIDs survive inner
    /// reorganisations (see the [module docs](self)).
    compact_mirror_on_reorg: bool,
    probe: ProbeCost,
}

/// What one successful [`Table::ingest`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IngestReport {
    /// Rows appended to the row store.
    pub inserted_rows: u64,
    /// Rows deleted from the row store.
    pub deleted_rows: u64,
    /// Delta operations absorbed by updatable indexes.
    pub delta_ops: u64,
    /// Indexes rebuilt from the live row store.
    pub rebuilt_indexes: u64,
    /// Simulated time of the deltas and rebuilds.
    pub simulated_time_s: f64,
}

/// Lifetime counters of a table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Ingest batches submitted (including rejected ones).
    pub ingest_batches: u64,
    /// Ingest batches rejected and rolled back.
    pub rolled_back_batches: u64,
    /// Rows ever inserted.
    pub inserted_rows: u64,
    /// Rows ever deleted.
    pub deleted_rows: u64,
    /// Delta operations absorbed by updatable indexes.
    pub delta_ops: u64,
    /// Index rebuilds (initial builds excluded).
    pub index_rebuilds: u64,
}

/// The answer to one [`TableQuery`]: a [`LookupResult`] per predicate
/// (with `first_row` in *table* rowID space), merged launch metrics, and
/// the plan that produced it.
#[derive(Debug, Clone)]
pub struct TableOutcome {
    /// One result per predicate, in submission order.
    pub results: Vec<LookupResult>,
    /// Merged simulated/host launch metrics of every routed batch.
    pub metrics: LaunchMetrics,
    /// The planner's routing decisions.
    pub plan: ExplainPlan,
}

impl TableOutcome {
    /// Total hits across all predicates.
    pub fn hit_count(&self) -> u64 {
        self.results.iter().map(|r| u64::from(r.hit_count)).sum()
    }

    /// Total simulated execution time in milliseconds.
    pub fn sim_ms(&self) -> f64 {
        self.metrics.simulated_time_s * 1e3
    }
}

/// A multi-index table: one SoA row store plus N named indexes built from
/// per-column registry specs, with transactional CDC ingest and a
/// cost-based predicate planner. See the [module docs](self) for the
/// ingest atomicity protocol and the [planner docs](crate::planner) for
/// the cost model.
pub struct Table {
    schema: TableSchema,
    device: Device,
    registry: Arc<Registry>,
    planner: Planner,
    store: RowStore,
    indexes: Vec<IndexState>,
    value_pos: Option<usize>,
    stats: TableStats,
}

impl Table {
    /// Creates an empty table over `schema`, building every index (over
    /// zero rows) up front so spec errors surface immediately.
    pub fn create(
        schema: TableSchema,
        device: &Device,
        registry: Arc<Registry>,
    ) -> Result<Self, IndexError> {
        Table::load(schema, device, registry, &[])
    }

    /// Creates a table bulk-loaded with `records` (occupying rowIDs
    /// `0..records.len()`), building every index over them.
    pub fn load(
        schema: TableSchema,
        device: &Device,
        registry: Arc<Registry>,
        records: &[Record],
    ) -> Result<Self, IndexError> {
        schema.validate()?;
        let value_pos = schema
            .value_column
            .as_ref()
            .map(|c| schema.column_position(c).expect("validated"));
        let mut store = RowStore::new(schema.columns.len());
        for record in records {
            store.insert(record)?;
        }
        let planner = Planner::default();
        let mut indexes = Vec::with_capacity(schema.indexes.len());
        for def in &schema.indexes {
            let columns: Vec<usize> = def
                .columns
                .iter()
                .map(|c| schema.column_position(c).expect("validated"))
                .collect();
            indexes.push(build_index_state(
                device, &registry, &store, value_pos, &planner, def, &columns,
            )?);
        }
        Ok(Table {
            schema,
            device: device.clone(),
            registry,
            planner,
            store,
            indexes,
            value_pos,
            stats: TableStats::default(),
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of live rows.
    pub fn row_count(&self) -> usize {
        self.store.live_count()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// The planner's configuration.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// The index names, in schema order.
    pub fn index_names(&self) -> Vec<&str> {
        self.indexes.iter().map(|s| s.def.name.as_str()).collect()
    }

    /// The built backend behind the named index (for metadata inspection:
    /// capabilities, memory usage, build metrics).
    pub fn index_backend(&self, name: &str) -> Option<&dyn SecondaryIndex> {
        self.indexes
            .iter()
            .find(|s| s.def.name == name)
            .map(|s| s.backend.as_index())
    }

    /// Total resident bytes: row store plus every index's
    /// [`MemoryUsage::total`](rtx_query::MemoryUsage::total).
    pub fn memory_bytes(&self) -> u64 {
        self.store.memory_bytes()
            + self
                .indexes
                .iter()
                .map(|s| s.backend.as_index().memory_usage().total())
                .sum::<u64>()
    }

    /// Applies a CDC batch atomically (see the [module docs](self)): on
    /// success every index reflects the batch; on error the pre-batch
    /// state is restored before the error returns.
    pub fn ingest(&mut self, batch: &IngestBatch) -> Result<IngestReport, IndexError> {
        self.stats.ingest_batches += 1;
        if batch.is_empty() {
            return Ok(IngestReport::default());
        }
        let saved = self.store.clone();
        let mut touched = vec![false; self.indexes.len()];
        let mut needs_rebuild = vec![false; self.indexes.len()];
        let mut report = IngestReport::default();
        match self.apply_batch(batch, &mut touched, &mut needs_rebuild, &mut report) {
            Ok(()) => {
                self.stats.inserted_rows += report.inserted_rows;
                self.stats.deleted_rows += report.deleted_rows;
                self.stats.delta_ops += report.delta_ops;
                self.stats.index_rebuilds += report.rebuilt_indexes;
                Ok(report)
            }
            Err(err) => {
                self.stats.rolled_back_batches += 1;
                if let Err(rollback_err) = self.rollback(saved, &touched) {
                    return Err(IndexError::Backend {
                        backend: "table".to_string().into(),
                        message: format!(
                            "ingest failed ({err}) and rollback failed too: {rollback_err}"
                        ),
                    });
                }
                Err(err)
            }
        }
    }

    fn apply_batch(
        &mut self,
        batch: &IngestBatch,
        touched: &mut [bool],
        needs_rebuild: &mut [bool],
        report: &mut IngestReport,
    ) -> Result<(), IndexError> {
        for op in batch.ops() {
            match op {
                IngestOp::Insert(record) => {
                    self.apply_insert(record, touched, needs_rebuild, report)?;
                }
                IngestOp::Delete(key) => {
                    self.apply_delete(*key, touched, needs_rebuild, report)?;
                }
                IngestOp::Upsert(record) => {
                    self.apply_delete(record[0], touched, needs_rebuild, report)?;
                    self.apply_insert(record, touched, needs_rebuild, report)?;
                }
            }
        }
        if report.inserted_rows == 0 && report.deleted_rows == 0 {
            // Nothing changed (e.g. only deletes of absent keys): the
            // live rows are untouched, so rebuilds would be no-ops.
            return Ok(());
        }
        for i in 0..self.indexes.len() {
            let rebuild =
                needs_rebuild[i] || matches!(self.indexes[i].backend, Backend::ReadOnly(_));
            if !rebuild {
                // Delta'd indexes keep their structure; refresh the probe
                // costs so the planner sees the post-batch state.
                if touched[i] {
                    let sample = self.indexes[i].mirror.sample_keys(16);
                    self.indexes[i].probe = self
                        .planner
                        .calibrate(self.indexes[i].backend.as_index(), &sample)?;
                }
                continue;
            }
            let def = self.indexes[i].def.clone();
            let columns = self.indexes[i].columns.clone();
            let state = build_index_state(
                &self.device,
                &self.registry,
                &self.store,
                self.value_pos,
                &self.planner,
                &def,
                &columns,
            )?;
            report.simulated_time_s += state.backend.as_index().build_metrics().simulated_time_s;
            self.indexes[i] = state;
            touched[i] = true;
            report.rebuilt_indexes += 1;
        }
        Ok(())
    }

    fn apply_insert(
        &mut self,
        record: &Record,
        touched: &mut [bool],
        needs_rebuild: &mut [bool],
        report: &mut IngestReport,
    ) -> Result<(), IndexError> {
        let row = self.store.insert(record)?;
        report.inserted_rows += 1;
        let value = self.value_pos.map(|p| record[p]).unwrap_or(0);
        for (i, state) in self.indexes.iter_mut().enumerate() {
            if needs_rebuild[i] {
                continue;
            }
            if let Backend::Updatable(ix) = &mut state.backend {
                // Composite indexes are always read-only at the table layer
                // (they rebuild per batch), so updatable states key on
                // exactly one column.
                let key = record[state.columns[0]];
                let update = ix.insert(&[key], &[value])?;
                state.mirror.append(key, row);
                touched[i] = true;
                report.delta_ops += 1;
                report.simulated_time_s += update.simulated_time_s;
                if update.reorganisations > 0 && state.compact_mirror_on_reorg {
                    state.mirror.compact();
                }
            }
        }
        Ok(())
    }

    fn apply_delete(
        &mut self,
        key: u64,
        touched: &mut [bool],
        needs_rebuild: &mut [bool],
        report: &mut IngestReport,
    ) -> Result<(), IndexError> {
        let doomed = self.store.delete_primary(key);
        report.deleted_rows += doomed.len() as u64;
        for (i, state) in self.indexes.iter_mut().enumerate() {
            if needs_rebuild[i] {
                continue;
            }
            if let Backend::Updatable(ix) = &mut state.backend {
                if state.columns == [0] {
                    // Delta-exact: the index keys on the primary column,
                    // so deleting `key` there removes exactly the doomed
                    // rows.
                    let update = ix.delete(&[key])?;
                    state.mirror.delete_key(key);
                    touched[i] = true;
                    report.delta_ops += 1;
                    report.simulated_time_s += update.simulated_time_s;
                    if update.reorganisations > 0 && state.compact_mirror_on_reorg {
                        state.mirror.compact();
                    }
                } else if !doomed.is_empty() {
                    // An index-level delete on this column would also kill
                    // surviving rows sharing the doomed rows' keys —
                    // rebuild from the row store at batch end instead.
                    needs_rebuild[i] = true;
                }
            }
        }
        Ok(())
    }

    /// Restores the pre-batch row store and rebuilds every index that
    /// absorbed deltas or was rebuilt mid-batch.
    fn rollback(&mut self, saved: RowStore, touched: &[bool]) -> Result<(), IndexError> {
        self.store = saved;
        for (i, &was_touched) in touched.iter().enumerate() {
            if !was_touched {
                continue;
            }
            let def = self.indexes[i].def.clone();
            let columns = self.indexes[i].columns.clone();
            self.indexes[i] = build_index_state(
                &self.device,
                &self.registry,
                &self.store,
                self.value_pos,
                &self.planner,
                &def,
                &columns,
            )?;
        }
        Ok(())
    }

    /// Plans `query` without executing it.
    pub fn explain(&self, query: &TableQuery) -> Result<ExplainPlan, IndexError> {
        self.check_fetch(query)?;
        self.planner
            .plan(query, &self.schema, &self.candidate_views())
    }

    /// Plans and executes `query`: each predicate routes to the cheapest
    /// eligible index (or a row-store scan) and answers with `first_row`
    /// translated into table rowID space.
    pub fn query(&self, query: &TableQuery) -> Result<TableOutcome, IndexError> {
        let plan = self.explain(query)?;
        self.execute_plan(query, plan)
    }

    /// Executes `query` with every predicate forced through the named
    /// index (the forced arm of planner experiments); errors when the
    /// index cannot serve a predicate.
    pub fn query_forced(
        &self,
        query: &TableQuery,
        index: &str,
    ) -> Result<TableOutcome, IndexError> {
        self.check_fetch(query)?;
        let plan = self
            .planner
            .plan_forced(query, &self.candidate_views(), index)?;
        self.execute_plan(query, plan)
    }

    fn check_fetch(&self, query: &TableQuery) -> Result<(), IndexError> {
        if query.fetches_values() && self.value_pos.is_none() {
            return Err(IndexError::NoValueColumn {
                backend: "table".to_string().into(),
            });
        }
        Ok(())
    }

    fn candidate_views(&self) -> Vec<CandidateView<'_>> {
        self.indexes
            .iter()
            .map(|s| {
                let ix = s.backend.as_index();
                CandidateView {
                    name: &s.def.name,
                    spec: &s.def.spec,
                    columns: &s.def.columns,
                    schema: s.schema.as_ref(),
                    caps: ix.capabilities(),
                    has_values: ix.has_value_column(),
                    memory: ix.memory_usage().total(),
                    probe: s.probe,
                }
            })
            .collect()
    }

    fn execute_plan(
        &self,
        query: &TableQuery,
        plan: ExplainPlan,
    ) -> Result<TableOutcome, IndexError> {
        let fetch = query.fetches_values();
        let mut results = vec![LookupResult::miss(); query.len()];
        let mut metrics = LaunchMetrics::default();
        // Predicates routed to the same index fuse into one batch (fewer
        // simulated launches); scans answer immediately. Composite (typed)
        // indexes collect typed prefix operations, everything else the raw
        // single-u64 operations of the zero-overhead path.
        enum GroupOps {
            Raw(Vec<QueryOp>),
            Typed(Vec<TypedOp>),
        }
        let mut groups: Vec<(&str, Vec<usize>, GroupOps)> = Vec::new();
        for (slot, (predicate, choice)) in query.predicates().iter().zip(&plan.choices).enumerate()
        {
            match &choice.route {
                Route::Scan => {
                    results[slot] = self.scan_predicate(predicate, fetch);
                    metrics.simulated_time_s +=
                        self.planner.scan_cost_per_row_s * self.store.live_count() as f64;
                }
                Route::Index { index, .. } => {
                    let state = self
                        .indexes
                        .iter()
                        .find(|s| s.def.name == *index)
                        .expect("plans route to existing indexes");
                    let at = match groups.iter().position(|(name, ..)| name == index) {
                        Some(at) => {
                            groups[at].1.push(slot);
                            at
                        }
                        None => {
                            let ops = match state.schema {
                                Some(_) => GroupOps::Typed(Vec::new()),
                                None => GroupOps::Raw(Vec::new()),
                            };
                            groups.push((index, vec![slot], ops));
                            groups.len() - 1
                        }
                    };
                    match &mut groups[at].2 {
                        GroupOps::Raw(ops) => ops.push(
                            predicate
                                .as_op()
                                .expect("the planner only routes compilable predicates"),
                        ),
                        GroupOps::Typed(ops) => ops.push(
                            predicate
                                .as_typed_op(&state.def.columns)
                                .expect("the planner only routes covered predicates"),
                        ),
                    }
                }
            }
        }
        for (name, slots, ops) in groups {
            let state = self
                .indexes
                .iter()
                .find(|s| s.def.name == name)
                .expect("plans route to existing indexes");
            let outcome = match ops {
                GroupOps::Raw(ops) => {
                    let mut batch = QueryBatch::new();
                    for op in ops {
                        batch = match op {
                            QueryOp::Point(key) => batch.point(key),
                            QueryOp::Range(lower, upper) => batch.range(lower, upper),
                        };
                    }
                    state
                        .backend
                        .as_index()
                        .execute(&batch.fetch_values(fetch))?
                }
                GroupOps::Typed(ops) => {
                    let mut batch = TypedBatch::new().fetch_values(fetch);
                    for op in ops {
                        batch = batch.op(op);
                    }
                    state.backend.as_index().execute_typed(&batch)?
                }
            };
            metrics.merge(&outcome.metrics);
            for (slot, mut result) in slots.into_iter().zip(outcome.results) {
                if result.first_row != MISS {
                    result.first_row = state.mirror.global(result.first_row);
                }
                results[slot] = result;
            }
        }
        Ok(TableOutcome {
            results,
            metrics,
            plan,
        })
    }

    /// Answers one predicate on the scan fallback path.
    fn scan_predicate(&self, predicate: &Predicate, fetch: bool) -> LookupResult {
        if let Predicate::Composite {
            columns,
            prefix,
            range,
        } = predicate
        {
            let positions: Vec<usize> = columns
                .iter()
                .map(|c| {
                    self.schema
                        .column_position(c)
                        .expect("planned predicates reference known columns")
                })
                .collect();
            return self
                .store
                .scan_composite(&positions, prefix, *range, self.value_pos, fetch);
        }
        let column = self
            .schema
            .column_position(predicate.column())
            .expect("planned predicates reference known columns");
        self.store.scan(
            column,
            predicate
                .as_op()
                .expect("scalar predicates compile to single-column ops"),
            self.value_pos,
            fetch,
        )
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("columns", &self.schema.columns)
            .field("indexes", &self.index_names())
            .field("live_rows", &self.store.live_count())
            .finish()
    }
}

/// Builds (or rebuilds) one index from the live row store: fresh dense
/// mirror, calibrated probe costs, durable directories wiped first (see
/// the [module docs](self)). Composite definitions build through the
/// registry's typed path and always come back read-only — table deltas
/// speak raw single-`u64` keys, which a composite index rejects, so they
/// rebuild per mutating batch instead.
fn build_index_state(
    device: &Device,
    registry: &Registry,
    store: &RowStore,
    value_pos: Option<usize>,
    planner: &Planner,
    def: &IndexDef,
    columns: &[usize],
) -> Result<IndexState, IndexError> {
    wipe_durable_dir(&def.spec)?;
    if def.is_composite() {
        return build_composite_state(device, registry, store, value_pos, planner, def, columns);
    }
    let (keys, rows) = store.column_live(columns[0]);
    let values: Option<Vec<u64>> =
        value_pos.map(|vp| rows.iter().map(|&r| store.value_at(vp, r)).collect());
    let spec = match &values {
        Some(v) => IndexSpec::with_values(device, &keys, v),
        None => IndexSpec::keys_only(device, &keys),
    };
    let backend = match registry.build_updatable(&def.spec, &spec) {
        Ok(ix) => Backend::Updatable(ix),
        // Not updatable under this registry (or not updatable at all):
        // build read-only. Genuine build failures resurface here.
        Err(_) => Backend::ReadOnly(registry.build(&def.spec, &spec)?),
    };
    let probe = planner.calibrate(backend.as_index(), &keys)?;
    Ok(IndexState {
        def: def.clone(),
        columns: columns.to_vec(),
        schema: None,
        backend,
        mirror: Mirror::dense(&keys, &rows),
        compact_mirror_on_reorg: rowids_renumber_on_reorg(&def.spec),
        probe,
    })
}

/// The composite arm of [`build_index_state`]: projects the key columns
/// into typed tuples, resolves the key schema (explicit `{...}` in the
/// spec, else all-`u64`), and builds read-only through the registry.
fn build_composite_state(
    device: &Device,
    registry: &Registry,
    store: &RowStore,
    value_pos: Option<usize>,
    planner: &Planner,
    def: &IndexDef,
    columns: &[usize],
) -> Result<IndexState, IndexError> {
    let schema = match parse_schema_name(&def.spec)? {
        Some((_, schema)) => schema,
        None => KeySchema::new(vec![ColumnType::U64; columns.len()])?,
    };
    // TableSchema::validate checked arity; column types must be unsigned
    // because table columns hold raw u64 values.
    for column in schema.columns() {
        if matches!(column, ColumnType::I64 | ColumnType::Str(_)) {
            return Err(IndexError::Backend {
                backend: def.spec.clone().into(),
                message: format!(
                    "table columns are u64, so composite index {:?} cannot use \
                     column type {column} — declare u8/u16/u32/u64",
                    def.name
                ),
            });
        }
    }
    let (raw_tuples, rows) = store.tuples_live(columns);
    let tuples: Vec<KeyTuple> = raw_tuples
        .iter()
        .map(|t| t.iter().map(|&v| KeyValue::U64(v)).collect())
        .collect();
    let values: Option<Vec<u64>> =
        value_pos.map(|vp| rows.iter().map(|&r| store.value_at(vp, r)).collect());
    let spec = match &values {
        Some(v) => IndexSpec::typed_with_values(device, schema.clone(), &tuples, v),
        None => IndexSpec::typed(device, schema.clone(), &tuples),
    };
    let backend = Backend::ReadOnly(registry.build(&def.spec, &spec)?);
    // Calibration probes run in the backend's raw key domain: the encoded
    // keys themselves for direct (single-limb) schemas; for dictionary-
    // mapped schemas the probes miss, which still measures launch cost.
    let probe_keys = if schema.limbs() == 1 {
        schema.encode_rows(&tuples)?
    } else {
        Vec::new()
    };
    let probe = planner.calibrate(backend.as_index(), &probe_keys)?;
    // The mirror's key slot holds the leading column value; composite
    // indexes never take the delta path, so it only translates rowIDs.
    let leading: Vec<u64> = raw_tuples.iter().map(|t| t[0]).collect();
    Ok(IndexState {
        def: def.clone(),
        columns: columns.to_vec(),
        schema: Some(schema),
        backend,
        mirror: Mirror::dense(&leading, &rows),
        compact_mirror_on_reorg: rowids_renumber_on_reorg(&def.spec),
        probe,
    })
}

/// Whether the backend's rowID space renumbers when an update report
/// carries `reorganisations > 0`. Monolithic dynamic backends renumber
/// densely; sharded specs keep stable outer rowIDs (their per-shard
/// mirrors absorb the renumbering).
fn rowids_renumber_on_reorg(spec: &str) -> bool {
    // Brace schemas sit anywhere in the name; strip them before looking
    // for the shard production.
    let stripped = parse_schema_name(spec).ok().flatten().map(|(rest, _)| rest);
    let spec = stripped.as_deref().unwrap_or(spec);
    let base = parse_durable_name(spec).map(|(b, _)| b).unwrap_or(spec);
    ShardSpec::parse(base).is_none()
}

/// Resets the WAL directory of a `"+wal:<path>"` spec before a build, so
/// the durable layer creates fresh state instead of recovering a previous
/// build's rows. No-op for non-durable specs and absent directories.
fn wipe_durable_dir(spec: &str) -> Result<(), IndexError> {
    if let Some((_, path)) = parse_durable_name(spec) {
        match std::fs::remove_dir_all(path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(IndexError::Backend {
                    backend: spec.to_string().into(),
                    message: format!("failed to reset WAL directory {path:?}: {e}"),
                })
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrors_translate_append_delete_and_compact() {
        let mut m = Mirror::dense(&[10, 20, 10], &[0, 1, 2]);
        assert_eq!(m.global(1), 1);
        m.append(30, 7);
        assert_eq!(m.global(3), 7);
        m.delete_key(10);
        assert_eq!(m.global(1), 1);
        m.compact();
        // Survivors renumber densely: locals 0,1 now map to rows 1,7.
        assert_eq!((m.global(0), m.global(1)), (1, 7));
        assert_eq!(m.sample_keys(8), vec![20, 30]);
    }

    #[test]
    fn sharded_specs_keep_stable_outer_rowids() {
        assert!(rowids_renumber_on_reorg("RXD"));
        assert!(rowids_renumber_on_reorg("RXD+wal:/tmp/x"));
        assert!(rowids_renumber_on_reorg("RXD:sah"));
        assert!(!rowids_renumber_on_reorg("RXD@4"));
        assert!(!rowids_renumber_on_reorg("RXD:sah@4:hash"));
        assert!(!rowids_renumber_on_reorg("RXD@2+wal:/tmp/x"));
    }
}
