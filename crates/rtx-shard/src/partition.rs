//! The concrete key-space partitioners behind the [`KeyRouter`] trait.
//!
//! Three strategies, mirroring how distributed secondary indexes place keys:
//!
//! * [`HashPartitioner`] — a mixed hash of the key modulo the shard count.
//!   Balanced for any key distribution (including densely clustered keys),
//!   but order-destroying: a range lookup must be broadcast to every shard.
//! * [`WeightedHashPartitioner`] — hash routing through an explicit
//!   slot-to-shard table ([`WEIGHTED_HASH_SLOTS`] slots): the balanced
//!   table behaves like plain hashing, and the hot-shard rebalancer
//!   reassigns individual slots from hot shards to cold ones, skewing the
//!   *placement* weights without touching the hash function.
//! * [`RangePartitioner`] — contiguous spans of the `u64` key domain, with
//!   boundaries picked from the quantiles of the build-time key column so
//!   shards start balanced. Order-preserving: a range lookup is split at
//!   the span boundaries and only touches the owning shards.

use rtx_query::KeyRouter;

/// SplitMix64 finalizer: a cheap, well-mixed `u64 -> u64` permutation, so
/// that clustered key sets (dense domains, shared prefixes) still spread
/// evenly over the shards.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash partitioning: `shard = mix64(key) % shards`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashPartitioner {
    shards: usize,
}

impl HashPartitioner {
    /// A hash partitioner over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a sharded index needs at least one shard");
        HashPartitioner { shards }
    }
}

impl KeyRouter for HashPartitioner {
    fn shard_count(&self) -> usize {
        self.shards
    }

    fn shard_of_point(&self, key: u64) -> usize {
        (mix64(key) % self.shards as u64) as usize
    }

    fn shards_of_range(&self, lower: u64, upper: u64) -> Vec<(usize, (u64, u64))> {
        // Hashing scatters the keys of any range over every shard: the
        // range is broadcast whole and the gather merges the per-shard
        // answers (each shard only ever counts its own keys, so nothing is
        // double-counted).
        (0..self.shards).map(|s| (s, (lower, upper))).collect()
    }
}

/// Number of hash slots a [`WeightedHashPartitioner`] distributes over its
/// shards. 256 slots give the rebalancer sub-shard granularity (a hot shard
/// donates individual slots) while keeping the table a single cache line
/// region and the manifest encoding small.
pub const WEIGHTED_HASH_SLOTS: usize = 256;

/// Weighted hash partitioning: `shard = slots[mix64(key) % SLOTS]`.
///
/// The indirection table is what hot-shard rebalancing mutates: keys still
/// spread over [`WEIGHTED_HASH_SLOTS`] slots by the same mixed hash, but
/// each slot's *owner* is explicit, so the rebalancer can hand a hot
/// shard's slots to cold shards one at a time. The
/// [`balanced`](Self::balanced) table assigns slot `i` to shard
/// `i % shards` — identical routing to [`HashPartitioner`] whenever the
/// shard count divides the slot count (all power-of-two counts up to 256).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedHashPartitioner {
    /// Slot-to-shard table, length [`WEIGHTED_HASH_SLOTS`].
    slots: Vec<u32>,
    shards: usize,
}

impl WeightedHashPartitioner {
    /// The evenly balanced table: slot `i` belongs to shard `i % shards`.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn balanced(shards: usize) -> Self {
        assert!(shards >= 1, "a sharded index needs at least one shard");
        WeightedHashPartitioner {
            slots: (0..WEIGHTED_HASH_SLOTS as u32)
                .map(|i| i % shards as u32)
                .collect(),
            shards,
        }
    }

    /// Rebuilds a partitioner from a previously captured slot table (e.g. a
    /// durability manifest), restoring the exact routing of the original.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero, the table length is not
    /// [`WEIGHTED_HASH_SLOTS`], or a slot names a shard out of range.
    pub fn from_slots(slots: Vec<u32>, shards: usize) -> Self {
        assert!(shards >= 1, "a sharded index needs at least one shard");
        assert_eq!(
            slots.len(),
            WEIGHTED_HASH_SLOTS,
            "weighted-hash slot tables have a fixed size"
        );
        assert!(
            slots.iter().all(|&s| (s as usize) < shards),
            "slot table references a shard out of range"
        );
        WeightedHashPartitioner { slots, shards }
    }

    /// The slot-to-shard table (length [`WEIGHTED_HASH_SLOTS`]) — enough to
    /// reconstruct the partitioner with [`from_slots`](Self::from_slots).
    pub fn slots(&self) -> &[u32] {
        &self.slots
    }

    /// The hash slot a key falls into (independent of the table, so callers
    /// can aggregate per-slot statistics before reassigning owners).
    pub fn slot_of_key(key: u64) -> usize {
        (mix64(key) % WEIGHTED_HASH_SLOTS as u64) as usize
    }
}

impl KeyRouter for WeightedHashPartitioner {
    fn shard_count(&self) -> usize {
        self.shards
    }

    fn shard_of_point(&self, key: u64) -> usize {
        self.slots[Self::slot_of_key(key)] as usize
    }

    fn shards_of_range(&self, lower: u64, upper: u64) -> Vec<(usize, (u64, u64))> {
        // Hash routing scatters any range over every shard (see
        // `HashPartitioner`): broadcast whole, gather merges.
        (0..self.shards).map(|s| (s, (lower, upper))).collect()
    }
}

/// Contiguous-range partitioning of the `u64` key domain.
///
/// Shard `i` owns the keys in `(bounds[i-1], bounds[i]]` (shard 0 from key
/// 0, the last shard up to `u64::MAX`), so the whole domain — not just the
/// build-time keys — has exactly one owner and inserts of never-seen keys
/// route deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangePartitioner {
    /// Inclusive upper bounds of every shard but the last; non-decreasing.
    bounds: Vec<u64>,
}

impl RangePartitioner {
    /// Boundaries at the quantiles of `keys`, so each shard starts with an
    /// (approximately) equal slice of the build column even when the key
    /// distribution is skewed. Falls back to [`uniform`](Self::uniform)
    /// splits of the full domain when `keys` is empty.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn from_keys(keys: &[u64], shards: usize) -> Self {
        assert!(shards >= 1, "a sharded index needs at least one shard");
        if keys.is_empty() {
            return RangePartitioner::uniform(shards);
        }
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let bounds = (1..shards)
            .map(|i| sorted[(i * n / shards).saturating_sub(1).min(n - 1)])
            .collect();
        RangePartitioner { bounds }
    }

    /// Rebuilds a partitioner from previously captured
    /// [`bounds`](Self::bounds) (e.g. a durability manifest), restoring the
    /// exact routing of the original.
    pub fn from_bounds(bounds: Vec<u64>) -> Self {
        RangePartitioner { bounds }
    }

    /// The inclusive per-shard upper bounds (one fewer than the shard
    /// count) — enough to reconstruct the partitioner with
    /// [`from_bounds`](Self::from_bounds).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Boundaries cutting the full `u64` domain into `shards` equal spans.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn uniform(shards: usize) -> Self {
        assert!(shards >= 1, "a sharded index needs at least one shard");
        let width = (u64::MAX as u128 + 1) / shards as u128;
        let bounds = (1..shards)
            .map(|i| (i as u128 * width - 1) as u64)
            .collect();
        RangePartitioner { bounds }
    }

    /// The inclusive key span `(lo, hi)` owned by shard `s`, or `None` for
    /// a shard whose span is empty (possible when boundary quantiles
    /// collide on duplicate keys).
    fn span(&self, s: usize) -> Option<(u64, u64)> {
        let lo = if s == 0 {
            0
        } else {
            self.bounds[s - 1].checked_add(1)?
        };
        let hi = if s == self.bounds.len() {
            u64::MAX
        } else {
            self.bounds[s]
        };
        (lo <= hi).then_some((lo, hi))
    }
}

impl KeyRouter for RangePartitioner {
    fn shard_count(&self) -> usize {
        self.bounds.len() + 1
    }

    fn shard_of_point(&self, key: u64) -> usize {
        // First shard whose upper bound reaches the key; everything above
        // the last bound belongs to the final shard.
        self.bounds.partition_point(|&b| b < key)
    }

    fn shards_of_range(&self, lower: u64, upper: u64) -> Vec<(usize, (u64, u64))> {
        let mut parts = Vec::new();
        for s in self.shard_of_point(lower)..=self.shard_of_point(upper) {
            if let Some((lo, hi)) = self.span(s) {
                let (sub_lower, sub_upper) = (lower.max(lo), upper.min(hi));
                if sub_lower <= sub_upper {
                    parts.push((s, (sub_lower, sub_upper)));
                }
            }
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers_domain_once(router: &dyn KeyRouter, probes: &[u64]) {
        for &key in probes {
            let owner = router.shard_of_point(key);
            assert!(owner < router.shard_count(), "key {key}");
            // The single-key range resolves to spans that contain the key
            // exactly once, and the owning shard is among them.
            let parts = router.shards_of_range(key, key);
            let holding: Vec<usize> = parts
                .iter()
                .filter(|&&(_, (lo, hi))| lo <= key && key <= hi)
                .map(|&(s, _)| s)
                .collect();
            assert!(holding.contains(&owner), "key {key} not routed to owner");
        }
    }

    #[test]
    fn hash_partitioner_is_total_and_balanced() {
        let router = HashPartitioner::new(8);
        assert_eq!(router.shard_count(), 8);
        covers_domain_once(&router, &[0, 1, 7, 1 << 40, u64::MAX]);

        // A dense domain spreads: no shard owns more than twice its share.
        let mut counts = vec![0usize; 8];
        for key in 0..8000u64 {
            counts[router.shard_of_point(key)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 500 && c < 2000), "{counts:?}");

        // Ranges broadcast to every shard, whole.
        let parts = router.shards_of_range(10, 20);
        assert_eq!(parts.len(), 8);
        assert!(parts.iter().all(|&(_, bounds)| bounds == (10, 20)));
    }

    #[test]
    fn balanced_weighted_hash_matches_plain_hash_for_dividing_counts() {
        for shards in [1usize, 2, 4, 8] {
            let plain = HashPartitioner::new(shards);
            let weighted = WeightedHashPartitioner::balanced(shards);
            assert_eq!(weighted.shard_count(), shards);
            for key in (0..4000u64).chain([u64::MAX, 1 << 40]) {
                assert_eq!(
                    weighted.shard_of_point(key),
                    plain.shard_of_point(key),
                    "key {key}, {shards} shards"
                );
            }
            let parts = weighted.shards_of_range(10, 20);
            assert_eq!(parts.len(), shards);
            assert!(parts.iter().all(|&(_, bounds)| bounds == (10, 20)));
        }
    }

    #[test]
    fn weighted_hash_routes_through_the_slot_table() {
        // Hand every slot to shard 2: all keys land there.
        let slots = vec![2u32; WEIGHTED_HASH_SLOTS];
        let router = WeightedHashPartitioner::from_slots(slots.clone(), 4);
        for key in [0u64, 1, 99, u64::MAX] {
            assert_eq!(router.shard_of_point(key), 2);
        }
        assert_eq!(router.slots(), &slots[..]);

        // Round-trips through its captured table.
        let balanced = WeightedHashPartitioner::balanced(3);
        let rebuilt = WeightedHashPartitioner::from_slots(balanced.slots().to_vec(), 3);
        assert_eq!(balanced, rebuilt);
        covers_domain_once(&rebuilt, &[0, 5, 1 << 33, u64::MAX]);
    }

    #[test]
    #[should_panic(expected = "fixed size")]
    fn weighted_hash_rejects_malformed_tables() {
        let _ = WeightedHashPartitioner::from_slots(vec![0; 7], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn weighted_hash_rejects_out_of_range_slots() {
        let _ = WeightedHashPartitioner::from_slots(vec![5; WEIGHTED_HASH_SLOTS], 2);
    }

    #[test]
    fn range_partitioner_quantiles_balance_the_build_column() {
        let keys: Vec<u64> = (0..1000).map(|i| i * 3).collect();
        let router = RangePartitioner::from_keys(&keys, 4);
        assert_eq!(router.shard_count(), 4);
        let mut counts = vec![0usize; 4];
        for &key in &keys {
            counts[router.shard_of_point(key)] += 1;
        }
        assert_eq!(counts, vec![250, 250, 250, 250]);
        covers_domain_once(&router, &[0, 1, 749, 750, 2997, 1 << 50, u64::MAX]);
    }

    #[test]
    fn range_partitioner_splits_ranges_at_boundaries() {
        // Keys 0..400 over 4 shards: bounds at 99, 199, 299.
        let keys: Vec<u64> = (0..400).collect();
        let router = RangePartitioner::from_keys(&keys, 4);
        assert_eq!(
            router.shards_of_range(50, 250),
            vec![(0, (50, 99)), (1, (100, 199)), (2, (200, 250))]
        );
        // A range inside one span stays whole.
        assert_eq!(router.shards_of_range(120, 130), vec![(1, (120, 130))]);
        // A range beyond the build keys still lands in the last shard.
        assert_eq!(router.shards_of_range(1000, 2000), vec![(3, (1000, 2000))]);
        // Sub-ranges tile the original range exactly.
        let parts = router.shards_of_range(0, u64::MAX);
        assert_eq!(parts.len(), 4);
        let mut expected_next = 0u64;
        for &(_, (lo, hi)) in &parts {
            assert_eq!(lo, expected_next);
            expected_next = hi.wrapping_add(1);
        }
        assert_eq!(expected_next, 0, "last span ends at u64::MAX");
    }

    #[test]
    fn duplicate_heavy_columns_may_leave_shards_empty_but_stay_total() {
        // One huge duplicate run: all quantile bounds collide.
        let keys = vec![7u64; 100];
        let router = RangePartitioner::from_keys(&keys, 4);
        assert_eq!(router.shard_count(), 4);
        assert_eq!(router.shard_of_point(7), 0);
        covers_domain_once(&router, &[0, 6, 7, 8, u64::MAX]);
        // The collided middle shards own nothing; the split skips them.
        let parts = router.shards_of_range(0, 100);
        assert_eq!(parts, vec![(0, (0, 7)), (3, (8, 100))]);
    }

    #[test]
    fn empty_and_single_shard_partitioners() {
        let router = RangePartitioner::from_keys(&[], 3);
        assert_eq!(router, RangePartitioner::uniform(3));
        covers_domain_once(&router, &[0, 1 << 20, u64::MAX]);

        let one = RangePartitioner::from_keys(&[5, 9], 1);
        assert_eq!(one.shard_count(), 1);
        assert_eq!(one.shards_of_range(0, u64::MAX), vec![(0, (0, u64::MAX))]);
        assert_eq!(HashPartitioner::new(1).shard_of_point(123), 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panic() {
        let _ = HashPartitioner::new(0);
    }
}
