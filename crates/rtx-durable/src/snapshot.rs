//! Checkpoint snapshots: the compacted base state, serialized so the WAL
//! prefix it covers can be truncated.
//!
//! A snapshot is written only at a *clean* point (the
//! [`checkpoint_rows`](rtx_query::UpdatableIndex::checkpoint_rows)
//! contract): the live `(key, value)` rows in rowID order are exactly the
//! columns a fresh build reproduces the index from. Files are named
//! `snap-<bsn>.snap` — the snapshot covers every WAL record with a bsn at
//! or below its own — and written to a temp name, fsynced, then renamed,
//! so a crash mid-write leaves the previous snapshot untouched. Recovery
//! picks the newest snapshot that decodes intact and ignores the rest.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::record::{crc32, put_u32, put_u64, Reader};

const MAGIC: u32 = 0x5258_534E; // "RXSN"

/// One decoded snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The WAL frontier the snapshot covers (replay starts past it).
    pub bsn: u64,
    /// Row-allocator position at the snapshot point. For an unsharded
    /// index this equals `rows.len()` (clean states are dense); for a
    /// shard of a sharded index it is the *global* allocator, persisted in
    /// the root checkpoint instead — shard snapshots store 0 here.
    pub next_row: u64,
    /// Whether the index carries a real value column.
    pub has_values: bool,
    /// Live `(key, value)` rows in rowID order.
    pub rows: Vec<(u64, u64)>,
    /// Per-row global rowIDs (present only in per-shard snapshots of a
    /// sharded index, where local rowIDs `0..n` map to these globals).
    pub globals: Option<Vec<u32>>,
}

impl Snapshot {
    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(32 + self.rows.len() * 16);
        put_u64(&mut body, self.bsn);
        put_u64(&mut body, self.next_row);
        body.push(self.has_values as u8);
        body.push(self.globals.is_some() as u8);
        put_u64(&mut body, self.rows.len() as u64);
        for &(k, _) in &self.rows {
            put_u64(&mut body, k);
        }
        for &(_, v) in &self.rows {
            put_u64(&mut body, v);
        }
        if let Some(globals) = &self.globals {
            for &g in globals {
                put_u32(&mut body, g);
            }
        }
        let mut file = Vec::with_capacity(body.len() + 16);
        put_u32(&mut file, MAGIC);
        put_u32(&mut file, crc32(&body));
        put_u64(&mut file, body.len() as u64);
        file.extend_from_slice(&body);
        file
    }

    fn decode(buf: &[u8]) -> Option<Snapshot> {
        let mut r = Reader { buf, pos: 0 };
        if r.u32()? != MAGIC {
            return None;
        }
        let crc = r.u32()?;
        let len = r.u64()? as usize;
        let body = r.bytes(len)?;
        if crc32(body) != crc {
            return None;
        }
        let mut b = Reader { buf: body, pos: 0 };
        let bsn = b.u64()?;
        let next_row = b.u64()?;
        let has_values = b.u8()? != 0;
        let has_globals = b.u8()? != 0;
        let n = b.u64()? as usize;
        let keys = b.u64s(n)?;
        let values = b.u64s(n)?;
        let globals = if has_globals { Some(b.u32s(n)?) } else { None };
        Some(Snapshot {
            bsn,
            next_row,
            has_values,
            rows: keys.into_iter().zip(values).collect(),
            globals,
        })
    }

    /// Splits the rows back into the parallel build columns (`values` is
    /// `None` when the index had no value column).
    pub fn columns(&self) -> (Vec<u64>, Option<Vec<u64>>) {
        let keys = self.rows.iter().map(|&(k, _)| k).collect();
        let values = self
            .has_values
            .then(|| self.rows.iter().map(|&(_, v)| v).collect());
        (keys, values)
    }
}

fn snapshot_path(dir: &Path, bsn: u64) -> PathBuf {
    dir.join(format!("snap-{bsn:020}.snap"))
}

fn parse_snapshot_bsn(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

/// Writes `snapshot` durably into `dir` (temp + fsync + rename), deletes
/// every older snapshot, and returns the file size in bytes.
pub fn write_snapshot(dir: &Path, snapshot: &Snapshot) -> io::Result<u64> {
    fs::create_dir_all(dir)?;
    let bytes = snapshot.encode();
    let tmp = dir.join(format!("snap-{:020}.tmp", snapshot.bsn));
    let mut file = File::create(&tmp)?;
    file.write_all(&bytes)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, snapshot_path(dir, snapshot.bsn))?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    // Older snapshots are superseded; leftovers of interrupted writes too.
    for (bsn, path) in snapshot_files(dir)? {
        if bsn < snapshot.bsn {
            let _ = fs::remove_file(path);
        }
    }
    Ok(bytes.len() as u64)
}

/// Reads the newest snapshot in `dir` that decodes intact, with its file
/// size. `Ok(None)` when no usable snapshot exists.
pub fn read_latest_snapshot(dir: &Path) -> io::Result<Option<(Snapshot, u64)>> {
    let mut files = snapshot_files(dir)?;
    files.sort_by_key(|file| std::cmp::Reverse(file.0));
    for (_, path) in files {
        let mut buf = Vec::new();
        File::open(&path)?.read_to_end(&mut buf)?;
        if let Some(snapshot) = Snapshot::decode(&buf) {
            return Ok(Some((snapshot, buf.len() as u64)));
        }
    }
    Ok(None)
}

fn snapshot_files(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut files = Vec::new();
    match fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries {
                let entry = entry?;
                if let Some(bsn) = entry.file_name().to_str().and_then(parse_snapshot_bsn) {
                    files.push((bsn, entry.path()));
                }
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rtx-durable-snap-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn snap(bsn: u64, globals: bool) -> Snapshot {
        Snapshot {
            bsn,
            next_row: 3,
            has_values: true,
            rows: vec![(10, 100), (20, 200), (30, 300)],
            globals: globals.then(|| vec![5, 9, 11]),
        }
    }

    #[test]
    fn snapshots_round_trip_and_supersede_older_ones() {
        let dir = tmp("roundtrip");
        let first = snap(4, false);
        let bytes = write_snapshot(&dir, &first).unwrap();
        assert!(bytes > 0);
        let (read, size) = read_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(read, first);
        assert_eq!(size, bytes);
        let (keys, values) = read.columns();
        assert_eq!(keys, vec![10, 20, 30]);
        assert_eq!(values, Some(vec![100, 200, 300]));

        let second = snap(9, true);
        write_snapshot(&dir, &second).unwrap();
        let (read, _) = read_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(read, second);
        assert_eq!(
            snapshot_files(&dir).unwrap().len(),
            1,
            "older snapshot deleted"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_corrupt_newest_snapshot_falls_back_to_the_previous_one() {
        let dir = tmp("corrupt");
        let good = snap(4, false);
        write_snapshot(&dir, &good).unwrap();
        // A later snapshot written by hand, then damaged (bit flip in the
        // body) — as if the process died while the disk scribbled on it.
        let bad = snap(9, false);
        let mut bytes = bad.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x80;
        fs::write(snapshot_path(&dir, 9), &bytes).unwrap();

        let (read, _) = read_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(read, good, "corrupt snapshot skipped");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_and_missing_dirs_read_as_no_snapshot() {
        let dir = tmp("missing");
        assert!(read_latest_snapshot(&dir).unwrap().is_none());
        fs::create_dir_all(&dir).unwrap();
        assert!(read_latest_snapshot(&dir).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }
}
