//! Steady-state allocation accounting for the host query path.
//!
//! The arena work (`ExecArena`, `QueryOps`, shared-outcome scatter) claims
//! the *host* execution path stops allocating per operation once its
//! buffers have warmed up. This binary proves it with a counting global
//! allocator over a deliberately trivial backend: the backend answers
//! point and range chunks out of a sorted mirror with exactly one
//! allocation per chunk (the result vector), so every remaining
//! allocation the counter sees belongs to the layer this claim is about —
//! grouping, chunk dispatch, result scatter, service coalescing and reply
//! channels. The simulated device backends (RX, SA, …) intentionally sit
//! outside the measurement: `optix_sim` allocates per-ray host structures
//! standing in for device buffers, which is per-op by design.
//!
//! The counter is process-global (it sees every thread, including the
//! service coalescer and the worker pool), so the bounds below are
//! end-to-end, not an accounting trick.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rtindex::rtx_query::{BatchOutcome, IndexBuildMetrics, LookupResult, MISS};
use rtindex::{
    Capabilities, ExecArena, IndexError, QueryBatch, QueryService, SecondaryIndex, ServiceConfig,
};
use rtx_workloads as wl;

/// Counts every allocation and reallocation; frees are not interesting
/// here (a path that allocates nothing frees nothing).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A host-only backend with a fixed allocation profile: one `Vec` per
/// chunk call, nothing else. Lookups binary-search a sorted `(key, value)`
/// mirror, so the answers are real (hits, misses, duplicates, sums).
struct MirrorIndex {
    /// Sorted by key; rowID is the position in the original column.
    rows: Vec<(u64, u64, u32)>,
}

impl MirrorIndex {
    fn build(keys: &[u64], values: &[u64]) -> Self {
        let mut rows: Vec<(u64, u64, u32)> = keys
            .iter()
            .zip(values)
            .enumerate()
            .map(|(row, (&k, &v))| (k, v, row as u32))
            .collect();
        rows.sort_unstable();
        MirrorIndex { rows }
    }

    fn lookup(&self, lower: u64, upper: u64, fetch: bool) -> LookupResult {
        let start = self.rows.partition_point(|&(k, _, _)| k < lower);
        let mut result = LookupResult {
            first_row: MISS,
            hit_count: 0,
            value_sum: 0,
        };
        for &(k, v, row) in &self.rows[start..] {
            if k > upper {
                break;
            }
            result.first_row = result.first_row.min(row);
            result.hit_count += 1;
            if fetch {
                result.value_sum = result.value_sum.wrapping_add(v);
            }
        }
        result
    }

    fn chunk(&self, bounds: impl Iterator<Item = (u64, u64)>, fetch: bool) -> BatchOutcome {
        BatchOutcome {
            results: bounds.map(|(l, u)| self.lookup(l, u, fetch)).collect(),
            ..Default::default()
        }
    }
}

impl SecondaryIndex for MirrorIndex {
    fn name(&self) -> &str {
        "MIRROR"
    }
    fn key_count(&self) -> usize {
        self.rows.len()
    }
    fn memory_bytes(&self) -> u64 {
        (self.rows.len() * std::mem::size_of::<(u64, u64, u32)>()) as u64
    }
    fn build_metrics(&self) -> IndexBuildMetrics {
        IndexBuildMetrics::default()
    }
    fn capabilities(&self) -> Capabilities {
        Capabilities::read_only()
    }
    fn has_value_column(&self) -> bool {
        true
    }
    fn point_chunk(&self, queries: &[u64], fetch: bool) -> Result<BatchOutcome, IndexError> {
        Ok(self.chunk(queries.iter().map(|&q| (q, q)), fetch))
    }
    fn range_chunk(&self, ranges: &[(u64, u64)], fetch: bool) -> Result<BatchOutcome, IndexError> {
        Ok(self.chunk(ranges.iter().copied(), fetch))
    }
}

/// One test so the two phases cannot interleave with each other's counts
/// (test binaries run `#[test]`s on parallel threads by default).
#[test]
fn steady_state_host_path_allocations_are_bounded() {
    let keys = wl::dense_shuffled(4096, 11);
    let values = wl::value_column(keys.len(), 12);
    let ix = MirrorIndex::build(&keys, &values);

    // -- Direct path: execute_in with a reused arena ---------------------
    //
    // The same pre-built batch, executed repeatedly. After warm-up every
    // arena buffer has reached capacity, so what remains per call is the
    // per-call constant: the outcome's result vector plus the backend's
    // one chunk vector. The budget is per *call* while the op count grows
    // 16x — which is exactly the per-op `O(1)` claim.
    let mut arena = ExecArena::new();
    for &ops in &[64usize, 1024] {
        let queries = wl::point_lookups_with_hit_rate(&keys, ops, 0.8, 13);
        let batch = QueryBatch::of_points(&queries)
            .range(10, 90) // exercise both runs
            .fetch_values(true);
        for _ in 0..8 {
            ix.execute_in(&batch, &mut arena).unwrap(); // warm-up
        }
        let rounds = 32u64;
        let before = allocs();
        for _ in 0..rounds {
            ix.execute_in(&batch, &mut arena).unwrap();
        }
        let per_call = (allocs() - before) as f64 / rounds as f64;
        assert!(
            per_call <= 8.0,
            "direct path: {per_call:.1} allocations per {ops}-op call; \
             want a small per-call constant"
        );
    }

    // -- Coalesced service path ------------------------------------------
    //
    // Pre-built batches through the service: submission enqueues an Arc
    // clone, the coalescer appends into its persistent fusion + arena, and
    // the scatter hands every client a view into one shared outcome. Per
    // submission there remain the reply channel, the queue node and the
    // outcome Arc — a constant — so the per-op cost shrinks with batch
    // size instead of tracking it.
    let service = QueryService::start(
        Box::new(MirrorIndex::build(&keys, &values)),
        ServiceConfig::default(),
    );
    let client = service.handle();
    let queries = wl::point_lookups_with_hit_rate(&keys, 512, 0.8, 14);
    let batch = Arc::new(QueryBatch::of_points(&queries).fetch_values(true));
    for _ in 0..8 {
        // warm-up
        let pending = client.submit_shared(Arc::clone(&batch)).unwrap();
        pending.wait_shared().unwrap();
    }
    let rounds = 32u64;
    let before = allocs();
    for _ in 0..rounds {
        // wait_shared: the zero-copy view, not the materialized clone.
        let pending = client.submit_shared(Arc::clone(&batch)).unwrap();
        let view = pending.wait_shared().unwrap();
        assert_eq!(view.results().len(), 512);
    }
    let per_round = (allocs() - before) as f64 / rounds as f64;
    let per_op = per_round / 512.0;
    assert!(
        per_op <= 0.25,
        "service path: {per_round:.1} allocations per 512-op submission \
         ({per_op:.3}/op); want well under one allocation per operation"
    );
    service.shutdown();
}
