//! The append-only, segmented write-ahead log.
//!
//! A log is a directory of `wal-NNNNNNNN.seg` files. Records append to the
//! highest (*active*) segment; once it reaches
//! [`DurableConfig::segment_bytes`] the log rolls to a fresh one. Snapshot
//! truncation drops whole sealed segments whose records are all covered by
//! the snapshot — no rewriting, so truncation cannot corrupt the log.
//!
//! Recovery scans the segments in order and stops at the first frame that
//! is torn (length prefix past the file end), corrupt (CRC mismatch) or —
//! for per-shard WALs of a sharded index — past the root journal's commit
//! frontier. Everything from the stop point on is cut off, so the log is
//! append-clean again after every open.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::config::{DurableConfig, FsyncPolicy};
use crate::record::WalRecord;

/// One segment file of the log; the last entry is the active one.
#[derive(Debug)]
struct Segment {
    seq: u64,
    bytes: u64,
    /// Highest bsn of any record in the segment (0 while empty).
    max_bsn: u64,
}

/// An append-only segmented record log with checksummed frames.
#[derive(Debug)]
pub struct WriteAheadLog {
    dir: PathBuf,
    fsync: FsyncPolicy,
    segment_bytes: u64,
    segments: Vec<Segment>,
    active: File,
    fsyncs: u64,
    unsynced_records: u64,
    unsynced_bytes: u64,
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.seg"))
}

fn parse_segment_seq(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

impl WriteAheadLog {
    /// Creates an empty log in `dir` (the directory is created; it must not
    /// already hold segments).
    pub fn create(dir: &Path, config: &DurableConfig) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        if !Self::segment_seqs(dir)?.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{} already holds WAL segments", dir.display()),
            ));
        }
        let active = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(segment_path(dir, 1))?;
        Ok(WriteAheadLog {
            dir: dir.to_path_buf(),
            fsync: config.fsync,
            segment_bytes: config.segment_bytes,
            segments: vec![Segment {
                seq: 1,
                bytes: 0,
                max_bsn: 0,
            }],
            active,
            fsyncs: 0,
            unsynced_records: 0,
            unsynced_bytes: 0,
        })
    }

    /// Opens an existing log (creating an empty one when `dir` holds no
    /// segments), replays its intact records and cuts off everything past
    /// the first torn/corrupt frame — or, when `committed` is given, past
    /// the first record with a bsn above it (an uncommitted shard-side
    /// write of a crashed cross-shard batch). Returns the log, positioned
    /// to append, and the surviving records in order.
    pub fn open(
        dir: &Path,
        config: &DurableConfig,
        committed: Option<u64>,
    ) -> io::Result<(Self, Vec<WalRecord>)> {
        let seqs = Self::segment_seqs(dir)?;
        if seqs.is_empty() {
            return Ok((Self::create(dir, config)?, Vec::new()));
        }

        let mut records = Vec::new();
        let mut segments = Vec::new();
        let mut cut: Option<(usize, u64)> = None; // (segment position, valid bytes)
        for (position, &seq) in seqs.iter().enumerate() {
            let path = segment_path(dir, seq);
            let mut buf = Vec::new();
            File::open(&path)?.read_to_end(&mut buf)?;
            let mut offset = 0usize;
            let mut max_bsn = 0u64;
            while offset < buf.len() {
                match WalRecord::decode(&buf, offset) {
                    Some((record, next)) if committed.is_none_or(|c| record.bsn <= c) => {
                        max_bsn = max_bsn.max(record.bsn);
                        records.push(record);
                        offset = next;
                    }
                    _ => break, // torn, corrupt, or uncommitted from here on
                }
            }
            segments.push(Segment {
                seq,
                bytes: offset as u64,
                max_bsn,
            });
            if offset < buf.len() {
                cut = Some((position, offset as u64));
                break;
            }
        }

        // Cut the damage: truncate the stop segment, drop everything after.
        if let Some((position, valid)) = cut {
            let keep = &segments[position];
            let file = OpenOptions::new()
                .write(true)
                .open(segment_path(dir, keep.seq))?;
            file.set_len(valid)?;
            file.sync_all()?;
            for &seq in &seqs[position + 1..] {
                fs::remove_file(segment_path(dir, seq))?;
            }
            segments.truncate(position + 1);
        }

        let last = segments.last().expect("at least one segment");
        let active = OpenOptions::new()
            .append(true)
            .open(segment_path(dir, last.seq))?;
        Ok((
            WriteAheadLog {
                dir: dir.to_path_buf(),
                fsync: config.fsync,
                segment_bytes: config.segment_bytes,
                segments,
                active,
                fsyncs: 0,
                unsynced_records: 0,
                unsynced_bytes: 0,
            },
            records,
        ))
    }

    /// Appends one record to the active segment (rolling first when it is
    /// full). The record is *not* flushed — call [`commit`](Self::commit)
    /// (policy-driven) or [`sync`](Self::sync) (forced) before treating it
    /// as durable. Returns the framed size in bytes.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<u64> {
        if self.active_segment().bytes >= self.segment_bytes {
            self.roll()?;
        }
        let frame = record.encode();
        self.active.write_all(&frame)?;
        let segment = self.segments.last_mut().expect("active segment");
        segment.bytes += frame.len() as u64;
        segment.max_bsn = segment.max_bsn.max(record.bsn);
        self.unsynced_records += 1;
        self.unsynced_bytes += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Flushes according to the configured [`FsyncPolicy`]. Call once per
    /// logged batch, after its records are appended and before they apply.
    pub fn commit(&mut self) -> io::Result<()> {
        let due = match self.fsync {
            FsyncPolicy::Always => self.unsynced_records > 0,
            FsyncPolicy::EveryN(n) => self.unsynced_records >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if due {
            self.sync()?;
        }
        Ok(())
    }

    /// Unconditionally fsyncs the active segment.
    pub fn sync(&mut self) -> io::Result<()> {
        self.active.sync_all()?;
        self.fsyncs += 1;
        self.unsynced_records = 0;
        self.unsynced_bytes = 0;
        Ok(())
    }

    /// Truncates the log up to (and including) `bsn`: seals the active
    /// segment, then deletes every sealed segment whose records are all at
    /// or below `bsn`. Returns the number of bytes reclaimed.
    pub fn truncate_through(&mut self, bsn: u64) -> io::Result<u64> {
        self.roll()?;
        // The freshly rolled (empty) active segment always survives.
        let active = self.segments.pop().expect("active segment");
        let mut reclaimed = 0;
        let mut keep = Vec::with_capacity(1);
        for segment in self.segments.drain(..) {
            if segment.max_bsn <= bsn {
                reclaimed += segment.bytes;
                fs::remove_file(segment_path(&self.dir, segment.seq))?;
            } else {
                keep.push(segment);
            }
        }
        keep.push(active);
        self.segments = keep;
        Ok(reclaimed)
    }

    /// Total live bytes across every segment.
    pub fn bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    /// Bytes appended since the last fsync (lost on a crash under a lazy
    /// [`FsyncPolicy`]; the WAL's contribution to the memory/risk budget).
    pub fn unsynced_bytes(&self) -> u64 {
        self.unsynced_bytes
    }

    /// Number of fsyncs issued since this handle opened.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    fn active_segment(&self) -> &Segment {
        self.segments.last().expect("active segment")
    }

    /// Seals the active segment (fsync) and starts the next one.
    fn roll(&mut self) -> io::Result<()> {
        self.sync()?;
        let seq = self.active_segment().seq + 1;
        self.active = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(segment_path(&self.dir, seq))?;
        self.segments.push(Segment {
            seq,
            bytes: 0,
            max_bsn: 0,
        });
        Ok(())
    }

    fn segment_seqs(dir: &Path) -> io::Result<Vec<u64>> {
        let mut seqs = Vec::new();
        match fs::read_dir(dir) {
            Ok(entries) => {
                for entry in entries {
                    let entry = entry?;
                    if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_seq) {
                        seqs.push(seq);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        seqs.sort_unstable();
        Ok(seqs)
    }
}

/// Convenience for tests and inspectors: every intact record of the log in
/// `dir`, without opening it for appends.
pub fn read_log(dir: &Path) -> io::Result<Vec<WalRecord>> {
    let mut records = Vec::new();
    for seq in WriteAheadLog::segment_seqs(dir)? {
        let mut buf = Vec::new();
        File::open(segment_path(dir, seq))?.read_to_end(&mut buf)?;
        let (mut decoded, valid) = crate::record::decode_stream(&buf);
        records.append(&mut decoded);
        if valid < buf.len() {
            break;
        }
    }
    Ok(records)
}

/// The concatenated frame bytes of the log in `dir`, segment order — what
/// the crash simulator slices at arbitrary offsets.
pub fn log_bytes(dir: &Path) -> io::Result<Vec<u8>> {
    let mut bytes = Vec::new();
    for seq in WriteAheadLog::segment_seqs(dir)? {
        File::open(segment_path(dir, seq))?.read_to_end(&mut bytes)?;
    }
    Ok(bytes)
}

/// Replaces the log in `dir` with exactly `bytes` (one segment) — the
/// other half of the crash simulator: "the process died when this much of
/// the log had reached the disk".
pub fn write_log_bytes(dir: &Path, bytes: &[u8]) -> io::Result<()> {
    for seq in WriteAheadLog::segment_seqs(dir)? {
        fs::remove_file(segment_path(dir, seq))?;
    }
    fs::create_dir_all(dir)?;
    let mut file = File::create(segment_path(dir, 1))?;
    file.write_all(bytes)?;
    file.sync_all()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::WalPayload;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rtx-durable-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rec(bsn: u64) -> WalRecord {
        WalRecord::new(
            bsn,
            WalPayload::Insert {
                keys: vec![bsn; 4],
                values: vec![bsn * 10; 4],
                globals: None,
            },
        )
    }

    #[test]
    fn append_commit_reopen_round_trips() {
        let dir = tmp("roundtrip");
        let config = DurableConfig::default();
        let mut wal = WriteAheadLog::create(&dir, &config).unwrap();
        for bsn in 1..=5 {
            wal.append(&rec(bsn)).unwrap();
            wal.commit().unwrap();
        }
        assert!(wal.bytes() > 0);
        assert_eq!(wal.fsyncs(), 5, "Always policy syncs per commit");
        drop(wal);

        let (wal, records) = WriteAheadLog::open(&dir, &config, None).unwrap();
        assert_eq!(records, (1..=5).map(rec).collect::<Vec<_>>());
        assert_eq!(
            wal.bytes(),
            records.iter().map(|r| r.encode().len() as u64).sum()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_cut_and_the_log_appends_cleanly_after() {
        let dir = tmp("torn");
        let config = DurableConfig::default();
        let mut wal = WriteAheadLog::create(&dir, &config).unwrap();
        for bsn in 1..=3 {
            wal.append(&rec(bsn)).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        // Tear the last record: chop 5 bytes off the segment.
        let bytes = log_bytes(&dir).unwrap();
        write_log_bytes(&dir, &bytes[..bytes.len() - 5]).unwrap();

        let (mut wal, records) = WriteAheadLog::open(&dir, &config, None).unwrap();
        assert_eq!(records, vec![rec(1), rec(2)], "torn record dropped");
        // The cut log accepts appends and they survive the next open.
        wal.append(&rec(3)).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, records) = WriteAheadLog::open(&dir, &config, None).unwrap();
        assert_eq!(records, vec![rec(1), rec(2), rec(3)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commit_frontier_cuts_uncommitted_records() {
        let dir = tmp("frontier");
        let config = DurableConfig::default();
        let mut wal = WriteAheadLog::create(&dir, &config).unwrap();
        for bsn in 1..=4 {
            wal.append(&rec(bsn)).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        let (_, records) = WriteAheadLog::open(&dir, &config, Some(2)).unwrap();
        assert_eq!(records, vec![rec(1), rec(2)]);
        // The cut is physical: a frontier-free reopen sees the same prefix.
        let (_, records) = WriteAheadLog::open(&dir, &config, None).unwrap();
        assert_eq!(records, vec![rec(1), rec(2)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_and_truncate_by_snapshot_bsn() {
        let dir = tmp("truncate");
        // Tiny segments: every record rolls into its own.
        let config = DurableConfig::default().with_segment_bytes(1);
        let mut wal = WriteAheadLog::create(&dir, &config).unwrap();
        for bsn in 1..=6 {
            wal.append(&rec(bsn)).unwrap();
        }
        wal.sync().unwrap();
        let before = wal.bytes();
        let reclaimed = wal.truncate_through(4).unwrap();
        assert!(reclaimed > 0);
        assert_eq!(wal.bytes(), before - reclaimed);
        drop(wal);

        let (_, records) = WriteAheadLog::open(&dir, &config, None).unwrap();
        assert_eq!(
            records,
            vec![rec(5), rec(6)],
            "snapshot-covered prefix gone"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lazy_fsync_policies_batch_their_syncs() {
        let dir = tmp("lazy");
        let config = DurableConfig::default().with_fsync(FsyncPolicy::EveryN(3));
        let mut wal = WriteAheadLog::create(&dir, &config).unwrap();
        for bsn in 1..=7 {
            wal.append(&rec(bsn)).unwrap();
            wal.commit().unwrap();
        }
        assert_eq!(wal.fsyncs(), 2, "7 commits at every-3 = 2 syncs");
        assert!(wal.unsynced_bytes() > 0, "one record still buffered");
        fs::remove_dir_all(&dir).unwrap();
    }
}
