//! Bit-level `f32` helpers used by the key-representation modes.
//!
//! The paper's *Extended Mode* (Section 3.2) maps the integer key `k` to the
//! `2k`-th representable positive float via `bit_cast<float>(2k + C)` with
//! `C = bit_cast<uint32_t>(0.5f)`, and uses `nextafter()` to find the gap
//! values between adjacent keys. This module provides those primitives plus a
//! couple of monotonicity helpers that the tests lean on.

/// `bit_cast<uint32_t>(0.5f)` — the constant `C` from the paper's Extended
/// Mode conversion formula.
pub const EXTENDED_MODE_OFFSET: u32 = 0.5f32.to_bits();

/// Reinterprets the bits of a `u32` as an `f32` (C++ `bit_cast<float>`).
#[inline]
pub fn bit_cast_f32(bits: u32) -> f32 {
    f32::from_bits(bits)
}

/// Reinterprets the bits of an `f32` as a `u32` (C++ `bit_cast<uint32_t>`).
#[inline]
pub fn bit_cast_u32(value: f32) -> u32 {
    value.to_bits()
}

/// The next representable `f32` after `x` in the direction of `toward`
/// (C `nextafterf`). Used by Extended Mode to derive the gap values next to a
/// key without the ±0.5 trick, which would not be representable there.
#[inline]
pub fn next_after(x: f32, toward: f32) -> f32 {
    if x.is_nan() || toward.is_nan() {
        return f32::NAN;
    }
    if x == toward {
        return toward;
    }
    if x == 0.0 {
        // Smallest subnormal with the sign of the direction.
        return if toward > 0.0 {
            f32::from_bits(1)
        } else {
            -f32::from_bits(1)
        };
    }
    let bits = x.to_bits();
    let next_bits = if (toward > x) == (x > 0.0) {
        // Move away from zero.
        bits + 1
    } else {
        // Move toward zero.
        bits - 1
    };
    f32::from_bits(next_bits)
}

/// The next representable `f32` strictly greater than `x`.
#[inline]
pub fn next_up(x: f32) -> f32 {
    next_after(x, f32::INFINITY)
}

/// The next representable `f32` strictly smaller than `x`.
#[inline]
pub fn next_down(x: f32) -> f32 {
    next_after(x, f32::NEG_INFINITY)
}

/// Maps a finite, non-negative `f32` to an ordinal such that
/// `ordinal(a) < ordinal(b) ⇔ a < b`. For non-negative floats the IEEE-754
/// bit pattern itself is already monotone, which is exactly the property
/// Extended Mode exploits.
#[inline]
pub fn non_negative_float_to_ordinal(value: f32) -> u32 {
    debug_assert!(value >= 0.0 && !value.is_nan());
    value.to_bits()
}

/// Inverse of [`non_negative_float_to_ordinal`].
#[inline]
pub fn ordinal_to_non_negative_float(ordinal: u32) -> f32 {
    f32::from_bits(ordinal)
}

/// Returns the largest integer `n` such that all integers in `0..=n` are
/// exactly representable as `f32` *and* `n + 0.5` is also exactly
/// representable. This is the "conservative" Naive-Mode key-range limit the
/// paper derives: 2^23 − 1.
#[inline]
pub const fn naive_mode_max_key() -> u64 {
    (1u64 << 23) - 1
}

/// Returns the largest key Extended Mode supports with the offset constant
/// `C = bit_cast<u32>(0.5f)`, as determined empirically in the paper: 2^29 − 1.
#[inline]
pub const fn extended_mode_max_key() -> u64 {
    (1u64 << 29) - 1
}

/// Returns `true` when the integer `k` survives a round trip through `f32`
/// unchanged (i.e. `k as f32 as u64 == k`).
#[inline]
pub fn is_exactly_representable(k: u64) -> bool {
    let f = k as f32;
    f.is_finite() && f >= 0.0 && f as u64 == k && (f as u64) as f32 == f
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn extended_mode_offset_matches_half() {
        assert_eq!(EXTENDED_MODE_OFFSET, 0x3F00_0000);
        assert_eq!(bit_cast_f32(EXTENDED_MODE_OFFSET), 0.5);
        assert_eq!(bit_cast_u32(0.5), EXTENDED_MODE_OFFSET);
    }

    #[test]
    fn next_after_moves_one_ulp() {
        let x = 1.0f32;
        let up = next_after(x, 2.0);
        assert!(up > x);
        assert_eq!(up.to_bits(), x.to_bits() + 1);
        let down = next_after(x, 0.0);
        assert!(down < x);
        assert_eq!(down.to_bits(), x.to_bits() - 1);
    }

    #[test]
    fn next_after_at_zero_and_equal() {
        assert_eq!(next_after(1.0, 1.0), 1.0);
        assert!(next_after(0.0, 1.0) > 0.0);
        assert!(next_after(0.0, -1.0) < 0.0);
        assert!(next_after(f32::NAN, 1.0).is_nan());
    }

    #[test]
    fn next_up_down_are_inverses_for_normals() {
        for &v in &[0.5f32, 1.0, 123.456, 1e10, 3.4e38] {
            assert_eq!(next_down(next_up(v)), v);
            assert_eq!(next_up(next_down(v)), v);
        }
    }

    #[test]
    fn naive_mode_limit_is_tight() {
        let max = naive_mode_max_key();
        assert_eq!(max, (1 << 23) - 1);
        // max + 0.5 must be representable…
        let upper = max as f32 + 0.5;
        assert_eq!(upper as f64, max as f64 + 0.5);
        // …but (2^24 - 1) + 0.5 is not (it rounds to an integer).
        let bad = ((1u64 << 24) - 1) as f32 + 0.5;
        assert_eq!(bad.fract(), 0.0);
    }

    #[test]
    fn representability_check() {
        assert!(is_exactly_representable(0));
        assert!(is_exactly_representable(1 << 23));
        assert!(is_exactly_representable(1 << 24));
        assert!(!is_exactly_representable((1 << 24) + 1));
    }

    #[test]
    fn non_negative_ordinal_is_monotone_on_examples() {
        let values = [0.0f32, 1e-20, 0.5, 1.0, 1.5, 2.0, 1e10, 3.0e38];
        for w in values.windows(2) {
            assert!(non_negative_float_to_ordinal(w[0]) < non_negative_float_to_ordinal(w[1]));
        }
        for &v in &values {
            assert_eq!(
                ordinal_to_non_negative_float(non_negative_float_to_ordinal(v)),
                v
            );
        }
    }

    proptest! {
        #[test]
        fn prop_next_up_is_strictly_greater(v in prop::num::f32::NORMAL.prop_filter("finite", |x| x.is_finite() && x.abs() < 1e37)) {
            let up = next_up(v);
            prop_assert!(up > v);
        }

        #[test]
        fn prop_ordinal_monotone(a in 0.0f32..1e30, b in 0.0f32..1e30) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(non_negative_float_to_ordinal(lo) <= non_negative_float_to_ordinal(hi));
            if lo < hi {
                prop_assert!(non_negative_float_to_ordinal(lo) < non_negative_float_to_ordinal(hi));
            }
        }

        #[test]
        fn prop_small_integers_round_trip(k in 0u64..(1u64 << 23)) {
            prop_assert!(is_exactly_representable(k));
            prop_assert!(is_exactly_representable(k) && (k as f32 + 0.5).fract() == 0.5);
        }
    }
}
