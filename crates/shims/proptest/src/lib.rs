//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of proptest this workspace uses: the `proptest!`
//! macro (with an optional `#![proptest_config(...)]` header), range / tuple
//! / `any` / float-class / character-class-string strategies,
//! `prop::collection::vec`, the `prop_filter` / `prop_map` combinators and
//! the `prop_assert*` macros.
//!
//! Differences from upstream are intentional and bounded: cases are drawn
//! from a deterministic per-test generator (seeded by the test name), there
//! is **no shrinking** — a failing case panics with the ordinary assertion
//! message — and no persistence of failing seeds. For the regression-style
//! properties in this repository (oracle equivalences over generated
//! workloads) that trade-off keeps behaviour reproducible without any
//! crates.io dependency.

pub mod test_runner {
    //! The deterministic generator behind every `proptest!` case.

    /// SplitMix64-based test RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator seeded from a test name.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty size range");
            lo + self.below((hi - lo) as u64) as usize
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and generic combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating test values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Keeps only values satisfying `pred`, regenerating otherwise.
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        /// Transforms generated values with `f`.
        fn prop_map<F, O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 10000 consecutive values",
                self.whence
            );
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_uint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_uint_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_sint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_sint_range_strategy!(i32, i64);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    self.start + ((self.end - self.start) as f64 * unit) as $t
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

    /// Character-class string strategy: string literals such as
    /// `"[a-z]{0,12}"` generate matching strings. Only the
    /// `[class]{lo,hi}` shape (plus plain `[class]` for a single char) is
    /// supported; other patterns fall back to short alphanumeric strings.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_char_class(self).unwrap_or_else(|| {
                (
                    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
                        .chars()
                        .collect(),
                    0,
                    16,
                )
            });
            let len = rng.usize_in(lo, hi + 1);
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    /// Parses `[a-zA-Z_]{lo,hi}` into (alphabet, lo, hi).
    fn parse_char_class(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class = &rest[..close];
        let mut alphabet = Vec::new();
        let mut chars = class.chars().peekable();
        while let Some(c) = chars.next() {
            if chars.peek() == Some(&'-') {
                let mut lookahead = chars.clone();
                lookahead.next(); // the '-'
                if let Some(&end) = lookahead.peek() {
                    chars = lookahead;
                    chars.next();
                    for v in c as u32..=end as u32 {
                        alphabet.extend(char::from_u32(v));
                    }
                    continue;
                }
            }
            alphabet.push(c);
        }
        if alphabet.is_empty() {
            return None;
        }
        let quant = &rest[close + 1..];
        if quant.is_empty() {
            return Some((alphabet, 1, 1));
        }
        let quant = quant.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match quant.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = quant.trim().parse().ok()?;
                (n, n)
            }
        };
        Some((alphabet, lo, hi))
    }
}

pub mod arbitrary {
    //! `any::<T>()`: full-domain strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Marker strategy generated by [`any`].
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Returns the full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }
}

pub mod num {
    //! Float bit-class strategies (`prop::num::f32::NORMAL`, ...).

    macro_rules! float_module {
        ($mod_name:ident, $t:ty, $bits:ty, $from_bits:path) => {
            pub mod $mod_name {
                use crate::strategy::Strategy;
                use crate::test_runner::TestRng;

                /// Strategy over every bit pattern (including NaN and ±inf).
                pub struct AnyFloat;
                /// Strategy over normal floats (finite, non-zero, not
                /// subnormal), both signs.
                pub struct NormalFloat;
                /// Strategy over positive normal floats.
                pub struct PositiveFloat;

                /// Every representable value.
                pub const ANY: AnyFloat = AnyFloat;
                /// Normal values only.
                pub const NORMAL: NormalFloat = NormalFloat;
                /// Positive normal values only.
                pub const POSITIVE: PositiveFloat = PositiveFloat;

                impl Strategy for AnyFloat {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        $from_bits(rng.next_u64() as $bits)
                    }
                }

                impl Strategy for NormalFloat {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        loop {
                            let v = $from_bits(rng.next_u64() as $bits);
                            if v.is_normal() {
                                return v;
                            }
                        }
                    }
                }

                impl Strategy for PositiveFloat {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        loop {
                            let v = $from_bits(rng.next_u64() as $bits);
                            if v.is_normal() && v > 0.0 {
                                return v;
                            }
                        }
                    }
                }
            }
        };
    }

    float_module!(f32, f32, u32, f32::from_bits);
    float_module!(f64, f64, u64, f64::from_bits);
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)*
                let _ = __case;
                $body
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

/// Asserts a condition inside a property (no shrinking; plain panic).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

pub mod prelude {
    //! Everything a `proptest!` user needs in scope.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Sub-strategy namespace (`prop::collection::vec`, `prop::num::...`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            x in 10u64..20,
            (a, b) in (0u32..5, 1u32..=3),
            v in prop::collection::vec(0u64..100, 2..6),
        ) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((1..=3).contains(&b));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn any_and_float_classes_generate(
            i in any::<i64>(),
            f in prop::num::f32::NORMAL,
            g in prop::num::f64::ANY.prop_filter("not nan", |x| !x.is_nan()),
        ) {
            prop_assert_eq!(i, i);
            prop_assert!(f.is_normal());
            prop_assert!(!g.is_nan());
        }

        #[test]
        fn char_class_strings_match_their_pattern(s in "[a-z]{0,12}") {
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn filter_eventually_panics_on_impossible_predicates() {
        let result = std::panic::catch_unwind(|| {
            let mut rng = crate::test_runner::TestRng::deterministic("impossible");
            let s = (0u64..10).prop_filter("never", |_| false);
            crate::strategy::Strategy::generate(&s, &mut rng)
        });
        assert!(result.is_err());
    }

    #[test]
    fn prop_map_transforms_values() {
        let mut rng = crate::test_runner::TestRng::deterministic("map");
        let s = (0u64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = crate::strategy::Strategy::generate(&s, &mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }
}
