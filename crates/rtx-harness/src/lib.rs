//! # rtx-harness
//!
//! The experiment harness that regenerates every table and figure of the
//! RTIndeX paper's evaluation on the simulated GPU.
//!
//! Each experiment lives in its own module under [`experiments`] and returns
//! one or more [`report::Table`]s containing the same rows/series the paper
//! reports. The harness binary (`rtx-harness`) runs them from the command
//! line:
//!
//! ```text
//! cargo run -p rtx-harness --release -- fig10a --scale small
//! cargo run -p rtx-harness --release -- all --scale small
//! ```
//!
//! Absolute numbers are *simulated* device times (plus raw hardware
//! counters); the goal is to reproduce the qualitative shape of each result —
//! who wins, by roughly what factor, and where behaviour changes — not the
//! absolute milliseconds of the authors' hardware. `EXPERIMENTS.md` at the
//! repository root records the comparison against the paper.

pub mod experiments;
pub mod indexes;
pub mod nnls;
pub mod perf;
pub mod report;
pub mod scale;

pub use indexes::{
    build_all_indexes, find_index, measure, measure_points, measure_ranges, registry,
    registry_with, Measurement, DYNAMIC_BACKEND, PAPER_BACKENDS,
};
pub use nnls::nnls_two_term;
pub use report::Table;
pub use scale::ExperimentScale;

use gpu_device::{Device, DeviceSpec};

/// Creates the default evaluation device (RTX 4090, the paper's system S1).
pub fn default_device() -> Device {
    Device::new(DeviceSpec::rtx_4090())
}

/// Creates the evaluation device for a given experiment scale.
///
/// The paper runs with 2^26 keys against a GPU whose L2 cache (72 MiB on the
/// 4090) is roughly 40× smaller than the index working set. When the
/// reproduction scales the key count down, the *ratio* between working set
/// and cache is what determines cache-locality effects (sorted lookups,
/// skew, the Figure 10b crossover), so the device's L2 size is scaled down by
/// the same factor as the key count, with a 256 KiB floor. All other device
/// parameters stay at their real values.
pub fn scaled_device(scale: &ExperimentScale) -> Device {
    let mut spec = DeviceSpec::rtx_4090();
    let shift = 26u32.saturating_sub(scale.keys_exp);
    spec.l2_bytes = (spec.l2_bytes >> shift).max(256 * 1024);
    Device::new(spec)
}

/// The list of experiment names understood by [`run_experiment`], in paper
/// order.
pub fn experiment_names() -> Vec<&'static str> {
    vec![
        "fig3a",
        "fig3b",
        "fig6",
        "table3",
        "fig7",
        "fig8",
        "fig9",
        "table4",
        "table5",
        "fig10a",
        "fig10b",
        "fig10c",
        "table6",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "table7",
        "fig17",
        "fig18",
        "table8",
        "update_throughput",
        "shard_scaling",
        "service_throughput",
        "service_latency",
        "build_throughput",
        "recovery_throughput",
        "planner_selection",
    ]
}

/// Runs the experiment with the given name at the given scale, returning its
/// report tables.
///
/// Returns `None` when the name is unknown.
pub fn run_experiment(name: &str, scale: &ExperimentScale) -> Option<Vec<Table>> {
    use experiments as ex;
    let tables = match name {
        "fig3a" => ex::fig3::run_fig3a(scale),
        "fig3b" => ex::fig3::run_fig3b(scale),
        "fig6" => ex::fig6::run(scale),
        "table3" => ex::table3::run(scale),
        "fig7" => ex::fig7::run(scale),
        "fig8" => ex::fig8::run(scale),
        "fig9" => ex::fig9::run(scale),
        "table4" => ex::table4::run(scale),
        "table5" => ex::table5::run(scale),
        "fig10a" => ex::fig10::run_lookup_scaling(scale),
        "fig10b" => ex::fig10::run_build_size_scaling(scale),
        "fig10c" => ex::fig10::run_build_time(scale),
        "table6" => ex::table6::run(scale),
        "fig11" => ex::fig11::run(scale),
        "fig12" => ex::fig12::run(scale),
        "fig13" => ex::fig13::run(scale),
        "fig14" => ex::fig14::run(scale),
        "fig15" => ex::fig15::run(scale),
        "fig16" | "table7" => ex::fig16::run(scale),
        "fig17" => ex::fig17::run(scale),
        "fig18" | "table8" => ex::fig18::run(scale),
        "update_throughput" => ex::update_throughput::run(scale),
        "shard_scaling" => ex::shard_scaling::run(scale),
        "service_throughput" => ex::service_throughput::run(scale),
        "service_latency" => ex::service_latency::run(scale),
        "build_throughput" => ex::build_pipeline::run(scale),
        "recovery_throughput" => ex::recovery_throughput::run(scale),
        "planner_selection" => ex::planner_selection::run(scale),
        _ => return None,
    };
    Some(tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_is_runnable() {
        // Tiny scale keeps this a smoke test; the per-experiment modules
        // carry their own focused tests.
        let scale = ExperimentScale::tiny();
        for name in ["fig6", "table3"] {
            let tables = run_experiment(name, &scale).expect("known experiment");
            assert!(!tables.is_empty());
        }
        assert!(run_experiment("does-not-exist", &scale).is_none());
        assert!(experiment_names().contains(&"fig10a"));
    }
}
