//! Table 6: memory footprint of all indexes (final size and build overhead).
//!
//! The paper reports that RX needs considerably more space than the
//! traditional indexes, both during and after construction, because every
//! key becomes a triangle plus its share of the BVH; SA has zero structural
//! overhead after the build, HT over-allocates by 25 %.

use rtindex_core::RtIndexConfig;
use rtx_workloads as wl;

use crate::indexes::build_all_indexes;
use crate::report::Table;
use crate::scale::ExperimentScale;

/// Runs the footprint comparison.
pub fn run(scale: &ExperimentScale) -> Vec<Table> {
    let device = crate::scaled_device(scale);
    let keys = wl::dense_shuffled(scale.default_keys(), scale.seed);
    let indexes = build_all_indexes(&device, &keys, None, RtIndexConfig::default());

    let mut table = Table::new(
        format!(
            "Table 6: memory footprint for 2^{} keys [MiB]",
            scale.keys_exp
        ),
        &["metric", "HT", "B+", "SA", "RX"],
    );
    let mib = |bytes: u64| format!("{:.2}", bytes as f64 / (1 << 20) as f64);
    let mut final_row = vec!["final size".to_string()];
    let mut overhead_row = vec!["overhead during build".to_string()];
    for name in ["HT", "B+", "SA", "RX"] {
        match indexes.iter().find(|ix| ix.name() == name) {
            Some(ix) => {
                final_row.push(mib(ix.memory_bytes()));
                overhead_row.push(mib(ix.build_metrics().scratch_bytes));
            }
            None => {
                final_row.push("N/A".to_string());
                overhead_row.push("N/A".to_string());
            }
        }
    }
    table.push_row(final_row);
    table.push_row(overhead_row);
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rx_has_the_largest_footprint_and_sa_the_smallest_structural_one() {
        let device = crate::default_device();
        let keys = wl::dense_shuffled(1 << 14, 1);
        let indexes = build_all_indexes(&device, &keys, None, RtIndexConfig::default());
        let bytes = |name: &str| {
            indexes
                .iter()
                .find(|i| i.name() == name)
                .unwrap()
                .memory_bytes()
        };
        assert!(bytes("RX") > bytes("HT"), "RX must exceed HT");
        assert!(bytes("RX") > bytes("B+"), "RX must exceed B+");
        assert!(bytes("RX") > bytes("SA"), "RX must exceed SA");
        assert!(bytes("SA") <= bytes("HT"), "SA stores keys + rowIDs only");
    }

    #[test]
    fn build_overhead_exists_for_sort_based_builds_and_rx() {
        let device = crate::default_device();
        let keys = wl::dense_shuffled(1 << 13, 1);
        let indexes = build_all_indexes(&device, &keys, None, RtIndexConfig::default());
        let scratch = |name: &str| {
            indexes
                .iter()
                .find(|i| i.name() == name)
                .unwrap()
                .build_metrics()
                .scratch_bytes
        };
        assert_eq!(scratch("HT"), 0, "HT inserts in place");
        assert!(scratch("SA") > 0, "SA sorts out of place");
        assert!(scratch("B+") > 0);
        assert!(scratch("RX") > 0, "the BVH build needs temporary memory");
        assert!(
            scratch("RX") > scratch("SA"),
            "RX build overhead is the largest"
        );
    }

    #[test]
    fn smoke_table_has_two_rows() {
        let tables = run(&ExperimentScale::tiny());
        assert_eq!(tables[0].rows.len(), 2);
    }
}
