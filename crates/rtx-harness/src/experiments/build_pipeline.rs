//! Beyond-paper experiment: the staged parallel build pipeline and the
//! write-stall cost of compaction (`build_throughput`).
//!
//! Two questions, two tables:
//!
//! 1. **Build scaling** — how does simulated build throughput of the staged
//!    BVH pipeline scale with the number of concurrent build queues, per
//!    builder (`lbvh` / `sah`)? The emitted structure is verified
//!    bit-identical across widths while measuring, so the speedup is pure
//!    scheduling, never a different tree.
//! 2. **Compaction stall** — on a mixed read/write stream over the dynamic
//!    index, what write stall does a compaction inflict, stop-the-world vs
//!    the two-generation background mode? A write's apply time is exactly
//!    the queue-order fence wait every co-queued request shares in
//!    `rtx-serve` (surfaced there as `ServiceStats::write_stall_ns_*`);
//!    background compaction pays only the freeze and the swap, the rebuild
//!    overlaps serving. Each completed compaction also surfaces the
//!    rebuilt BVH's quality ([`BvhQuality`](rtx_bvh::BvhQuality), via
//!    [`CompactionEvent`](rtx_delta::CompactionEvent)), so rebuild quality
//!    is visible after every merge, not just at the initial build.
//!
//! Both halves feed the CI perf gate: the simulated build throughput and
//! the 8-vs-1-queue speedup are deterministic (pure cost-model functions),
//! and the stall ratio is host-relative (both sides timed on the same
//! machine).

use std::time::Instant;

use gpu_device::Device;
use optix_sim::{AccelBuildOptions, BuildInput, GeometryAccel, PrimitiveKind};
use rtindex_core::{KeyMode, RtIndexConfig};
use rtx_bvh::BuilderKind;
use rtx_delta::{CompactionPolicy, DynamicAdapter, DynamicRtConfig};
use rtx_query::{IndexSpec, QueryBatch, SecondaryIndex, UpdatableIndex};
use rtx_workloads as wl;

use crate::report::{fmt_ms, fmt_throughput, Table};
use crate::scale::ExperimentScale;

/// Build-queue widths of the scaling sweep.
pub const QUEUE_WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// One measured staged build.
#[derive(Debug, Clone, Copy)]
pub struct BuildCell {
    /// Builder name (`"lbvh"` / `"sah"`).
    pub builder: &'static str,
    /// Concurrent build queues the pipeline was simulated at.
    pub workers: usize,
    /// Keys (primitives) built over.
    pub keys: usize,
    /// Simulated device seconds of the staged build.
    pub sim_s: f64,
    /// Host wall-clock seconds of the software execution.
    pub host_s: f64,
}

impl BuildCell {
    /// Simulated build throughput in keys per second.
    pub fn throughput(&self) -> f64 {
        if self.sim_s <= 0.0 {
            return 0.0;
        }
        self.keys as f64 / self.sim_s
    }
}

fn builder_kind(name: &str) -> BuilderKind {
    match name {
        "sah" => BuilderKind::Sah,
        _ => BuilderKind::Lbvh,
    }
}

/// Runs the staged build at every queue width for both builders over
/// `keys`, asserting the emitted hierarchy is bit-identical across widths.
pub fn run_build_scaling(device: &Device, keys: &[u64]) -> Vec<BuildCell> {
    let mode = KeyMode::three_d_default();
    let centers = mode.centers(keys);
    let input = BuildInput::from_centers(PrimitiveKind::Triangle, &centers);

    let mut cells = Vec::new();
    for builder in ["lbvh", "sah"] {
        let mut reference: Option<GeometryAccel> = None;
        for &workers in &QUEUE_WIDTHS {
            let options = AccelBuildOptions {
                builder: builder_kind(builder),
                ..AccelBuildOptions::default()
            }
            .with_build_workers(workers);
            let start = Instant::now();
            let gas = GeometryAccel::build(device, input.clone(), &options);
            let host_s = start.elapsed().as_secs_f64();
            cells.push(BuildCell {
                builder,
                workers,
                keys: keys.len(),
                sim_s: gas.metrics().simulated_time_s,
                host_s,
            });
            match &reference {
                Some(reference) => {
                    assert_eq!(
                        reference.bvh().nodes,
                        gas.bvh().nodes,
                        "{builder} build must be bit-identical across queue widths"
                    );
                    assert_eq!(reference.bvh().prim_indices, gas.bvh().prim_indices);
                }
                None => {
                    gas.bvh().validate().expect("valid staged build");
                    reference = Some(gas);
                }
            }
        }
    }
    cells
}

/// How the compaction-stall half runs its merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionMode {
    /// Stop-the-world merges (the pre-existing behaviour).
    Synchronous,
    /// Two-generation background compaction.
    Background,
}

impl CompactionMode {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            CompactionMode::Synchronous => "sync",
            CompactionMode::Background => "background",
        }
    }
}

/// Write-stall statistics of one mixed-workload run.
#[derive(Debug, Clone)]
pub struct StallRun {
    /// The compaction mode driven.
    pub mode: CompactionMode,
    /// Write batches applied.
    pub writes: usize,
    /// Compactions completed (merges or background swaps).
    pub reorganisations: u64,
    /// SAH cost of the most recent compaction rebuild, surfaced from its
    /// [`CompactionEvent`](rtx_delta::CompactionEvent) quality.
    pub last_rebuild_sah_cost: f64,
    /// Sibling-overlap of the most recent compaction rebuild.
    pub last_rebuild_overlap: f64,
    /// Per-write host latencies in seconds (the queue-order fence wait a
    /// co-queued request shares), sorted ascending.
    pub write_stall_s: Vec<f64>,
}

impl StallRun {
    /// The `q`-quantile (0..=1] of the per-write stalls.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.write_stall_s.is_empty() {
            return 0.0;
        }
        let rank = ((self.write_stall_s.len() as f64 * q).ceil() as usize)
            .clamp(1, self.write_stall_s.len());
        self.write_stall_s[rank - 1]
    }

    /// The p99 write stall in seconds.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Keys used by the stall half — capped so a synchronous rebuild stays in
/// the tens of milliseconds at every scale.
fn stall_keys(scale: &ExperimentScale) -> usize {
    scale.default_keys().min(1 << 14)
}

/// Write batches of the stall half.
pub const STALL_WRITES: usize = 16;

/// Drives one mixed read/write stream over the dynamic index in the given
/// compaction mode and measures every write's apply latency — exactly the
/// fence wait `rtx-serve` charges every request queued behind the write.
pub fn run_compaction_stall(scale: &ExperimentScale, mode: CompactionMode) -> StallRun {
    let device = crate::scaled_device(scale);
    let n = stall_keys(scale);
    let keys = wl::dense_shuffled(n, scale.seed);
    let values = wl::value_column(n, scale.seed + 1);
    let batch = (n / 8).max(1);

    let config = DynamicRtConfig::default()
        .with_rx(RtIndexConfig::default())
        .with_policy(CompactionPolicy {
            max_delta_entries: batch,
            max_delta_fraction: f64::INFINITY,
            max_delete_ratio: f64::INFINITY,
        })
        .with_background_compaction(mode == CompactionMode::Background);
    let spec = IndexSpec::with_values(&device, &keys, &values);
    let mut index = DynamicAdapter::build(&spec, config).expect("dynamic build");

    let mut stalls = Vec::with_capacity(STALL_WRITES);
    let mut reorganisations = 0u64;
    let queries = wl::point_lookups(&keys, 64, scale.seed + 2);
    let reads = QueryBatch::of_points(&queries).fetch_values(true);
    for w in 0..STALL_WRITES {
        // A read batch between writes keeps the mixed workload honest (and,
        // in background mode, overlaps the in-flight rebuild).
        let out = index.execute(&reads).expect("read batch");
        assert_eq!(out.results.len(), queries.len());

        let fresh: Vec<u64> = (0..batch as u64)
            .map(|i| (2 * n + w * batch) as u64 + i)
            .collect();
        let fresh_values: Vec<u64> = fresh.iter().map(|k| k ^ 0x5EED).collect();
        let start = Instant::now();
        let report = index.insert(&fresh, &fresh_values).expect("write batch");
        stalls.push(start.elapsed().as_secs_f64());
        reorganisations += report.reorganisations;
    }
    // Land any still-running rebuild so both modes finish in a settled
    // state (not timed — a server would absorb this on the next write).
    if index.inner_mut().wait_for_compaction().is_some() {
        reorganisations += 1;
    }
    stalls.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    let quality = index
        .inner()
        .last_compaction()
        .map(|event| event.quality)
        .unwrap_or_else(|| rtx_bvh::BvhQuality::measure(&rtx_bvh::Bvh::new(vec![], vec![], false)));
    StallRun {
        mode,
        writes: STALL_WRITES,
        reorganisations,
        last_rebuild_sah_cost: quality.sah_cost,
        last_rebuild_overlap: quality.avg_child_overlap,
        write_stall_s: stalls,
    }
}

/// The `build_throughput` experiment: build scaling + compaction stall.
pub fn run(scale: &ExperimentScale) -> Vec<Table> {
    let device = crate::scaled_device(scale);
    let keys = wl::dense_shuffled(scale.default_keys(), scale.seed);
    let cells = run_build_scaling(&device, &keys);

    let mut build_table = Table::new(
        format!(
            "Staged build pipeline: simulated build time vs build queues, 2^{} keys",
            scale.keys_exp
        ),
        &["builder", "queues", "sim [ms]", "keys/s", "speedup"],
    );
    for builder in ["lbvh", "sah"] {
        let serial = cells
            .iter()
            .find(|c| c.builder == builder && c.workers == 1)
            .expect("serial cell");
        for cell in cells.iter().filter(|c| c.builder == builder) {
            build_table.push_row(vec![
                cell.builder.to_string(),
                cell.workers.to_string(),
                fmt_ms(cell.sim_s * 1e3),
                fmt_throughput(cell.throughput()),
                format!("{:.2}x", serial.sim_s / cell.sim_s),
            ]);
        }
    }

    let sync = run_compaction_stall(scale, CompactionMode::Synchronous);
    let background = run_compaction_stall(scale, CompactionMode::Background);
    let mut stall_table = Table::new(
        format!(
            "Compaction write stall: sync vs background, 2^{} keys, {} writes",
            stall_keys(scale).ilog2(),
            sync.writes
        ),
        &[
            "mode",
            "compactions",
            "p50 stall [ms]",
            "p99 stall [ms]",
            "rebuild SAH cost",
            "rebuild overlap",
        ],
    );
    for run in [&sync, &background] {
        stall_table.push_row(vec![
            run.mode.name().to_string(),
            run.reorganisations.to_string(),
            fmt_ms(run.quantile(0.50) * 1e3),
            fmt_ms(run.p99() * 1e3),
            format!("{:.2}", run.last_rebuild_sah_cost),
            format!("{:.4}", run.last_rebuild_overlap),
        ]);
    }
    stall_table.push_row(vec![
        "p99 ratio".to_string(),
        String::new(),
        String::new(),
        format!("{:.3}", background.p99() / sync.p99().max(1e-12)),
        String::new(),
        String::new(),
    ]);

    vec![build_table, stall_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_build_scales_and_stays_bit_identical() {
        let scale = ExperimentScale::tiny();
        let device = crate::scaled_device(&scale);
        let keys = wl::dense_shuffled(scale.default_keys(), scale.seed);
        let cells = run_build_scaling(&device, &keys);
        assert_eq!(cells.len(), QUEUE_WIDTHS.len() * 2);
        for builder in ["lbvh", "sah"] {
            let serial = cells
                .iter()
                .find(|c| c.builder == builder && c.workers == 1)
                .unwrap();
            let wide = cells
                .iter()
                .find(|c| c.builder == builder && c.workers == 8)
                .unwrap();
            assert!(
                wide.sim_s <= serial.sim_s,
                "{builder}: more queues must never slow the simulated build"
            );
        }
    }

    /// The acceptance bar: at 2^20 keys, 8 build queues deliver at least 3x
    /// the single-queue simulated throughput, with the parallel build
    /// verified bit-identical across widths (inside `run_build_scaling`,
    /// exercised by the tiny-scale test above; here the two widths that
    /// matter are compared directly to keep the 2^20 run affordable).
    #[test]
    fn eight_queues_triple_throughput_on_2_20_keys() {
        let scale = ExperimentScale::medium(); // 2^20 keys
        let device = crate::scaled_device(&scale);
        let keys = wl::dense_shuffled(scale.default_keys(), scale.seed);
        let mode = KeyMode::three_d_default();
        let centers = mode.centers(&keys);
        let input = BuildInput::from_centers(PrimitiveKind::Triangle, &centers);
        let mut sim = [0.0f64; 2];
        let mut trees = Vec::new();
        for (slot, workers) in [(0usize, 1usize), (1, 8)] {
            let gas = GeometryAccel::build(
                &device,
                input.clone(),
                &AccelBuildOptions::default().with_build_workers(workers),
            );
            sim[slot] = gas.metrics().simulated_time_s;
            trees.push(gas);
        }
        assert_eq!(
            trees[0].bvh().nodes,
            trees[1].bvh().nodes,
            "bit-identical across widths"
        );
        let speedup = sim[0] / sim[1];
        assert!(
            speedup >= 3.0,
            "8 queues over 2^20 keys must give >= 3x, got {speedup:.2}x"
        );
    }

    #[test]
    fn background_compaction_beats_synchronous_write_stall() {
        let scale = ExperimentScale::tiny();
        let sync = run_compaction_stall(&scale, CompactionMode::Synchronous);
        let background = run_compaction_stall(&scale, CompactionMode::Background);
        assert!(sync.reorganisations > 0, "the policy must have fired");
        assert!(
            background.reorganisations > 0,
            "background swaps must have landed"
        );
        assert!(
            background.p99() < sync.p99(),
            "background p99 stall {:.3}ms must be strictly below sync {:.3}ms",
            background.p99() * 1e3,
            sync.p99() * 1e3
        );
        assert!(
            sync.last_rebuild_sah_cost > 0.0 && background.last_rebuild_sah_cost > 0.0,
            "rebuild quality is surfaced after compactions"
        );
    }

    #[test]
    fn smoke_tables() {
        let tables = run(&ExperimentScale::tiny());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), QUEUE_WIDTHS.len() * 2);
        assert_eq!(tables[1].rows.len(), 3);
    }
}
