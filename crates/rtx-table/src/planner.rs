//! The cost-based predicate planner.
//!
//! Routing works in two stages:
//!
//! 1. **Eligibility** — an index can serve a predicate only when it keys
//!    on the predicate's column and its [`Capabilities`] cover the
//!    compiled operation: range (and prefix) predicates need
//!    `range_lookups`, keys above `u32::MAX` need `full_64bit_keys`, and
//!    value-fetching queries need the index to carry the value column.
//! 2. **Cost** — every eligible index carries a *calibration probe* cost,
//!    measured by executing a small fixed-size batch against the live
//!    index after each (re)build and dividing the simulated launch time by
//!    the operation count. The cheapest probe cost wins; ties break first
//!    on [`MemoryUsage::total`] (prefer the smaller structure), then on
//!    the index name (deterministic plans).
//!
//! A predicate with no eligible index falls back to a full row-store
//! scan — the scan is a fallback, never a cost competitor, so an
//! available index is always preferred. Every decision (all candidates,
//! their costs or ineligibility reasons, the route and its justification)
//! is recorded in the returned [`ExplainPlan`].
//!
//! [`Capabilities`]: rtx_query::Capabilities
//! [`MemoryUsage::total`]: rtx_query::MemoryUsage::total

use rtx_query::{
    Candidate, ExplainPlan, IndexError, PlanChoice, QueryBatch, Route, SecondaryIndex, TableQuery,
    TableSchema,
};

/// Calibrated per-operation costs of one index, measured by
/// [`Planner::calibrate`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ProbeCost {
    /// Simulated seconds per point lookup.
    pub point_s: f64,
    /// Simulated seconds per range lookup; `None` when the index has no
    /// range capability.
    pub range_s: Option<f64>,
}

/// What the planner sees of one table index (a borrowed snapshot built by
/// the table each time it plans).
#[derive(Debug, Clone)]
pub(crate) struct CandidateView<'a> {
    /// The index's schema name.
    pub name: &'a str,
    /// The backend spec it was built from.
    pub spec: &'a str,
    /// The schema column it keys on.
    pub column: &'a str,
    /// The backend's capability flags.
    pub caps: rtx_query::Capabilities,
    /// Whether the backend carries the value column.
    pub has_values: bool,
    /// Live total memory footprint (the cost tiebreak).
    pub memory: u64,
    /// Calibrated probe costs.
    pub probe: ProbeCost,
}

/// Scores predicates against index candidates and records its decisions
/// (see the [module docs](self) for the cost model).
#[derive(Debug, Clone, Copy)]
pub struct Planner {
    /// Operations per calibration probe batch. Larger probes amortise the
    /// fixed launch overhead, making per-operation costs comparable across
    /// backends.
    pub probe_ops: usize,
    /// Modeled simulated cost of scanning one live row on the fallback
    /// path (charged to query metrics when a predicate routes to a scan).
    pub scan_cost_per_row_s: f64,
}

impl Default for Planner {
    fn default() -> Self {
        Planner {
            probe_ops: 64,
            scan_cost_per_row_s: 1e-9,
        }
    }
}

impl Planner {
    /// Measures an index's per-operation probe costs: one point batch and
    /// (when supported) one range batch of [`probe_ops`](Planner::probe_ops)
    /// operations drawn from `sample_keys` (the index's own keys, so
    /// probes exercise the hit path).
    pub fn calibrate(
        &self,
        index: &dyn SecondaryIndex,
        sample_keys: &[u64],
    ) -> Result<ProbeCost, IndexError> {
        let fallback = [0u64];
        let sample: &[u64] = if sample_keys.is_empty() {
            &fallback
        } else {
            sample_keys
        };
        let ops = self.probe_ops.max(1);
        let points: Vec<u64> = sample.iter().copied().cycle().take(ops).collect();
        let point_out = index.execute(&QueryBatch::of_points(&points))?;
        let point_s = point_out.metrics.simulated_time_s / ops as f64;

        let range_s = if index.capabilities().range_lookups {
            let ranges: Vec<(u64, u64)> =
                points.iter().map(|&k| (k, k.saturating_add(15))).collect();
            let range_out = index.execute(&QueryBatch::of_ranges(&ranges))?;
            Some(range_out.metrics.simulated_time_s / ops as f64)
        } else {
            None
        };
        Ok(ProbeCost { point_s, range_s })
    }

    /// Plans every predicate of `query` against the candidate views,
    /// choosing the cheapest eligible index per predicate and falling back
    /// to a row-store scan when none qualifies.
    pub(crate) fn plan(
        &self,
        query: &TableQuery,
        schema: &TableSchema,
        views: &[CandidateView<'_>],
    ) -> Result<ExplainPlan, IndexError> {
        let mut choices = Vec::with_capacity(query.len());
        for predicate in query.predicates() {
            if schema.column_position(predicate.column()).is_none() {
                return Err(IndexError::Backend {
                    backend: "table".to_string().into(),
                    message: format!("predicate on unknown column {:?}", predicate.column()),
                });
            }
            let scored: Vec<(Candidate, u64)> = views
                .iter()
                .filter(|v| v.column == predicate.column())
                .map(|v| (self.score(v, predicate, query.fetches_values()), v.memory))
                .collect();
            let best = scored
                .iter()
                .filter(|(c, _)| c.eligible)
                .min_by(|(a, a_mem), (b, b_mem)| {
                    a.cost
                        .total_cmp(&b.cost)
                        .then_with(|| a_mem.cmp(b_mem))
                        .then_with(|| a.index.cmp(&b.index))
                })
                .map(|(c, _)| c.clone());
            let candidates: Vec<Candidate> = scored.into_iter().map(|(c, _)| c).collect();
            let (route, reason) = match best {
                Some(c) => (
                    Route::Index {
                        index: c.index.clone(),
                        spec: c.spec.clone(),
                    },
                    format!(
                        "cheapest of {} eligible candidate(s) at {:.3e} s/op",
                        candidates.iter().filter(|c| c.eligible).count(),
                        c.cost
                    ),
                ),
                None if candidates.is_empty() => (
                    Route::Scan,
                    format!("no index on column {:?}", predicate.column()),
                ),
                None => (
                    Route::Scan,
                    "no eligible index (capability mismatch)".to_string(),
                ),
            };
            choices.push(PlanChoice {
                predicate: predicate.clone(),
                candidates,
                route,
                reason,
            });
        }
        Ok(ExplainPlan { choices })
    }

    /// Plans every predicate through the single named index, erroring when
    /// the index does not exist, keys on the wrong column, or cannot serve
    /// a predicate — the forced-index arm of planner experiments.
    pub(crate) fn plan_forced(
        &self,
        query: &TableQuery,
        views: &[CandidateView<'_>],
        index: &str,
    ) -> Result<ExplainPlan, IndexError> {
        let view = views
            .iter()
            .find(|v| v.name == index)
            .ok_or_else(|| IndexError::Backend {
                backend: "table".to_string().into(),
                message: format!("no index named {index:?}"),
            })?;
        let mut choices = Vec::with_capacity(query.len());
        for predicate in query.predicates() {
            if view.column != predicate.column() {
                return Err(IndexError::Backend {
                    backend: "table".to_string().into(),
                    message: format!(
                        "index {index:?} keys on column {:?}, not {:?}",
                        view.column,
                        predicate.column()
                    ),
                });
            }
            let candidate = self.score(view, predicate, query.fetches_values());
            if !candidate.eligible {
                return Err(IndexError::Backend {
                    backend: "table".to_string().into(),
                    message: format!(
                        "index {index:?} cannot serve {predicate}: {}",
                        candidate.detail
                    ),
                });
            }
            choices.push(PlanChoice {
                predicate: predicate.clone(),
                route: Route::Index {
                    index: candidate.index.clone(),
                    spec: candidate.spec.clone(),
                },
                candidates: vec![candidate],
                reason: "forced".to_string(),
            });
        }
        Ok(ExplainPlan { choices })
    }

    /// Scores one candidate for one predicate: eligibility plus the probe
    /// cost of the compiled operation kind.
    fn score(
        &self,
        view: &CandidateView<'_>,
        predicate: &rtx_query::Predicate,
        fetch_values: bool,
    ) -> Candidate {
        let ineligible = |detail: String| Candidate {
            index: view.name.to_string(),
            spec: view.spec.to_string(),
            eligible: false,
            cost: f64::INFINITY,
            detail,
        };
        if predicate.needs_ranges() && !view.caps.range_lookups {
            return ineligible("no range-lookup capability".to_string());
        }
        if predicate.max_key() > u64::from(u32::MAX) && !view.caps.full_64bit_keys {
            return ineligible("32-bit keys only".to_string());
        }
        if fetch_values && !view.has_values {
            return ineligible("no value column".to_string());
        }
        let cost = if predicate.needs_ranges() {
            // Eligibility above guarantees the range probe ran.
            view.probe.range_s.unwrap_or(f64::INFINITY)
        } else {
            view.probe.point_s
        };
        Candidate {
            index: view.name.to_string(),
            spec: view.spec.to_string(),
            eligible: true,
            cost,
            detail: format!("probe {:.3e} s/op, {} B resident", cost, view.memory),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_query::Capabilities;

    fn view<'a>(
        name: &'a str,
        column: &'a str,
        caps: Capabilities,
        point_s: f64,
        range_s: Option<f64>,
        memory: u64,
    ) -> CandidateView<'a> {
        CandidateView {
            name,
            spec: name,
            column,
            caps,
            has_values: true,
            memory,
            probe: ProbeCost { point_s, range_s },
        }
    }

    fn caps(ranges: bool) -> Capabilities {
        Capabilities {
            range_lookups: ranges,
            duplicate_keys: true,
            full_64bit_keys: true,
            updates: false,
        }
    }

    #[test]
    fn cheapest_eligible_index_wins_and_decisions_are_recorded() {
        let schema = TableSchema::new(["k"]);
        let views = vec![
            view("ht", "k", caps(false), 1e-8, None, 100),
            view("rx", "k", caps(true), 5e-8, Some(2e-7), 200),
        ];
        let planner = Planner::default();

        let plan = planner
            .plan(&TableQuery::new().point("k", 3), &schema, &views)
            .unwrap();
        assert_eq!(plan.routed_index(0), Some("ht"));
        assert_eq!(plan.choices[0].candidates.len(), 2);

        // Ranges disqualify the point-only index.
        let plan = planner
            .plan(&TableQuery::new().range("k", 0, 9), &schema, &views)
            .unwrap();
        assert_eq!(plan.routed_index(0), Some("rx"));
        assert!(!plan.choices[0].candidates[0].eligible);
    }

    #[test]
    fn capability_gaps_fall_back_to_scan() {
        let schema = TableSchema::new(["k", "other"]);
        let narrow = Capabilities {
            full_64bit_keys: false,
            ..caps(true)
        };
        let views = vec![view("bt", "k", narrow, 1e-8, Some(1e-8), 10)];
        let planner = Planner::default();

        // 64-bit key on a 32-bit index: scan.
        let plan = planner
            .plan(&TableQuery::new().point("k", u64::MAX), &schema, &views)
            .unwrap();
        assert_eq!(plan.routed_index(0), None);
        assert_eq!(plan.scan_fallbacks(), 1);

        // Unindexed column: scan with the no-index reason.
        let plan = planner
            .plan(&TableQuery::new().point("other", 1), &schema, &views)
            .unwrap();
        assert_eq!(plan.routed_index(0), None);
        assert!(plan.choices[0].reason.contains("no index"));

        // Unknown column: an error, not a silent scan.
        assert!(planner
            .plan(&TableQuery::new().point("nope", 1), &schema, &views)
            .is_err());
    }

    #[test]
    fn memory_breaks_probe_ties_deterministically() {
        let schema = TableSchema::new(["k"]);
        let views = vec![
            view("big", "k", caps(false), 1e-8, None, 500),
            view("small", "k", caps(false), 1e-8, None, 50),
        ];
        let plan = Planner::default()
            .plan(&TableQuery::new().point("k", 1), &schema, &views)
            .unwrap();
        assert_eq!(plan.routed_index(0), Some("small"));
    }

    #[test]
    fn forced_plans_validate_the_target_index() {
        let views = vec![
            view("ht", "k", caps(false), 1e-8, None, 100),
            view("rx", "k", caps(true), 5e-8, Some(2e-7), 200),
        ];
        let planner = Planner::default();
        let q = TableQuery::new().point("k", 3);
        let plan = planner.plan_forced(&q, &views, "rx").unwrap();
        assert_eq!(plan.routed_index(0), Some("rx"));
        assert_eq!(plan.choices[0].reason, "forced");

        // Ranges through the point-only index, or unknown names: errors.
        let ranged = TableQuery::new().range("k", 0, 9);
        assert!(planner.plan_forced(&ranged, &views, "ht").is_err());
        assert!(planner.plan_forced(&q, &views, "nope").is_err());
    }
}
