//! Device-memory accounting.
//!
//! The paper's Table 6 differentiates between the memory an index occupies
//! *after* construction and the additional scratch memory needed *during*
//! construction. [`MemoryTracker`] records both (current and peak usage), and
//! [`DeviceBuffer`] is a `Vec`-like container whose lifetime is tied to the
//! tracker, so every byte a simulated kernel touches shows up in the numbers.

use std::sync::Arc;

use parking_lot::Mutex;

#[derive(Debug, Default)]
struct TrackerState {
    current: u64,
    peak: u64,
    allocations: u64,
}

/// Shared, thread-safe allocation tracker for one simulated device.
#[derive(Debug, Clone, Default)]
pub struct MemoryTracker {
    state: Arc<Mutex<TrackerState>>,
}

impl MemoryTracker {
    /// Creates a tracker with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an allocation of `bytes`.
    pub fn record_alloc(&self, bytes: u64) {
        let mut st = self.state.lock();
        st.current += bytes;
        st.allocations += 1;
        if st.current > st.peak {
            st.peak = st.current;
        }
    }

    /// Records a deallocation of `bytes`.
    ///
    /// Saturates at zero so that double-free accounting bugs in experiments
    /// surface as wrong numbers rather than panics.
    pub fn record_free(&self, bytes: u64) {
        let mut st = self.state.lock();
        st.current = st.current.saturating_sub(bytes);
    }

    /// Bytes currently allocated.
    pub fn current_bytes(&self) -> u64 {
        self.state.lock().current
    }

    /// Highest number of bytes ever allocated simultaneously.
    pub fn peak_bytes(&self) -> u64 {
        self.state.lock().peak
    }

    /// Number of allocations performed.
    pub fn allocation_count(&self) -> u64 {
        self.state.lock().allocations
    }

    /// Resets the peak to the current usage. Experiments call this between
    /// the build phase and the lookup phase to attribute scratch memory to
    /// the right phase.
    pub fn reset_peak(&self) {
        let mut st = self.state.lock();
        st.peak = st.current;
    }

    /// Construction overhead: peak minus current usage.
    pub fn overhead_bytes(&self) -> u64 {
        let st = self.state.lock();
        st.peak.saturating_sub(st.current)
    }
}

/// A device-resident buffer of `T` values whose allocation is accounted in a
/// [`MemoryTracker`].
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    tracker: MemoryTracker,
    tracked_bytes: u64,
}

impl<T> DeviceBuffer<T> {
    fn register(data: Vec<T>, tracker: MemoryTracker) -> Self {
        let tracked_bytes = (data.capacity() * std::mem::size_of::<T>()) as u64;
        tracker.record_alloc(tracked_bytes);
        DeviceBuffer {
            data,
            tracker,
            tracked_bytes,
        }
    }

    /// Allocates a buffer holding a copy of `slice`.
    pub fn from_slice(slice: &[T], tracker: MemoryTracker) -> Self
    where
        T: Clone,
    {
        Self::register(slice.to_vec(), tracker)
    }

    /// Allocates a buffer by taking ownership of an existing host vector.
    pub fn from_vec(data: Vec<T>, tracker: MemoryTracker) -> Self {
        Self::register(data, tracker)
    }

    /// Allocates a buffer of `len` default-initialised elements.
    pub fn zeroed(len: usize, tracker: MemoryTracker) -> Self
    where
        T: Clone + Default,
    {
        Self::register(vec![T::default(); len], tracker)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the buffer in bytes as accounted by the tracker.
    pub fn size_bytes(&self) -> u64 {
        self.tracked_bytes
    }

    /// Read-only view of the contents.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the contents.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the buffer and returns the underlying vector, releasing the
    /// tracked allocation.
    pub fn into_vec(mut self) -> Vec<T> {
        self.tracker.record_free(self.tracked_bytes);
        self.tracked_bytes = 0;
        std::mem::take(&mut self.data)
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        if self.tracked_bytes > 0 {
            self.tracker.record_free(self.tracked_bytes);
        }
    }
}

impl<T> std::ops::Deref for DeviceBuffer<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T> std::ops::DerefMut for DeviceBuffer<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_records_current_and_peak() {
        let t = MemoryTracker::new();
        t.record_alloc(100);
        t.record_alloc(50);
        assert_eq!(t.current_bytes(), 150);
        assert_eq!(t.peak_bytes(), 150);
        t.record_free(100);
        assert_eq!(t.current_bytes(), 50);
        assert_eq!(t.peak_bytes(), 150);
        t.record_alloc(25);
        assert_eq!(t.peak_bytes(), 150, "peak unchanged until exceeded");
        assert_eq!(t.overhead_bytes(), 75);
        t.reset_peak();
        assert_eq!(t.peak_bytes(), 75);
        assert_eq!(t.allocation_count(), 3);
    }

    #[test]
    fn tracker_free_saturates() {
        let t = MemoryTracker::new();
        t.record_alloc(10);
        t.record_free(100);
        assert_eq!(t.current_bytes(), 0);
    }

    #[test]
    fn buffer_lifecycle_tracks_bytes() {
        let t = MemoryTracker::new();
        {
            let mut buf = DeviceBuffer::<u32>::zeroed(256, t.clone());
            assert_eq!(buf.len(), 256);
            assert!(!buf.is_empty());
            assert_eq!(t.current_bytes(), 1024);
            buf.as_mut_slice()[0] = 7;
            assert_eq!(buf.as_slice()[0], 7);
            assert_eq!(buf[0], 7);
        }
        assert_eq!(t.current_bytes(), 0);
        assert_eq!(t.peak_bytes(), 1024);
    }

    #[test]
    fn buffer_from_slice_and_into_vec() {
        let t = MemoryTracker::new();
        let buf = DeviceBuffer::from_slice(&[1u64, 2, 3], t.clone());
        assert!(t.current_bytes() >= 24);
        let v = buf.into_vec();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(t.current_bytes(), 0);
    }

    #[test]
    fn buffer_from_vec_accounts_capacity() {
        let t = MemoryTracker::new();
        let mut v = Vec::with_capacity(100);
        v.push(1u8);
        let buf = DeviceBuffer::from_vec(v, t.clone());
        assert_eq!(buf.size_bytes(), 100);
        assert_eq!(t.current_bytes(), 100);
    }

    #[test]
    fn concurrent_tracking_is_consistent() {
        let t = MemoryTracker::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        t.record_alloc(8);
                        t.record_free(8);
                    }
                });
            }
        });
        assert_eq!(t.current_bytes(), 0);
        assert!(t.peak_bytes() >= 8);
    }
}
