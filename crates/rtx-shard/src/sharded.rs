//! [`ShardedIndex`]: N inner backends behind one [`SecondaryIndex`].
//!
//! The key space is cut by a [`KeyRouter`] (hash or contiguous-range, see
//! [`partition`](crate::partition)); each shard runs its own inner backend
//! built from the registry, over the slice of the column pair it owns. A
//! mixed [`QueryBatch`] is planned into per-shard sub-batches
//! ([`ScatterPlan`]), the sub-batches execute concurrently on the
//! `gpu-device` worker pool, and the per-shard outcomes are gathered back
//! into submission order with merged launch metrics.
//!
//! ## Global rowIDs
//!
//! Inner backends number rows by their position in the shard's local
//! column, but callers must see the *global* rowIDs of the original column
//! (a sharded backend answers exactly like its unsharded counterpart, which
//! the property suite asserts). Each shard therefore keeps a local→global
//! row mirror: built from the scatter of the build column, extended by
//! routed inserts in submission order, thinned by deletes and collapsed
//! when the inner backend reports a reorganisation — the same
//! row-assignment rules the dynamic backend documents. Because a shard's
//! local order is a subsequence of global order, translating the inner
//! `first_row` through the mirror and taking the minimum across shards
//! yields the global first row.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use gpu_device::executor::{parallel_map, parallel_tasks};
use rtx_query::{
    ArenaPool, BatchOutcome, Capabilities, ExecArena, IndexBuildMetrics, IndexError, IndexSpec,
    KeyRouter, MemoryUsage, Partitioning, QueryBatch, QueryOps, QueryOutcome, Registry,
    ScatterPlan, SecondaryIndex, ShardSpec, UpdatableIndex, UpdateReport, MISS,
};

use crate::partition::{HashPartitioner, RangePartitioner};

/// A serializable description of a [`KeyRouter`]: everything a durability
/// manifest must persist to reconstruct the exact routing of a sharded
/// index on recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterConfig {
    /// Hash partitioning over `shards` shards.
    Hash {
        /// Number of shards.
        shards: usize,
    },
    /// Range partitioning with the captured per-shard upper bounds.
    Range {
        /// Inclusive upper bounds of every shard but the last.
        bounds: Vec<u64>,
    },
}

impl RouterConfig {
    /// Number of shards the config routes over.
    pub fn shard_count(&self) -> usize {
        match self {
            RouterConfig::Hash { shards } => *shards,
            RouterConfig::Range { bounds } => bounds.len() + 1,
        }
    }

    /// Instantiates the router the config describes.
    pub fn router(&self) -> Box<dyn KeyRouter> {
        match self {
            RouterConfig::Hash { shards } => Box::new(HashPartitioner::new(*shards)),
            RouterConfig::Range { bounds } => {
                Box::new(RangePartitioner::from_bounds(bounds.clone()))
            }
        }
    }
}

/// One shard's inner backend: read-only or updatable, depending on which
/// registry path built it.
enum ShardBackend {
    Read(Box<dyn SecondaryIndex>),
    Write(Box<dyn UpdatableIndex>),
}

impl ShardBackend {
    fn read(&self) -> &dyn SecondaryIndex {
        match self {
            ShardBackend::Read(ix) => ix.as_ref(),
            ShardBackend::Write(ix) => ix.as_ref() as &dyn UpdatableIndex as &dyn SecondaryIndex,
        }
    }

    fn write(&mut self) -> Option<&mut dyn UpdatableIndex> {
        match self {
            ShardBackend::Read(_) => None,
            ShardBackend::Write(ix) => Some(ix.as_mut()),
        }
    }
}

/// One shard's local→global row mirror in recovered form: entry `local`
/// holds `Some((key, global))` for a live row, `None` for a deleted one.
pub type RecoveredRows = Vec<Option<(u64, u32)>>;

/// The local→global row mirror of one shard (see the module docs): entry
/// `local` holds the key and global rowID of the shard's local row, `None`
/// once the row is deleted.
struct ShardRows {
    entries: RecoveredRows,
}

impl ShardRows {
    fn new(assigned: Vec<(u64, u32)>) -> Self {
        ShardRows {
            entries: assigned.into_iter().map(Some).collect(),
        }
    }

    /// Global rowID of a live local row.
    fn global(&self, local: u32) -> u32 {
        self.entries
            .get(local as usize)
            .copied()
            .flatten()
            .expect("shard row mirror out of sync with the inner backend")
            .1
    }

    /// Mirrors an insert: fresh local rows take the next local slots, in
    /// batch order.
    fn append(&mut self, keys: &[u64], globals: &[u32]) {
        self.entries
            .extend(keys.iter().zip(globals).map(|(&k, &g)| Some((k, g))));
    }

    /// Mirrors a delete: every live row holding a doomed key dies.
    fn delete(&mut self, doomed: &HashSet<u64>) {
        for entry in &mut self.entries {
            if matches!(entry, Some((k, _)) if doomed.contains(k)) {
                *entry = None;
            }
        }
    }

    /// Mirrors a reorganisation (compaction): survivors renumber densely in
    /// preserved order.
    fn compact(&mut self) {
        self.entries.retain(Option::is_some);
    }
}

struct Shard {
    backend: ShardBackend,
    rows: ShardRows,
}

impl Shard {
    /// Rewrites an outcome's rowIDs from shard-local to global.
    fn translate(&self, mut outcome: QueryOutcome) -> QueryOutcome {
        for r in &mut outcome.results {
            if r.first_row != MISS {
                r.first_row = self.rows.global(r.first_row);
            }
        }
        outcome
    }
}

/// A partitioned index: any registered backend (homogeneous, or mixed per
/// shard) behind the ordinary [`SecondaryIndex`] interface, with mixed
/// batches scattered across the shards and executed in parallel.
///
/// Build it through the registry by name (`"RX@8"`, `"SA@4:range"`, once
/// [`install_sharding`](crate::install_sharding) ran) or directly via
/// [`ShardedIndex::build`] / [`ShardedIndex::build_mixed`].
pub struct ShardedIndex {
    /// Interned so hot error paths clone a pointer, not a String.
    label: Arc<str>,
    router: Box<dyn KeyRouter>,
    /// The serializable description `router` was built from (persisted by
    /// durability manifests, restored by [`ShardedIndex::from_parts`]).
    router_config: RouterConfig,
    shards: Vec<Shard>,
    capabilities: Capabilities,
    has_values: bool,
    build_metrics: IndexBuildMetrics,
    /// Next global rowID handed to an insert (u64 so the overflow check is
    /// trivial; valid rowIDs stay below [`MISS`]).
    next_row: u64,
    /// Pooled scatter plans, replanned in place per submission.
    plan_pool: Mutex<Vec<ScatterPlan>>,
    arena_pool: ArenaPool,
}

impl std::fmt::Debug for ShardedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedIndex")
            .field("label", &self.label)
            .field("shards", &self.shards.len())
            .field("key_count", &self.key_count())
            .field("capabilities", &self.capabilities)
            .finish()
    }
}

/// Routes every `(key, value)` of the build column to its shard, keeping
/// the global row order within each shard.
struct BuildScatter {
    keys: Vec<Vec<u64>>,
    values: Option<Vec<Vec<u64>>>,
    assigned: Vec<Vec<(u64, u32)>>,
}

fn scatter_build_columns(router: &dyn KeyRouter, spec: &IndexSpec<'_>) -> BuildScatter {
    let shards = router.shard_count();
    let mut scatter = BuildScatter {
        keys: vec![Vec::new(); shards],
        values: spec.values().map(|_| vec![Vec::new(); shards]),
        assigned: vec![Vec::new(); shards],
    };
    for (row, &key) in spec.keys.iter().enumerate() {
        let s = router.shard_of_point(key);
        scatter.keys[s].push(key);
        if let (Some(per_shard), Some(values)) = (&mut scatter.values, spec.values()) {
            per_shard[s].push(values[row]);
        }
        scatter.assigned[s].push((key, row as u32));
    }
    scatter
}

fn and_capabilities(a: Capabilities, b: Capabilities) -> Capabilities {
    Capabilities {
        range_lookups: a.range_lookups && b.range_lookups,
        duplicate_keys: a.duplicate_keys && b.duplicate_keys,
        full_64bit_keys: a.full_64bit_keys && b.full_64bit_keys,
        updates: a.updates && b.updates,
    }
}

impl ShardedIndex {
    /// Builds a homogeneous sharded backend for `spec` (one
    /// `spec.backend` instance per shard) over the columns of `index`.
    pub fn build(
        registry: &Registry,
        spec: &ShardSpec,
        index: &IndexSpec<'_>,
    ) -> Result<Self, IndexError> {
        let backends = vec![spec.backend.as_str(); spec.shards];
        Self::build_inner(
            registry,
            &backends,
            spec.partitioning,
            spec.name(),
            index,
            false,
        )
    }

    /// Builds a sharded backend whose shards are all updatable (so the
    /// result implements the update operations of [`UpdatableIndex`] by
    /// routing them through the same partitioner as the lookups).
    pub fn build_updatable(
        registry: &Registry,
        spec: &ShardSpec,
        index: &IndexSpec<'_>,
    ) -> Result<Self, IndexError> {
        let backends = vec![spec.backend.as_str(); spec.shards];
        Self::build_inner(
            registry,
            &backends,
            spec.partitioning,
            spec.name(),
            index,
            true,
        )
    }

    /// Builds a sharded backend running a *different* backend per shard
    /// (one registry name per shard) — e.g. the hot hash-owned shards on
    /// `"HT"` and the rest on `"RX"`. Capabilities are the intersection of
    /// the shards' capabilities.
    pub fn build_mixed(
        registry: &Registry,
        backends: &[&str],
        partitioning: Partitioning,
        index: &IndexSpec<'_>,
    ) -> Result<Self, IndexError> {
        let label = format!(
            "{}@{}:{}",
            backends.join("+"),
            backends.len(),
            partitioning.name()
        );
        Self::build_inner(registry, backends, partitioning, label, index, false)
    }

    fn build_inner(
        registry: &Registry,
        backends: &[&str],
        partitioning: Partitioning,
        label: String,
        index: &IndexSpec<'_>,
        updatable: bool,
    ) -> Result<Self, IndexError> {
        if backends.is_empty() {
            return Err(IndexError::Backend {
                backend: label.into(),
                message: "shard count must be at least 1".to_string(),
            });
        }
        if index.keys.len() as u64 >= MISS as u64 {
            return Err(IndexError::CapacityOverflow {
                backend: label.into(),
                keys: index.keys.len(),
                limit: MISS as u64 - 1,
            });
        }

        let router_config = match partitioning {
            Partitioning::Hash => RouterConfig::Hash {
                shards: backends.len(),
            },
            Partitioning::Range => RouterConfig::Range {
                bounds: RangePartitioner::from_keys(index.keys, backends.len())
                    .bounds()
                    .to_vec(),
            },
        };
        let router = router_config.router();

        let start = Instant::now();
        let scatter = scatter_build_columns(router.as_ref(), index);
        let values_per_shard: Vec<Option<Vec<u64>>> = match scatter.values {
            Some(v) => v.into_iter().map(Some).collect(),
            None => vec![None; backends.len()],
        };
        let shard_inputs: Vec<(Vec<u64>, Option<Vec<u64>>)> =
            scatter.keys.into_iter().zip(values_per_shard).collect();

        // Build every inner backend in parallel on the worker pool; each
        // build allocates against (and is profiled by) the shared device.
        let built: Vec<Result<ShardBackend, IndexError>> =
            parallel_map(shard_inputs, |s, (keys, values)| {
                let spec = IndexSpec {
                    device: index.device,
                    keys: &keys,
                    values: values.map(Arc::from),
                    // Builder selection propagates to every shard; so does
                    // a durability request, which tells each inner backend
                    // to prepare for the external wrapper (the wrapper owns
                    // the WAL — inner backends never persist themselves).
                    builder: index.builder,
                    durability: index.durability.clone(),
                    // Composite schemas wrap *outside* the shard layer, so
                    // inner shards always see schema-free specs.
                    key_schema: None,
                    rows: None,
                };
                if updatable {
                    registry
                        .build_updatable(backends[s], &spec)
                        .map(ShardBackend::Write)
                } else {
                    registry.build(backends[s], &spec).map(ShardBackend::Read)
                }
            });

        let mut shards = Vec::with_capacity(built.len());
        for (backend, assigned) in built.into_iter().zip(scatter.assigned) {
            shards.push(Shard {
                backend: backend?,
                rows: ShardRows::new(assigned),
            });
        }

        let capabilities = shards
            .iter()
            .map(|s| s.backend.read().capabilities())
            .reduce(and_capabilities)
            .map(|caps| Capabilities {
                updates: caps.updates && updatable,
                ..caps
            })
            .expect("at least one shard");
        let build_metrics = IndexBuildMetrics {
            simulated_time_s: shards
                .iter()
                .map(|s| s.backend.read().build_metrics().simulated_time_s)
                .sum(),
            host_time: start.elapsed(),
            scratch_bytes: shards
                .iter()
                .map(|s| s.backend.read().build_metrics().scratch_bytes)
                .sum(),
        };

        Ok(ShardedIndex {
            label: label.into(),
            router,
            router_config,
            shards,
            capabilities,
            has_values: index.values.is_some(),
            build_metrics,
            next_row: index.keys.len() as u64,
            plan_pool: Mutex::new(Vec::new()),
            arena_pool: ArenaPool::new(),
        })
    }

    /// Reassembles a sharded index from recovered parts: one updatable
    /// inner backend plus its local→global row mirror per shard (mirror
    /// entry `local` holds `Some((key, global))` for a live row, `None` for
    /// a deleted one), the router the manifest captured, and the global row
    /// counter at crash time. This is the recovery entry point of the
    /// durability layer — each shard replays its own WAL in parallel, then
    /// the parts snap together here.
    pub fn from_parts(
        label: String,
        router_config: RouterConfig,
        parts: Vec<(Box<dyn UpdatableIndex>, RecoveredRows)>,
        has_values: bool,
        next_row: u64,
    ) -> Result<Self, IndexError> {
        if parts.len() != router_config.shard_count() {
            return Err(IndexError::Backend {
                backend: label.into(),
                message: format!(
                    "router expects {} shards but {} were recovered",
                    router_config.shard_count(),
                    parts.len()
                ),
            });
        }
        let shards: Vec<Shard> = parts
            .into_iter()
            .map(|(backend, entries)| Shard {
                backend: ShardBackend::Write(backend),
                rows: ShardRows { entries },
            })
            .collect();
        let capabilities = shards
            .iter()
            .map(|s| s.backend.read().capabilities())
            .reduce(and_capabilities)
            .ok_or_else(|| IndexError::Backend {
                backend: "from_parts".into(),
                message: "shard count must be at least 1".to_string(),
            })?;
        Ok(ShardedIndex {
            label: label.into(),
            router: router_config.router(),
            router_config,
            shards,
            capabilities,
            has_values,
            build_metrics: IndexBuildMetrics::default(),
            next_row,
            plan_pool: Mutex::new(Vec::new()),
            arena_pool: ArenaPool::new(),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard `(backend name, live key count, memory bytes)` — the
    /// balance view a service operator would watch.
    pub fn shard_stats(&self) -> Vec<(String, usize, u64)> {
        self.shards
            .iter()
            .map(|s| {
                let ix = s.backend.read();
                (ix.name().to_string(), ix.key_count(), ix.memory_bytes())
            })
            .collect()
    }

    /// The key router distributing lookups and updates over the shards.
    pub fn router(&self) -> &dyn KeyRouter {
        self.router.as_ref()
    }

    /// The serializable router description (persisted by durability
    /// manifests, fed back to [`ShardedIndex::from_parts`] on recovery).
    pub fn router_config(&self) -> &RouterConfig {
        &self.router_config
    }

    /// The next global rowID an insert would be assigned (monotonic; never
    /// reused even across deletes).
    pub fn next_row(&self) -> u64 {
        self.next_row
    }

    /// Lands every shard's completed deferred reorganisation without
    /// blocking, returning the per-shard landed counts (and collapsing the
    /// affected row mirrors). The durability layer calls this before
    /// logging each update batch so per-shard swap points become explicit
    /// WAL records.
    pub fn poll_shard_reorganisations(&mut self) -> Result<Vec<u64>, IndexError> {
        self.writable()?;
        self.shards
            .iter_mut()
            .map(|shard| {
                let landed = shard
                    .backend
                    .write()
                    .expect("writability checked")
                    .poll_reorganisation()?;
                if landed > 0 {
                    shard.rows.compact();
                }
                Ok(landed)
            })
            .collect()
    }

    /// Waits for every shard's in-flight reorganisation and lands it,
    /// returning the per-shard landed counts.
    pub fn await_shard_reorganisations(&mut self) -> Result<Vec<u64>, IndexError> {
        self.writable()?;
        self.shards
            .iter_mut()
            .map(|shard| {
                let landed = shard
                    .backend
                    .write()
                    .expect("writability checked")
                    .await_reorganisation()?;
                if landed > 0 {
                    shard.rows.compact();
                }
                Ok(landed)
            })
            .collect()
    }

    /// The live `(key, value, global rowID)` triples of every shard, in
    /// shard-local row order — but only when *every* shard is in the clean
    /// state its [`UpdatableIndex::checkpoint_rows`] contract demands and
    /// its row mirror agrees. This is what a sharded snapshot persists:
    /// rebuilding shard `s` from its triples (keys+values as the build
    /// columns, globals as the mirror) reproduces the shard exactly.
    pub fn shard_checkpoint_rows(&self) -> Option<Vec<Vec<(u64, u64, u32)>>> {
        self.shards
            .iter()
            .map(|shard| {
                let rows = match &shard.backend {
                    ShardBackend::Write(ix) => ix.checkpoint_rows()?,
                    ShardBackend::Read(_) => return None,
                };
                let live: Vec<(u64, u32)> = shard.rows.entries.iter().copied().flatten().collect();
                if live.len() != rows.len() {
                    return None;
                }
                Some(
                    rows.iter()
                        .zip(live)
                        .map(|(&(key, value), (_, global))| (key, value, global))
                        .collect(),
                )
            })
            .collect()
    }

    fn writable(&self) -> Result<(), IndexError> {
        if self
            .shards
            .iter()
            .any(|s| matches!(s.backend, ShardBackend::Read(_)))
        {
            return Err(IndexError::UnsupportedOperation {
                backend: Arc::clone(&self.label),
                operation: "updates",
            });
        }
        Ok(())
    }

    /// Routes an update batch's keys (and optional values/global rows) to
    /// their owning shards, preserving batch order within each shard.
    fn route_update(
        &mut self,
        keys: &[u64],
        values: Option<&[u64]>,
        assign_rows: bool,
    ) -> Result<Vec<UpdateRoute>, IndexError> {
        if assign_rows && self.next_row + keys.len() as u64 >= MISS as u64 {
            return Err(IndexError::CapacityOverflow {
                backend: Arc::clone(&self.label),
                keys: keys.len(),
                limit: (MISS as u64 - 1).saturating_sub(self.next_row),
            });
        }
        let mut routes: Vec<UpdateRoute> = (0..self.shards.len())
            .map(|_| UpdateRoute::default())
            .collect();
        for (i, &key) in keys.iter().enumerate() {
            let route = &mut routes[self.router.shard_of_point(key)];
            route.keys.push(key);
            if let Some(values) = values {
                route.values.push(values[i]);
            }
            if assign_rows {
                route.globals.push(self.next_row as u32);
                self.next_row += 1;
            }
        }
        Ok(routes)
    }

    /// Applies one routed update operation to every shard in parallel and
    /// merges the per-shard reports.
    fn apply_update<F>(
        &mut self,
        routes: Vec<UpdateRoute>,
        apply: F,
    ) -> Result<UpdateReport, IndexError>
    where
        F: Fn(
                &mut dyn UpdatableIndex,
                &mut ShardRows,
                UpdateRoute,
            ) -> Result<UpdateReport, IndexError>
            + Sync,
    {
        let work: Vec<(&mut Shard, UpdateRoute)> = self.shards.iter_mut().zip(routes).collect();
        let reports = parallel_map(work, |_, (shard, route)| {
            if route.keys.is_empty() {
                return Ok(UpdateReport::default());
            }
            let writer = shard.backend.write().expect("writability checked");
            apply(writer, &mut shard.rows, route)
        });
        let mut merged = UpdateReport::default();
        for report in reports {
            let report = report?;
            merged.inserted_rows += report.inserted_rows;
            merged.deleted_rows += report.deleted_rows;
            merged.simulated_time_s += report.simulated_time_s;
            merged.reorganisations += report.reorganisations;
        }
        Ok(merged)
    }

    /// The uniform sharded-execution prechecks (same errors the provided
    /// trait executor raises, with the sharded label).
    fn validate(&self, fetches_values: bool, has_range_op: bool) -> Result<(), IndexError> {
        if fetches_values && !self.has_values {
            return Err(IndexError::NoValueColumn {
                backend: Arc::clone(&self.label),
            });
        }
        if has_range_op && !self.capabilities.range_lookups {
            return Err(IndexError::UnsupportedOperation {
                backend: Arc::clone(&self.label),
                operation: "range lookups",
            });
        }
        Ok(())
    }

    fn check_out_plan(&self) -> ScatterPlan {
        self.plan_pool
            .lock()
            .expect("plan pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    fn check_in_plan(&self, plan: ScatterPlan) {
        self.plan_pool
            .lock()
            .expect("plan pool poisoned")
            .push(plan);
    }

    /// Executes a ready scatter plan: every non-empty shard sub-batch runs
    /// concurrently on the worker pool through a pooled arena, outcomes are
    /// translated to global rowIDs and gathered into submission order.
    fn execute_planned(&self, plan: &ScatterPlan) -> Result<QueryOutcome, IndexError> {
        let outcomes = parallel_tasks(self.shards.len(), |s| {
            let sub = &plan.sub_ops()[s];
            if sub.is_empty() {
                return Ok(QueryOutcome::default());
            }
            let shard = &self.shards[s];
            let mut arena = self.arena_pool.check_out();
            let result = shard
                .backend
                .read()
                .execute_ops_in(sub, &mut arena)
                .map(|out| shard.translate(out));
            self.arena_pool.check_in(arena);
            result
        });
        let mut gathered = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            gathered.push(outcome?);
        }
        Ok(plan.gather(gathered))
    }

    fn check_value_batch(&self, keys: &[u64], values: &[u64]) -> Result<(), IndexError> {
        if keys.len() != values.len() {
            return Err(IndexError::ValueColumnLengthMismatch {
                expected: keys.len(),
                actual: values.len(),
            });
        }
        Ok(())
    }
}

/// One shard's slice of an update batch, in batch order.
#[derive(Default)]
struct UpdateRoute {
    keys: Vec<u64>,
    values: Vec<u64>,
    globals: Vec<u32>,
}

impl SecondaryIndex for ShardedIndex {
    fn name(&self) -> &str {
        &self.label
    }

    fn key_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.backend.read().key_count())
            .sum()
    }

    fn memory_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.backend.read().memory_bytes())
            .sum()
    }

    fn build_metrics(&self) -> IndexBuildMetrics {
        self.build_metrics
    }

    fn memory_usage(&self) -> MemoryUsage {
        let mut usage = MemoryUsage::default();
        for shard in &self.shards {
            usage.add(&shard.backend.read().memory_usage());
            // The local→global row mirror is sharding bookkeeping that
            // exists to track liveness — account it with the tombstones.
            usage.tombstone_bytes +=
                (shard.rows.entries.len() * std::mem::size_of::<Option<(u64, u32)>>()) as u64;
        }
        usage
    }

    fn capabilities(&self) -> Capabilities {
        self.capabilities
    }

    fn has_value_column(&self) -> bool {
        self.has_values
    }

    fn point_chunk(&self, queries: &[u64], fetch_values: bool) -> Result<BatchOutcome, IndexError> {
        self.execute(&QueryBatch::of_points(queries).fetch_values(fetch_values))
    }

    fn range_chunk(
        &self,
        ranges: &[(u64, u64)],
        fetch_values: bool,
    ) -> Result<BatchOutcome, IndexError> {
        self.execute(&QueryBatch::of_ranges(ranges).fetch_values(fetch_values))
    }

    /// Scatter/gather execution: the batch is planned into per-shard SoA
    /// sub-batches which run concurrently on the worker pool; outcomes are
    /// translated to global rowIDs and gathered back into submission order
    /// with merged metrics. Results are identical to executing the batch on
    /// the equivalent unsharded backend.
    ///
    /// The scatter plan comes from this index's plan pool (replanned in
    /// place) and every shard task executes through a pooled [`ExecArena`],
    /// so steady-state sharded execution reuses all of its scratch. The
    /// caller's `arena` is not used — the per-shard pool is the sharded
    /// equivalent.
    fn execute_in(
        &self,
        batch: &QueryBatch,
        _arena: &mut ExecArena,
    ) -> Result<QueryOutcome, IndexError> {
        self.validate(batch.fetches_values(), batch.range_count() > 0)?;
        let mut plan = self.check_out_plan();
        plan.replan(batch, self.router.as_ref());
        let result = self.execute_planned(&plan);
        self.check_in_plan(plan);
        result
    }

    /// SoA entry point — identical to
    /// [`execute_in`](SecondaryIndex::execute_in) but replans straight from
    /// the [`QueryOps`] stream.
    fn execute_ops_in(
        &self,
        ops: &QueryOps,
        _arena: &mut ExecArena,
    ) -> Result<QueryOutcome, IndexError> {
        self.validate(ops.fetches_values(), ops.range_count() > 0)?;
        let mut plan = self.check_out_plan();
        plan.replan_ops(ops, self.router.as_ref());
        let result = self.execute_planned(&plan);
        self.check_in_plan(plan);
        result
    }
}

/// Routed updates: each batch is split by the partitioner and applied to
/// the owning shards concurrently, with global rowIDs assigned in batch
/// order and the per-shard reports merged.
///
/// **Atomicity caveat:** unlike a monolithic backend — which validates a
/// batch up front and leaves the index untouched on error — a sharded
/// update is *not* atomic across shards. If one shard's sub-batch fails,
/// sub-batches already applied to other shards stay applied (and the
/// global rowIDs planned for the failing shard stay consumed, leaving
/// harmless holes in the monotonic row space). Callers that need
/// all-or-nothing semantics must validate batches against the inner
/// backend's constraints before submitting, exactly as a distributed
/// store would.
impl UpdatableIndex for ShardedIndex {
    fn insert(&mut self, keys: &[u64], values: &[u64]) -> Result<UpdateReport, IndexError> {
        self.writable()?;
        self.check_value_batch(keys, values)?;
        let routes = self.route_update(keys, Some(values), true)?;
        self.apply_update(routes, |writer, rows, route| {
            let report = writer.insert(&route.keys, &route.values)?;
            rows.append(&route.keys, &route.globals);
            if report.reorganisations > 0 {
                rows.compact();
            }
            Ok(report)
        })
    }

    fn delete(&mut self, keys: &[u64]) -> Result<UpdateReport, IndexError> {
        self.writable()?;
        let routes = self.route_update(keys, None, false)?;
        self.apply_update(routes, |writer, rows, route| {
            let report = writer.delete(&route.keys)?;
            rows.delete(&route.keys.iter().copied().collect());
            if report.reorganisations > 0 {
                rows.compact();
            }
            Ok(report)
        })
    }

    fn upsert(&mut self, keys: &[u64], values: &[u64]) -> Result<UpdateReport, IndexError> {
        self.writable()?;
        self.check_value_batch(keys, values)?;
        let routes = self.route_update(keys, Some(values), true)?;
        self.apply_update(routes, |writer, rows, route| {
            let report = writer.upsert(&route.keys, &route.values)?;
            // Mirror the documented upsert semantics: every existing row of
            // the keys dies, then one fresh row per pair appends in batch
            // order.
            rows.delete(&route.keys.iter().copied().collect());
            rows.append(&route.keys, &route.globals);
            if report.reorganisations > 0 {
                rows.compact();
            }
            Ok(report)
        })
    }

    fn poll_reorganisation(&mut self) -> Result<u64, IndexError> {
        Ok(self.poll_shard_reorganisations()?.iter().sum())
    }

    fn await_reorganisation(&mut self) -> Result<u64, IndexError> {
        Ok(self.await_shard_reorganisations()?.iter().sum())
    }

    fn reorganisation_in_flight(&self) -> bool {
        self.shards.iter().any(|s| match &s.backend {
            ShardBackend::Write(ix) => ix.reorganisation_in_flight(),
            ShardBackend::Read(_) => false,
        })
    }

    /// Forces a synchronous compaction of every shard (collapsing the row
    /// mirrors with them) and merges the per-shard reports. Fails if any
    /// shard's backend has no explicit compaction.
    fn compact(&mut self) -> Result<UpdateReport, IndexError> {
        self.writable()?;
        let work: Vec<&mut Shard> = self.shards.iter_mut().collect();
        let reports = parallel_map(work, |_, shard| -> Result<UpdateReport, IndexError> {
            let report = shard
                .backend
                .write()
                .expect("writability checked")
                .compact()?;
            shard.rows.compact();
            Ok(report)
        });
        let mut merged = UpdateReport::default();
        for report in reports {
            let report: UpdateReport = report?;
            merged.inserted_rows += report.inserted_rows;
            merged.deleted_rows += report.deleted_rows;
            merged.simulated_time_s += report.simulated_time_s;
            merged.reorganisations += report.reorganisations;
        }
        Ok(merged)
    }
}
