//! Skewed analytics over typed columns: 64-bit keys, signed integers and
//! string prefixes, plus the hit-rate and skew regimes where RX shines
//! (Sections 4.6–4.8 of the paper).
//!
//! Run with: `cargo run --release --example skewed_analytics`

use rtindex::{registry, Device, DeviceSpec, IndexSpec, QueryBatch, RtIndexConfig, TypedRtIndex};
use rtx_workloads as wl;

fn main() {
    let seed = 23;
    let registry = registry();

    // Run the same workload on two GPU generations to see the architectural
    // trend of Figure 18.
    for spec in [DeviceSpec::rtx_2080ti(), DeviceSpec::rtx_4090()] {
        let device = Device::new(spec.clone());
        let n = 1usize << 16;
        let keys = wl::sparse_uniform(n, u64::MAX / 2, seed); // full 64-bit domain
        let values = wl::value_column(n, seed + 1);
        let index = registry
            .build("RX", &IndexSpec::with_values(&device, &keys, &values))
            .expect("build");

        // Low-hit-rate workload: most lookups miss (e.g. anti-join probing).
        let queries = wl::point_lookups_with_hit_rate(&keys, 1 << 17, 0.1, seed + 2);
        let out = index
            .execute(&QueryBatch::of_points(&queries).fetch_values(true))
            .expect("lookup");
        println!(
            "{:>11}: 64-bit keys, hit rate 0.1 -> {:.3} ms simulated, {} early aborts",
            spec.name,
            out.sim_ms(),
            out.kernel().early_aborts
        );
    }

    // Typed columns: a signed temperature column and a string dimension.
    let device = Device::default_eval();
    let temperatures: Vec<i64> = (0..(1i64 << 14)).map(|i| (i * 37 % 4001) - 2000).collect();
    let temp_values = wl::value_column(temperatures.len(), seed + 3);
    let temp_index =
        TypedRtIndex::build(&device, &temperatures, RtIndexConfig::default()).expect("build");
    let freezing = temp_index
        .range_lookup_batch(&[(-2000i64, 0i64)], Some(&temp_values))
        .expect("range lookup");
    println!(
        "\ntemperature column: {} readings at or below freezing, value sum {}",
        freezing.results[0].hit_count, freezing.results[0].value_sum
    );

    let cities = [
        "berlin", "boston", "chicago", "mainz", "osaka", "paris", "quito", "zagreb",
    ];
    let city_column: Vec<&str> = (0..4096).map(|i| cities[(i * 31) % cities.len()]).collect();
    let city_index =
        TypedRtIndex::build(&device, &city_column, RtIndexConfig::default()).expect("build");
    let mainz = city_index
        .point_lookup_batch(&["mainz"], None)
        .expect("lookup");
    println!(
        "city column: 'mainz' appears in {} of {} rows (first rowID {})",
        mainz.results[0].hit_count,
        city_column.len(),
        mainz.results[0].first_row
    );

    // Skewed dashboard queries: the hotter the skew, the cheaper the batch.
    let keys = wl::dense_shuffled(1 << 16, seed + 4);
    let values = wl::value_column(keys.len(), seed + 5);
    let index = registry
        .build("RX", &IndexSpec::with_values(&device, &keys, &values))
        .expect("build");
    println!("\nZipf-skewed dashboard queries over 2^16 keys:");
    for theta in [0.0, 1.0, 2.0] {
        let queries = wl::point_lookups_zipf(&keys, 1 << 17, theta, seed + 6);
        let out = index
            .execute(&QueryBatch::of_points(&queries).fetch_values(true))
            .expect("lookup");
        println!(
            "  zipf {theta:>3}: {:.3} ms simulated, cache hit rate {:.1}%",
            out.sim_ms(),
            out.kernel().cache_hit_rate() * 100.0
        );
    }
}
