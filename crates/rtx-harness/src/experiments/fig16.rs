//! Figure 16 and Table 7: skewed (Zipf-distributed) point lookups.
//!
//! Lookup skew improves access locality for every index; RX benefits the
//! most because once the workload becomes cache-resident it is compute bound,
//! and the hardware traversal executes far fewer instructions than a
//! software tree traversal (Table 7 reports the cache hit rates, memory
//! traffic and instruction counts behind that explanation).

use rtindex_core::RtIndexConfig;
use rtx_workloads as wl;

use crate::indexes::{build_all_indexes, measure_points};
use crate::report::{fmt_ms, fmt_pct, Table};
use crate::scale::ExperimentScale;

/// Zipf coefficients evaluated (the paper sweeps 0.0 to 2.0).
pub const ZIPF_COEFFICIENTS: [f64; 5] = [0.0, 0.5, 1.0, 1.5, 2.0];

/// Runs the lookup-skew experiment; returns the Figure 16 timing table and
/// the Table 7 counter comparison (RX vs. B+).
pub fn run(scale: &ExperimentScale) -> Vec<Table> {
    let device = crate::scaled_device(scale);
    let keys = wl::dense_shuffled(scale.default_keys(), scale.seed);
    let values = wl::value_column(keys.len(), scale.seed + 7);
    let indexes = build_all_indexes(&device, &keys, Some(&values), RtIndexConfig::default());

    let mut timing = Table::new(
        "Figure 16: Zipf-skewed point lookups, cumulative lookup time [ms] (unsorted)",
        &["zipf coefficient", "HT", "B+", "SA", "RX"],
    );
    let mut counters = Table::new(
        "Table 7: cache hit rate, memory read and instructions under skew (RX vs. B+)",
        &[
            "zipf",
            "RX cache hit [%]",
            "B+ cache hit [%]",
            "RX mem read [MiB]",
            "B+ mem read [MiB]",
            "RX instructions",
            "B+ instructions",
        ],
    );

    for theta in ZIPF_COEFFICIENTS {
        let lookups = wl::point_lookups_zipf(
            &keys,
            scale.default_lookups(),
            theta,
            scale.seed + (theta * 10.0) as u64,
        );
        let mut row = vec![format!("{theta}")];
        let mut rx_kernel = None;
        let mut bp_kernel = None;
        for name in ["HT", "B+", "SA", "RX"] {
            let cell = indexes
                .iter()
                .find(|ix| ix.name() == name)
                .map(|ix| {
                    let m = measure_points(ix.as_ref(), &lookups, true);
                    if name == "RX" {
                        rx_kernel = Some(m.kernel);
                    }
                    if name == "B+" {
                        bp_kernel = Some(m.kernel);
                    }
                    fmt_ms(m.sim_ms)
                })
                .unwrap_or_else(|| "N/A".to_string());
            row.push(cell);
        }
        timing.push_row(row);

        if let (Some(rx), Some(bp)) = (rx_kernel, bp_kernel) {
            let mib = |b: u64| format!("{:.2}", b as f64 / (1 << 20) as f64);
            counters.push_row(vec![
                format!("{theta}"),
                fmt_pct(rx.cache_hit_rate()),
                fmt_pct(bp.cache_hit_rate()),
                mib(rx.dram_bytes_read),
                mib(bp.dram_bytes_read),
                rx.instructions.to_string(),
                bp.instructions.to_string(),
            ]);
        }
    }
    vec![timing, counters]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_reduces_rx_memory_traffic_and_time() {
        // The scaled device keeps the working-set/L2 ratio of the paper at
        // test size; with the full 72 MiB L2 the tiny index would be fully
        // cache resident and skew could not show any effect.
        let device = crate::scaled_device(&ExperimentScale::tiny());
        let keys = wl::dense_shuffled(1 << 14, 1);
        let index = rtindex_core::RtIndex::build(&device, &keys, RtIndexConfig::default()).unwrap();
        let uniform = wl::point_lookups_zipf(&keys, 1 << 14, 0.0, 2);
        let skewed = wl::point_lookups_zipf(&keys, 1 << 14, 1.5, 2);
        let out_uniform = index.point_lookup_batch(&uniform, None).unwrap();
        let out_skewed = index.point_lookup_batch(&skewed, None).unwrap();
        assert!(
            out_skewed.metrics.kernel.dram_bytes_read < out_uniform.metrics.kernel.dram_bytes_read,
            "skewed lookups must read less DRAM"
        );
        assert!(out_skewed.metrics.simulated_time_s <= out_uniform.metrics.simulated_time_s);
        assert!(
            out_skewed.metrics.kernel.cache_hit_rate()
                > out_uniform.metrics.kernel.cache_hit_rate()
        );
    }

    #[test]
    fn rx_executes_far_fewer_instructions_than_bplus() {
        // The Table 7 observation: 390M vs 22B instructions (~56x) on the
        // real hardware; the exact factor differs here but the gap must be
        // large because the BVH traversal is fixed-function.
        let device = crate::default_device();
        let keys = wl::dense_shuffled(1 << 13, 1);
        let lookups = wl::point_lookups(&keys, 1 << 13, 2);
        let indexes = build_all_indexes(&device, &keys, None, RtIndexConfig::default());
        let instructions = |name: &str| {
            measure_points(
                crate::indexes::find_index(&indexes, name).unwrap(),
                &lookups,
                false,
            )
            .kernel
            .instructions
        };
        let rx = instructions("RX");
        let bp = instructions("B+");
        assert!(
            bp > rx * 2,
            "B+ must execute several times more instructions (B+ {bp}, RX {rx})"
        );
    }

    #[test]
    fn smoke_produces_both_tables() {
        let tables = run(&ExperimentScale::tiny());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), ZIPF_COEFFICIENTS.len());
        assert_eq!(tables[1].rows.len(), ZIPF_COEFFICIENTS.len());
    }
}
