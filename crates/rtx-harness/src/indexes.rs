//! Uniform driver over RX, the three baselines and the dynamic index.
//!
//! Experiments compare the index structures on identical workloads. Since
//! the API redesign they no longer go through a hand-written enum: every
//! backend is built by name from the [`rtx_query::Registry`] and driven
//! exclusively through [`SecondaryIndex`] trait objects; lookups are
//! submitted as [`QueryBatch`]es and their [`QueryOutcome`]s convert into
//! the common [`Measurement`] record carrying the simulated device time and
//! the hardware counters the paper's analysis uses.

use gpu_device::{Device, KernelStats};
use rtindex_core::{register_rx, RtIndexConfig};
use rtx_delta::{register_dynamic, DynamicRtConfig};
use rtx_query::{IndexSpec, QueryBatch, QueryOutcome, Registry, SecondaryIndex};

/// The four static backends of the paper's evaluation, in its presentation
/// order. [`build_all_indexes`] builds exactly these.
pub const PAPER_BACKENDS: [&str; 4] = ["HT", "B+", "SA", "RX"];

/// The dynamic delta-buffered backend added on top of the paper.
pub const DYNAMIC_BACKEND: &str = "RXD";

/// The full registry of every backend this reproduction implements, with
/// the RX side (static base and dynamic wrapper) built under `rx_config`:
/// `"HT"`, `"B+"`, `"SA"`, `"RX"` and the updatable `"RXD"` — plus the
/// sharding layer, so sharded variants of any of them build by name
/// (`"RX@8"`, `"SA@4:range"`, updatable `"RXD@2"`), and the durability
/// layer, so a trailing `"+wal:<path>"` builds (or reopens) a WAL-backed
/// persistent index (`"RXD+wal:/data/ix"`, `"RXD:sah@4:hash+wal:/data/ix"`).
pub fn registry_with(rx_config: RtIndexConfig) -> Registry {
    let mut registry = Registry::new();
    gpu_baselines::register_baselines(&mut registry);
    register_rx(&mut registry, rx_config);
    register_dynamic(&mut registry, DynamicRtConfig::default().with_rx(rx_config));
    rtx_shard::install_sharding(&mut registry);
    rtx_durable::install_durability(&mut registry);
    registry
}

/// [`registry_with`] under the paper's selected RX configuration.
pub fn registry() -> Registry {
    registry_with(RtIndexConfig::default())
}

/// Builds the paper's four static indexes over the same column pair,
/// skipping backends that cannot serve the key set (the B+-tree on
/// duplicate or 64-bit keys), exactly as the paper omits them from those
/// experiments.
pub fn build_all_indexes(
    device: &Device,
    keys: &[u64],
    values: Option<&[u64]>,
    rx_config: RtIndexConfig,
) -> Vec<Box<dyn SecondaryIndex>> {
    let spec = IndexSpec {
        device,
        keys,
        // One shared copy of the column serves every backend built below.
        values: values.map(std::sync::Arc::from),
        builder: None,
        durability: None,
        key_schema: None,
        rows: None,
    };
    registry_with(rx_config)
        .build_named(&PAPER_BACKENDS, &spec)
        .expect("paper backends build")
}

/// Looks a backend up by name in a built index set.
pub fn find_index<'a>(
    indexes: &'a [Box<dyn SecondaryIndex>],
    name: &str,
) -> Option<&'a dyn SecondaryIndex> {
    indexes
        .iter()
        .find(|ix| ix.name() == name)
        .map(|ix| ix.as_ref())
}

/// One measured lookup batch (or build phase) of one index.
#[derive(Debug, Clone, Default)]
pub struct Measurement {
    /// Index name ("RX", "HT", "B+", "SA", "RXD").
    pub index: String,
    /// Simulated device time in milliseconds.
    pub sim_ms: f64,
    /// Host wall-clock milliseconds of the software execution (not
    /// comparable to the paper; reported for transparency).
    pub host_ms: f64,
    /// Number of lookups that found at least one qualifying row.
    pub hits: usize,
    /// Total value sum over the batch (checksum against the ground truth).
    pub value_sum: u64,
    /// Merged kernel counters.
    pub kernel: KernelStats,
}

impl Measurement {
    /// Converts a batch outcome into the measurement record.
    pub fn from_outcome(index: &dyn SecondaryIndex, outcome: &QueryOutcome) -> Self {
        Measurement {
            index: index.name().to_string(),
            sim_ms: outcome.sim_ms(),
            host_ms: outcome.host_ms(),
            hits: outcome.hit_count(),
            value_sum: outcome.total_value_sum(),
            kernel: outcome.metrics.kernel,
        }
    }

    /// Lookup throughput in operations per second for a batch of `lookups`.
    pub fn throughput(&self, lookups: usize) -> f64 {
        if self.sim_ms <= 0.0 {
            return 0.0;
        }
        lookups as f64 / (self.sim_ms / 1e3)
    }
}

/// Executes a batch and converts the outcome into a [`Measurement`].
///
/// Panics on execution errors: harness workloads are validated, so any
/// failure is a bug in the experiment, not a recoverable condition.
pub fn measure(index: &dyn SecondaryIndex, batch: &QueryBatch) -> Measurement {
    let outcome = index.execute(batch).expect("validated workload");
    Measurement::from_outcome(index, &outcome)
}

/// Measures a batch of point lookups, optionally fetching values.
pub fn measure_points(index: &dyn SecondaryIndex, queries: &[u64], fetch: bool) -> Measurement {
    measure(index, &QueryBatch::of_points(queries).fetch_values(fetch))
}

/// Measures a batch of inclusive range lookups, or `None` when the backend
/// does not support ranges (HT).
pub fn measure_ranges(
    index: &dyn SecondaryIndex,
    ranges: &[(u64, u64)],
    fetch: bool,
) -> Option<Measurement> {
    if !index.capabilities().range_lookups {
        return None;
    }
    Some(measure(
        index,
        &QueryBatch::of_ranges(ranges).fetch_values(fetch),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_workloads::{dense_shuffled, point_lookups, range_lookups, value_column, GroundTruth};

    #[test]
    fn all_indexes_agree_with_ground_truth_on_points() {
        let device = crate::default_device();
        let keys = dense_shuffled(2048, 1);
        let values = value_column(2048, 2);
        let queries = point_lookups(&keys, 4096, 3);
        let truth = GroundTruth::new(&keys, Some(&values));
        let expected_sum = truth.batch_point_sum(&queries);
        let expected_hits = truth.batch_point_hits(&queries);

        let indexes = build_all_indexes(&device, &keys, Some(&values), RtIndexConfig::default());
        assert_eq!(
            indexes.len(),
            4,
            "unique 32-bit keys allow all four indexes"
        );
        for ix in &indexes {
            let m = measure_points(ix.as_ref(), &queries, true);
            assert_eq!(m.hits, expected_hits, "{} hit count", ix.name());
            assert_eq!(m.value_sum, expected_sum, "{} value sum", ix.name());
            assert!(m.sim_ms > 0.0, "{} must report simulated time", ix.name());
            assert!(m.kernel.threads_launched >= 4096);
        }
    }

    #[test]
    fn all_order_based_indexes_agree_on_ranges() {
        let device = crate::default_device();
        let keys = dense_shuffled(2048, 1);
        let values = value_column(2048, 2);
        let ranges = range_lookups(2048, 512, 16, 4);
        let truth = GroundTruth::new(&keys, Some(&values));
        let expected_sum = truth.batch_range_sum(&ranges);

        let indexes = build_all_indexes(&device, &keys, Some(&values), RtIndexConfig::default());
        let mut range_capable = 0;
        for ix in &indexes {
            match measure_ranges(ix.as_ref(), &ranges, true) {
                Some(m) => {
                    range_capable += 1;
                    assert_eq!(m.value_sum, expected_sum, "{} range sum", ix.name());
                }
                None => assert_eq!(ix.name(), "HT", "only HT lacks range support"),
            }
        }
        assert_eq!(range_capable, 3);
    }

    #[test]
    fn bplus_is_skipped_for_unsupported_key_sets() {
        let device = crate::default_device();
        let keys_with_dup = vec![1u64, 2, 2, 3];
        let indexes = build_all_indexes(&device, &keys_with_dup, None, RtIndexConfig::default());
        assert_eq!(indexes.len(), 3);
        assert!(find_index(&indexes, "B+").is_none());

        let keys_64bit = vec![1u64, 1 << 40];
        let indexes = build_all_indexes(&device, &keys_64bit, None, RtIndexConfig::default());
        assert!(indexes.iter().all(|ix| ix.name() != "B+"));
    }

    #[test]
    fn metadata_accessors() {
        let device = crate::default_device();
        let keys = dense_shuffled(1024, 1);
        let indexes = build_all_indexes(&device, &keys, None, RtIndexConfig::default());
        for ix in &indexes {
            assert!(ix.memory_bytes() > 0, "{}", ix.name());
            assert!(ix.build_metrics().sim_ms() > 0.0, "{}", ix.name());
            assert_eq!(
                ix.capabilities().range_lookups,
                ix.name() != "HT",
                "{}",
                ix.name()
            );
        }
        let m = measure_points(indexes[0].as_ref(), &[keys[0]], false);
        assert!(m.throughput(1) > 0.0);
    }

    #[test]
    fn registry_serves_all_five_backends_and_one_mixed_batch() {
        let device = crate::default_device();
        let keys = dense_shuffled(512, 5);
        let values = value_column(512, 6);
        let truth = GroundTruth::new(&keys, Some(&values));
        let registry = registry();
        assert_eq!(registry.backends(), vec!["B+", "HT", "RX", "RXD", "SA"]);
        assert_eq!(registry.updatable_backends(), vec!["RXD"]);

        // A single mixed batch (points + ranges + value fetch) answers
        // identically on every range-capable backend.
        let batch = QueryBatch::new()
            .points(point_lookups(&keys, 64, 7))
            .ranges(range_lookups(512, 16, 8, 8))
            .fetch_values(true);
        let expected = truth.expected_batch(&batch);
        let spec = IndexSpec::with_values(&device, &keys, &values);
        for name in registry.backends() {
            let ix = registry.build(name, &spec).unwrap();
            if !ix.capabilities().range_lookups {
                continue;
            }
            let out = ix.execute(&batch).expect("mixed batch");
            assert_eq!(out.results, expected, "{name} mixed batch");
        }
    }
}
