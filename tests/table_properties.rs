//! Property-based tests of the multi-index table layer: random CDC streams
//! and mixed queries against the [`TableOracle`], including a capped stub
//! backend that starts rejecting rebuilds mid-stream to exercise the
//! all-or-nothing rollback path.

use std::sync::Arc;

use proptest::prelude::*;
use rtindex::gpu_baselines::{register_baselines, GpuIndexAdapter, WarpHashTable};
use rtindex::rtindex_core::register_rx;
use rtindex::rtx_delta::register_dynamic;
use rtindex::{
    Device, DynamicRtConfig, IndexError, IngestBatch, IngestOp, Registry, RtIndexConfig,
    SecondaryIndex, Table, TableQuery, TableSchema,
};
use rtx_workloads::TableOracle;

/// The registry every table here builds from: the baselines, RX and RXD.
fn registry() -> Registry {
    let mut registry = Registry::new();
    register_baselines(&mut registry);
    register_rx(&mut registry, RtIndexConfig::default());
    register_dynamic(
        &mut registry,
        DynamicRtConfig::default().with_rx(RtIndexConfig::default()),
    );
    registry
}

/// Registers `"CAP"`: a hash-table stub that refuses to (re)build over more
/// than `cap` keys, turning table growth into a mid-stream rejection.
fn register_capped(registry: &mut Registry, cap: usize) {
    registry.register("CAP", move |spec| {
        if spec.keys.len() > cap {
            return Err(IndexError::UnsupportedKeySet {
                backend: "CAP".into(),
                reason: format!(
                    "{} keys exceed the stub's capacity of {cap}",
                    spec.keys.len()
                ),
            });
        }
        let inner = WarpHashTable::build(spec.device, spec.keys)?;
        Ok(Box::new(GpuIndexAdapter::new(inner, spec)) as Box<dyn SecondaryIndex>)
    });
}

/// The three-index schema used throughout: points land on the hash
/// backends, `ts` ranges on RX.
fn schema() -> TableSchema {
    TableSchema::new(["id", "ts", "amount"])
        .with_value_column("amount")
        .with_index("id_ht", "id", "HT")
        .with_index("ts_rx", "ts", "RX")
        .with_index("id_rxd", "id", "RXD")
}

/// Decodes a generated `(kind, key, ts, amount)` tuple into a CDC op.
fn decode_op(op: &(u8, u64, u64, u64)) -> IngestOp {
    let &(kind, key, ts, amount) = op;
    match kind % 3 {
        0 => IngestOp::Insert(vec![key, ts, amount]),
        1 => IngestOp::Delete(key),
        _ => IngestOp::Upsert(vec![key, ts, amount]),
    }
}

fn decode_batch(ops: &[(u8, u64, u64, u64)]) -> IngestBatch {
    ops.iter()
        .fold(IngestBatch::new(), |batch, op| batch.push(decode_op(op)))
}

/// Builds the mixed point + range queries for one generated tuple.
fn decode_query(&(pk, rlo, rw): &(u64, u64, u64)) -> TableQuery {
    TableQuery::new()
        .point("id", pk)
        .range("ts", rlo, rlo + rw)
        .fetch_values(true)
}

/// Asserts the table answers `query` exactly as the oracle does.
fn assert_oracle_exact(table: &Table, oracle: &TableOracle, query: &TableQuery) {
    let out = table.query(query).expect("planned query");
    let expected = oracle.expected_query(table.schema(), query);
    assert_eq!(out.results.len(), expected.len());
    for (i, (got, want)) in out.results.iter().zip(&expected).enumerate() {
        assert_eq!(got.first_row, want.first_row, "predicate {i}");
        assert_eq!(got.hit_count, want.hit_count, "predicate {i}");
        assert_eq!(got.value_sum, want.value_sum, "predicate {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random CDC streams keep a three-index table oracle-exact: after every
    /// batch, mixed point + range queries answer exactly what a scan of the
    /// oracle's live rows answers, and the `ts` range routes to RX.
    #[test]
    fn prop_cdc_stream_stays_oracle_exact(
        records in prop::collection::vec((0u64..64, 0u64..256, 0u64..100), 0..32),
        batches in prop::collection::vec(
            prop::collection::vec((0u8..3, 0u64..64, 0u64..256, 0u64..100), 1..8),
            1..5,
        ),
        queries in prop::collection::vec((0u64..80, 0u64..300, 0u64..48), 1..4),
    ) {
        let device = Device::default_eval();
        let records: Vec<Vec<u64>> =
            records.iter().map(|&(k, t, a)| vec![k, t, a]).collect();
        let mut table =
            Table::load(schema(), &device, Arc::new(registry()), &records).expect("load");
        let mut oracle = TableOracle::load(3, &records);

        for ops in &batches {
            let batch = decode_batch(ops);
            table.ingest(&batch).expect("cdc batch");
            oracle.apply_batch(&batch);
            prop_assert_eq!(table.row_count(), oracle.row_count());
            for q in &queries {
                let query = decode_query(q);
                assert_oracle_exact(&table, &oracle, &query);
                let plan = table.explain(&query).expect("explain");
                prop_assert_eq!(plan.routed_index(1), Some("ts_rx"));
            }
        }
    }

    /// With a capped stub as a fourth index, batches that grow the table past
    /// the cap are rejected mid-stream — and every rejection rolls the row
    /// store and all four indexes back to a state that still answers
    /// oracle-exactly.
    #[test]
    fn prop_rejected_batches_roll_back_atomically(
        records in prop::collection::vec((0u64..48, 0u64..256, 0u64..100), 0..12),
        batches in prop::collection::vec(
            prop::collection::vec((0u8..3, 0u64..48, 0u64..256, 0u64..100), 1..10),
            2..6,
        ),
        queries in prop::collection::vec((0u64..64, 0u64..300, 0u64..48), 1..3),
    ) {
        let device = Device::default_eval();
        let mut registry = registry();
        register_capped(&mut registry, 16);
        let schema = schema().with_index("id_cap", "id", "CAP");
        let records: Vec<Vec<u64>> = records
            .iter()
            .map(|&(k, t, a)| vec![k, t, a])
            .take(16) // the initial build itself must fit under the cap
            .collect();
        let mut table =
            Table::load(schema, &device, Arc::new(registry), &records).expect("load");
        let mut oracle = TableOracle::load(3, &records);

        for ops in &batches {
            let batch = decode_batch(ops);
            let before = table.row_count();
            match table.ingest(&batch) {
                // Accepted: the oracle follows.
                Ok(_) => oracle.apply_batch(&batch),
                // Rejected: the table must be exactly where it was.
                Err(err) => {
                    prop_assert!(err.to_string().contains("capacity"), "{}", err);
                    prop_assert_eq!(table.row_count(), before);
                }
            }
            prop_assert_eq!(table.row_count(), oracle.row_count());
            for q in &queries {
                assert_oracle_exact(&table, &oracle, &decode_query(q));
            }
        }
    }
}

/// Deterministic companion: a stream that *must* cross the cap mid-way is
/// rejected exactly at the boundary, the rollback restores the pre-batch
/// answers, and a shrinking batch is accepted again afterwards.
#[test]
fn capped_stub_rejects_mid_stream_then_recovers() {
    let device = Device::default_eval();
    let mut registry = registry();
    register_capped(&mut registry, 12);
    let schema = schema().with_index("id_cap", "id", "CAP");
    let records: Vec<Vec<u64>> = (0..10u64).map(|k| vec![k, k * 2, k * 3]).collect();
    let mut table = Table::load(schema, &device, Arc::new(registry), &records).expect("load");
    let mut oracle = TableOracle::load(3, &records);

    // Batch 1 (10 -> 12 rows) fits exactly; batch 2 (12 -> 14) must reject.
    let growing = |base: u64| {
        IngestBatch::new()
            .insert(vec![base, base, base])
            .insert(vec![base + 1, base + 1, base + 1])
    };
    table.ingest(&growing(100)).expect("fits under the cap");
    oracle.apply_batch(&growing(100));

    let err = table.ingest(&growing(200)).expect_err("over the cap");
    assert!(err.to_string().contains("capacity"), "{err}");
    assert_eq!(table.row_count(), oracle.row_count());
    assert_eq!(table.stats().rolled_back_batches, 1);

    // The rolled-back rows are invisible everywhere, including the value sum.
    let probe = TableQuery::new()
        .point("id", 200)
        .range("ts", 0, 512)
        .fetch_values(true);
    let out = table.query(&probe).expect("post-rollback query");
    let expected = oracle.expected_query(table.schema(), &probe);
    assert!(!out.results[0].is_hit(), "rolled-back insert must be gone");
    assert_eq!(out.results[1].hit_count, expected[1].hit_count);
    assert_eq!(out.results[1].value_sum, expected[1].value_sum);

    // Shrink below the cap and the table accepts writes again.
    let shrink = IngestBatch::new()
        .delete(0)
        .delete(1)
        .insert(vec![300, 300, 300]);
    table.ingest(&shrink).expect("fits again after the deletes");
    oracle.apply_batch(&shrink);
    assert_eq!(table.row_count(), oracle.row_count());
    let out = table.query(&probe).expect("recovered query");
    assert_eq!(
        out.results[1].hit_count,
        oracle.expected_query(table.schema(), &probe)[1].hit_count
    );
}

/// Decodes a generated `(kind, region, lo, width)` tuple into one composite
/// query form: a full-tuple point, a pure prefix, or a prefix range.
fn decode_composite_query(&(kind, region, lo, width): &(u8, u64, u64, u64)) -> TableQuery {
    let query = TableQuery::new().fetch_values(true);
    match kind % 3 {
        0 => query.prefix_tuple(["region", "ts"], vec![region, lo]),
        1 => query.prefix_tuple(["region"], vec![region]),
        _ => query.prefix_range(["region", "ts"], vec![region], lo, lo + width),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random CDC streams keep a table with *composite* `(region, ts)`
    /// indexes oracle-exact across every composite query form, and no
    /// composite predicate ever falls back to a scan (both composite
    /// indexes lead on `region`).
    #[test]
    fn prop_composite_indexes_stay_oracle_exact_through_cdc(
        records in prop::collection::vec((0u64..48, 0u64..8, 0u64..256, 0u64..100), 0..24),
        batches in prop::collection::vec(
            prop::collection::vec(((0u8..3, 0u64..48), (0u64..8, 0u64..256, 0u64..100)), 1..8),
            1..4,
        ),
        queries in prop::collection::vec((0u8..3, 0u64..10, 0u64..300, 0u64..64), 1..4),
    ) {
        let device = Device::default_eval();
        let schema = TableSchema::new(["id", "region", "ts", "amount"])
            .with_value_column("amount")
            .with_index("id_ht", "id", "HT")
            .with_composite_index("rt_rx", ["region", "ts"], "RX{u32,u32}")
            .with_composite_index("rt_sa", ["region", "ts"], "SA");
        let records: Vec<Vec<u64>> =
            records.iter().map(|&(k, r, t, a)| vec![k, r, t, a]).collect();
        let mut table =
            Table::load(schema, &device, Arc::new(registry()), &records).expect("load");
        let mut oracle = TableOracle::load(4, &records);

        for ops in &batches {
            let batch = ops.iter().fold(IngestBatch::new(), |b, &((kind, k), (r, t, a))| {
                b.push(match kind % 3 {
                    0 => IngestOp::Insert(vec![k, r, t, a]),
                    1 => IngestOp::Delete(k),
                    _ => IngestOp::Upsert(vec![k, r, t, a]),
                })
            });
            table.ingest(&batch).expect("cdc batch");
            oracle.apply_batch(&batch);
            prop_assert_eq!(table.row_count(), oracle.row_count());
            for q in &queries {
                let query = decode_composite_query(q);
                assert_oracle_exact(&table, &oracle, &query);
                let plan = table.explain(&query).expect("explain");
                prop_assert_eq!(plan.scan_fallbacks(), 0, "{}", &plan);
            }
        }
    }
}
