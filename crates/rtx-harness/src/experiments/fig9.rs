//! Figure 9: range lookups under varying key decompositions.
//!
//! The more bits the x axis receives, the fewer rays a range lookup needs
//! (wide ranges stay within one "row"), so x-heavy decompositions win.

use rtindex_core::{Decomposition, KeyMode, RtIndex, RtIndexConfig};
use rtx_workloads as wl;

use crate::report::{fmt_ms, Table};
use crate::scale::ExperimentScale;

/// Builds the figure-9 sweep scaled down to `total_bits` key bits: from an
/// x-starved split to an x-rich split (all remaining bits on y).
pub fn scaled_sweep(total_bits: u32) -> Vec<Decomposition> {
    (3..=9)
        .rev()
        .filter_map(|deficit| {
            let x = total_bits.checked_sub(deficit)?.min(23);
            if x == 0 {
                return None;
            }
            Some(Decomposition::new(x, total_bits - x, 0))
        })
        .collect()
}

/// Runs the range-lookup decomposition sweep for two range widths.
pub fn run(scale: &ExperimentScale) -> Vec<Table> {
    let device = crate::scaled_device(scale);
    let n = scale.default_keys();
    let keys = wl::dense_shuffled(n, scale.seed);
    let lookup_count = (scale.default_lookups() / 16).max(16);
    // Two range widths, scaled from the paper's 256 / 1024 hits.
    let wide = (n as u64 / 64).max(4);
    let wider = (n as u64 / 16).max(8);

    let mut table = Table::new(
        "Figure 9: range lookups under varying key decompositions, lookup time [ms]",
        &[
            "decomposition [x+y+z]",
            &format!("{wide} hits per ray"),
            &format!("{wider} hits per ray"),
        ],
    );
    for decomposition in scaled_sweep(scale.keys_exp) {
        let mut row = vec![decomposition.label()];
        for qualifying in [wide, wider] {
            let ranges =
                wl::range_lookups(n as u64, lookup_count, qualifying, scale.seed + qualifying);
            let config = RtIndexConfig::default().with_key_mode(KeyMode::ThreeD(decomposition));
            let index = RtIndex::build(&device, &keys, config).expect("build");
            let out = index.range_lookup_batch(&ranges, None).expect("lookup");
            row.push(fmt_ms(out.metrics.simulated_time_s * 1e3));
        }
        table.push_row(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x_rich_decompositions_need_fewer_rays_for_ranges() {
        let device = crate::default_device();
        let bits = 12u32;
        let n = 1usize << bits;
        let keys = wl::dense_shuffled(n, 1);
        let ranges = wl::range_lookups(n as u64, 256, 64, 2);
        let measure = |d: Decomposition| {
            let config = RtIndexConfig::default().with_key_mode(KeyMode::ThreeD(d));
            let index = RtIndex::build(&device, &keys, config).expect("build");
            let out = index.range_lookup_batch(&ranges, None).expect("lookup");
            assert!(out.results.iter().all(|r| r.hit_count == 64));
            (
                out.metrics.simulated_time_s,
                out.metrics.traversal.nodes_visited,
            )
        };
        let (_, nodes_x_rich) = measure(Decomposition::new(9, 3, 0));
        let (_, nodes_x_poor) = measure(Decomposition::new(3, 9, 0));
        assert!(
            nodes_x_poor > nodes_x_rich,
            "x-starved splits must traverse more ({nodes_x_poor} vs {nodes_x_rich})"
        );
    }

    #[test]
    fn smoke_table_shape() {
        let tables = run(&ExperimentScale::tiny());
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].headers.len(), 3);
        assert!(!tables[0].rows.is_empty());
    }
}
