//! Table vocabulary: multi-column schemas, CDC ingest batches,
//! multi-predicate queries and planner explain output.
//!
//! A *table* owns one row store (one `u64` column per named column, dense
//! rowIDs) plus any number of named secondary indexes, each built over one
//! column from a backend spec in the full registry
//! [name grammar](crate::registry) — `"HT"`, `"RX:sah@4:hash"` and
//! `"RXD+wal:<path>"` are all valid per-column specs. This module holds
//! only the *vocabulary* shared by every layer (workloads generate
//! [`IngestBatch`]es, the service surfaces [`ExplainPlan`]s); the table
//! mechanics — row store, index fan-out, rollback, the planner itself —
//! live in the `rtx-table` crate, which cannot host the types because
//! `rtx-workloads` must not depend on it.
//!
//! Row identity follows the global-rowID scheme of the dynamic backends:
//! an initial bulk load of `n` records occupies rowIDs `0..n`, every
//! subsequent insert takes the next fresh rowID, and deletes leave holes
//! (no implicit renumbering). Deletes and upserts key on the table's
//! *primary column* — always the first column of the schema.

use crate::batch::QueryOp;
use crate::error::IndexError;

/// One named secondary index of a table: an index `name`, the schema
/// `column` it keys on, and the backend `spec` string it is built from
/// (full [registry grammar](crate::registry)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Unique index name within the table (used by plans and reports).
    pub name: String,
    /// The schema column the index keys on.
    pub column: String,
    /// Backend spec in the registry name grammar (`"HT"`,
    /// `"RX:sah@4:hash"`, `"RXD+wal:/data/ix"`, …).
    pub spec: String,
}

/// The shape of a table: named `u64` columns, an optional designated value
/// column, and any number of named indexes.
///
/// The first column is the *primary* column: [`IngestOp::Delete`] and
/// [`IngestOp::Upsert`] key on it. Several indexes may share a column
/// (e.g. an `"HT"` and an `"RX"` over the same column, letting the
/// planner pick per predicate), and columns may have no index at all
/// (predicates on them fall back to a row-store scan).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Column names, in record order; `columns[0]` is the primary column.
    pub columns: Vec<String>,
    /// The column whose values every index serves for value-fetching
    /// queries; `None` builds keys-only indexes.
    pub value_column: Option<String>,
    /// The table's indexes.
    pub indexes: Vec<IndexDef>,
}

impl TableSchema {
    /// A schema over the named columns with no value column and no
    /// indexes yet.
    pub fn new<I, S>(columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TableSchema {
            columns: columns.into_iter().map(Into::into).collect(),
            value_column: None,
            indexes: Vec::new(),
        }
    }

    /// Designates the column whose values indexes serve to value-fetching
    /// queries.
    pub fn with_value_column(mut self, column: impl Into<String>) -> Self {
        self.value_column = Some(column.into());
        self
    }

    /// Adds a named index over `column` built from `spec`.
    pub fn with_index(
        mut self,
        name: impl Into<String>,
        column: impl Into<String>,
        spec: impl Into<String>,
    ) -> Self {
        self.indexes.push(IndexDef {
            name: name.into(),
            column: column.into(),
            spec: spec.into(),
        });
        self
    }

    /// The primary column's name (the delete/upsert key).
    pub fn primary_column(&self) -> &str {
        &self.columns[0]
    }

    /// Position of `column` in a record, or `None` for unknown names.
    pub fn column_position(&self, column: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == column)
    }

    /// The indexes keyed on `column`, in definition order.
    pub fn indexes_on<'a>(&'a self, column: &'a str) -> impl Iterator<Item = &'a IndexDef> {
        self.indexes.iter().filter(move |ix| ix.column == column)
    }

    /// Checks structural consistency: at least one column, unique
    /// non-empty column and index names, and every referenced column
    /// (index targets, the value column) declared.
    pub fn validate(&self) -> Result<(), IndexError> {
        let fail = |message: String| {
            Err(IndexError::Backend {
                backend: "table".to_string().into(),
                message,
            })
        };
        if self.columns.is_empty() {
            return fail("a table needs at least one column".to_string());
        }
        for (i, column) in self.columns.iter().enumerate() {
            if column.is_empty() {
                return fail("column names must be non-empty".to_string());
            }
            if self.columns[..i].contains(column) {
                return fail(format!("duplicate column name {column:?}"));
            }
        }
        if let Some(value) = &self.value_column {
            if self.column_position(value).is_none() {
                return fail(format!("value column {value:?} is not a schema column"));
            }
        }
        for (i, ix) in self.indexes.iter().enumerate() {
            if ix.name.is_empty() {
                return fail("index names must be non-empty".to_string());
            }
            if self.indexes[..i].iter().any(|other| other.name == ix.name) {
                return fail(format!("duplicate index name {:?}", ix.name));
            }
            if self.column_position(&ix.column).is_none() {
                return fail(format!(
                    "index {:?} keys on unknown column {:?}",
                    ix.name, ix.column
                ));
            }
            if ix.spec.is_empty() {
                return fail(format!("index {:?} has an empty backend spec", ix.name));
            }
        }
        Ok(())
    }
}

/// One CDC record: a `u64` per schema column, in schema order.
pub type Record = Vec<u64>;

/// One change-data-capture operation of an [`IngestBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestOp {
    /// Append a fresh record (takes the next rowID).
    Insert(Record),
    /// Delete every live record whose *primary* column holds the key.
    Delete(u64),
    /// Delete every record with the record's primary key, then insert the
    /// record fresh.
    Upsert(Record),
}

impl IngestOp {
    /// The record's primary-column key (`record[0]`), or the delete key.
    pub fn primary_key(&self) -> u64 {
        match self {
            IngestOp::Insert(record) | IngestOp::Upsert(record) => record[0],
            IngestOp::Delete(key) => *key,
        }
    }

    /// Short display name of the operation kind.
    pub fn kind(&self) -> &'static str {
        match self {
            IngestOp::Insert(_) => "insert",
            IngestOp::Delete(_) => "delete",
            IngestOp::Upsert(_) => "upsert",
        }
    }
}

/// An ordered batch of CDC operations, applied to a table and fanned out
/// to every index atomically: either the whole batch lands or none of it
/// does.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestBatch {
    ops: Vec<IngestOp>,
}

impl IngestBatch {
    /// An empty batch.
    pub fn new() -> Self {
        IngestBatch::default()
    }

    /// Appends an insert of `record`.
    pub fn insert(mut self, record: Record) -> Self {
        self.ops.push(IngestOp::Insert(record));
        self
    }

    /// Appends a delete of every record whose primary key is `key`.
    pub fn delete(mut self, key: u64) -> Self {
        self.ops.push(IngestOp::Delete(key));
        self
    }

    /// Appends an upsert of `record` (keyed on its primary column).
    pub fn upsert(mut self, record: Record) -> Self {
        self.ops.push(IngestOp::Upsert(record));
        self
    }

    /// Appends an already-built operation.
    pub fn push(mut self, op: IngestOp) -> Self {
        self.ops.push(op);
        self
    }

    /// The operations in application order.
    pub fn ops(&self) -> &[IngestOp] {
        &self.ops
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// One predicate of a [`TableQuery`], over a named column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Rows whose column equals `key`.
    Point {
        /// The predicated column.
        column: String,
        /// The key to match.
        key: u64,
    },
    /// Rows whose column lies in `lower..=upper`.
    Range {
        /// The predicated column.
        column: String,
        /// Inclusive lower bound.
        lower: u64,
        /// Inclusive upper bound.
        upper: u64,
    },
    /// Rows whose column's high bits equal `prefix` — i.e. all keys `k`
    /// with `k >> low_bits == prefix`. Compiles to the contiguous range
    /// `[prefix << low_bits, (prefix << low_bits) + 2^low_bits - 1]`; a
    /// prefix too large for the key width matches nothing.
    Prefix {
        /// The predicated column.
        column: String,
        /// The fixed high bits.
        prefix: u64,
        /// Number of free low bits (0 makes this a point lookup).
        low_bits: u32,
    },
}

impl Predicate {
    /// The predicated column's name.
    pub fn column(&self) -> &str {
        match self {
            Predicate::Point { column, .. }
            | Predicate::Range { column, .. }
            | Predicate::Prefix { column, .. } => column,
        }
    }

    /// Compiles the predicate to the single-column [`QueryOp`] an index on
    /// its column executes. Prefixes with no free bits compile to points;
    /// a prefix that overflows the key width compiles to the canonical
    /// empty range `(1, 0)` (inverted ranges answer empty on every
    /// backend).
    pub fn as_op(&self) -> QueryOp {
        match *self {
            Predicate::Point { key, .. } => QueryOp::Point(key),
            Predicate::Range { lower, upper, .. } => QueryOp::Range(lower, upper),
            Predicate::Prefix {
                prefix, low_bits, ..
            } => {
                if low_bits == 0 {
                    return QueryOp::Point(prefix);
                }
                if low_bits >= 64 {
                    return if prefix == 0 {
                        QueryOp::Range(0, u64::MAX)
                    } else {
                        QueryOp::Range(1, 0)
                    };
                }
                match prefix.checked_shl(low_bits) {
                    Some(lower) if prefix >> (64 - low_bits) == 0 => {
                        QueryOp::Range(lower, lower | ((1u64 << low_bits) - 1))
                    }
                    _ => QueryOp::Range(1, 0),
                }
            }
        }
    }

    /// True when the compiled operation is a range lookup (and the serving
    /// index therefore needs [`Capabilities::range_lookups`]).
    ///
    /// [`Capabilities::range_lookups`]: crate::types::Capabilities
    pub fn needs_ranges(&self) -> bool {
        matches!(self.as_op(), QueryOp::Range(..))
    }

    /// The largest key the compiled operation touches (planner input:
    /// backends without [`Capabilities::full_64bit_keys`] cannot serve
    /// keys above `u32::MAX`).
    ///
    /// [`Capabilities::full_64bit_keys`]: crate::types::Capabilities
    pub fn max_key(&self) -> u64 {
        match self.as_op() {
            QueryOp::Point(key) => key,
            QueryOp::Range(lower, upper) => upper.max(lower),
        }
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Predicate::Point { column, key } => write!(f, "{column} = {key}"),
            Predicate::Range {
                column,
                lower,
                upper,
            } => write!(f, "{column} in [{lower}, {upper}]"),
            Predicate::Prefix {
                column,
                prefix,
                low_bits,
            } => write!(f, "{column} >> {low_bits} = {prefix}"),
        }
    }
}

/// A multi-predicate query over a table: each predicate is answered
/// independently (one [`LookupResult`] per predicate, `first_row` being
/// the smallest matching table rowID), optionally fetching value sums
/// from the schema's value column.
///
/// [`LookupResult`]: crate::types::LookupResult
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableQuery {
    predicates: Vec<Predicate>,
    fetch_values: bool,
}

impl TableQuery {
    /// An empty query.
    pub fn new() -> Self {
        TableQuery::default()
    }

    /// Adds a point predicate on `column`.
    pub fn point(mut self, column: impl Into<String>, key: u64) -> Self {
        self.predicates.push(Predicate::Point {
            column: column.into(),
            key,
        });
        self
    }

    /// Adds an inclusive range predicate on `column`.
    pub fn range(mut self, column: impl Into<String>, lower: u64, upper: u64) -> Self {
        self.predicates.push(Predicate::Range {
            column: column.into(),
            lower,
            upper,
        });
        self
    }

    /// Adds a high-bits prefix predicate on `column`.
    pub fn prefix(mut self, column: impl Into<String>, prefix: u64, low_bits: u32) -> Self {
        self.predicates.push(Predicate::Prefix {
            column: column.into(),
            prefix,
            low_bits,
        });
        self
    }

    /// Adds an already-built predicate.
    pub fn predicate(mut self, predicate: Predicate) -> Self {
        self.predicates.push(predicate);
        self
    }

    /// Requests (or clears) value-sum fetching from the value column.
    pub fn fetch_values(mut self, fetch: bool) -> Self {
        self.fetch_values = fetch;
        self
    }

    /// The predicates in submission order.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// True when the query holds no predicates.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Whether the query fetches value sums.
    pub fn fetches_values(&self) -> bool {
        self.fetch_values
    }
}

/// Where the planner routed one predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Route {
    /// Served by the named index.
    Index {
        /// The chosen index's name (from the schema).
        index: String,
        /// The backend spec the index was built from.
        spec: String,
    },
    /// No index qualified: served by a full row-store scan.
    Scan,
}

impl Route {
    /// The chosen index name, or `None` for a scan.
    pub fn index_name(&self) -> Option<&str> {
        match self {
            Route::Index { index, .. } => Some(index),
            Route::Scan => None,
        }
    }
}

/// One index the planner considered for a predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The index's name.
    pub index: String,
    /// The backend spec the index was built from.
    pub spec: String,
    /// Whether the index can serve the predicate at all.
    pub eligible: bool,
    /// Estimated cost of serving the predicate there (simulated seconds
    /// per operation, plus the memory tiebreak); infinite when ineligible.
    pub cost: f64,
    /// Why the index is (in)eligible or how its cost was derived.
    pub detail: String,
}

/// The planner's decision for one predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanChoice {
    /// The predicate being routed.
    pub predicate: Predicate,
    /// Every index on the predicate's column, scored.
    pub candidates: Vec<Candidate>,
    /// Where the predicate was routed.
    pub route: Route,
    /// One-line justification of the route.
    pub reason: String,
}

/// The planner's decisions for a whole [`TableQuery`], one
/// [`PlanChoice`] per predicate in submission order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExplainPlan {
    /// Per-predicate decisions.
    pub choices: Vec<PlanChoice>,
}

impl ExplainPlan {
    /// The index name predicate `i` was routed to, or `None` for a scan.
    pub fn routed_index(&self, i: usize) -> Option<&str> {
        self.choices[i].route.index_name()
    }

    /// Number of predicates that fell back to a row-store scan.
    pub fn scan_fallbacks(&self) -> usize {
        self.choices
            .iter()
            .filter(|c| c.route == Route::Scan)
            .count()
    }
}

impl std::fmt::Display for ExplainPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, choice) in self.choices.iter().enumerate() {
            let route = match &choice.route {
                Route::Index { index, spec } => format!("index {index} ({spec})"),
                Route::Scan => "row-store scan".to_string(),
            };
            writeln!(f, "#{i} {} -> {route}: {}", choice.predicate, choice.reason)?;
            for c in &choice.candidates {
                writeln!(
                    f,
                    "    {} ({}): {} — {}",
                    c.index,
                    c.spec,
                    if c.eligible {
                        format!("cost {:.3e}", c.cost)
                    } else {
                        "ineligible".to_string()
                    },
                    c.detail
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(["id", "ts", "val"])
            .with_value_column("val")
            .with_index("id_ht", "id", "HT")
            .with_index("ts_rx", "ts", "RX")
    }

    #[test]
    fn schema_validates_and_navigates() {
        let s = schema();
        s.validate().unwrap();
        assert_eq!(s.primary_column(), "id");
        assert_eq!(s.column_position("ts"), Some(1));
        assert_eq!(s.column_position("nope"), None);
        assert_eq!(s.indexes_on("id").count(), 1);
        assert_eq!(s.indexes_on("val").count(), 0);
    }

    #[test]
    fn schema_rejects_structural_mistakes() {
        let broken: Vec<TableSchema> = vec![
            TableSchema::new(Vec::<String>::new()),
            TableSchema::new(["a", "a"]),
            TableSchema::new(["a", ""]),
            TableSchema::new(["a"]).with_value_column("b"),
            TableSchema::new(["a"]).with_index("i", "b", "HT"),
            TableSchema::new(["a"])
                .with_index("i", "a", "HT")
                .with_index("i", "a", "RX"),
            TableSchema::new(["a"]).with_index("", "a", "HT"),
            TableSchema::new(["a"]).with_index("i", "a", ""),
        ];
        for s in broken {
            assert!(s.validate().is_err(), "accepted {s:?}");
        }
        // Two indexes on one column are fine — that is the planner's job.
        TableSchema::new(["a"])
            .with_index("fast", "a", "HT")
            .with_index("wide", "a", "RX")
            .validate()
            .unwrap();
    }

    #[test]
    fn ingest_batches_build_and_report() {
        let batch = IngestBatch::new()
            .insert(vec![1, 2, 3])
            .delete(1)
            .upsert(vec![4, 5, 6])
            .push(IngestOp::Delete(9));
        assert_eq!(batch.len(), 4);
        assert!(!batch.is_empty());
        assert_eq!(batch.ops()[0].primary_key(), 1);
        assert_eq!(batch.ops()[2].primary_key(), 4);
        assert_eq!(batch.ops()[3].kind(), "delete");
        assert!(IngestBatch::new().is_empty());
    }

    #[test]
    fn predicates_compile_to_query_ops() {
        let p = Predicate::Point {
            column: "id".into(),
            key: 7,
        };
        assert_eq!(p.as_op(), QueryOp::Point(7));
        assert!(!p.needs_ranges());
        assert_eq!(p.max_key(), 7);

        let r = Predicate::Range {
            column: "ts".into(),
            lower: 10,
            upper: 20,
        };
        assert_eq!(r.as_op(), QueryOp::Range(10, 20));
        assert!(r.needs_ranges());
        assert_eq!(r.max_key(), 20);
    }

    #[test]
    fn prefix_predicates_compile_to_contiguous_ranges() {
        let prefix = |prefix, low_bits| Predicate::Prefix {
            column: "k".into(),
            prefix,
            low_bits,
        };
        assert_eq!(prefix(5, 4).as_op(), QueryOp::Range(80, 95));
        assert_eq!(prefix(3, 0).as_op(), QueryOp::Point(3));
        assert_eq!(prefix(0, 64).as_op(), QueryOp::Range(0, u64::MAX));
        // Prefixes past the key width match nothing: the canonical empty
        // (inverted) range.
        assert_eq!(prefix(1, 64).as_op(), QueryOp::Range(1, 0));
        assert_eq!(prefix(u64::MAX, 8).as_op(), QueryOp::Range(1, 0));
        assert_eq!(prefix(1, 63).as_op(), QueryOp::Range(1 << 63, u64::MAX));
        assert!(prefix(5, 4).needs_ranges());
        assert!(!prefix(5, 0).needs_ranges());
    }

    #[test]
    fn queries_build_and_expose_predicates() {
        let q = TableQuery::new()
            .point("id", 3)
            .range("ts", 0, 9)
            .prefix("ts", 2, 3)
            .fetch_values(true);
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
        assert!(q.fetches_values());
        assert_eq!(q.predicates()[0].column(), "id");
        assert_eq!(q.predicates()[1].as_op(), QueryOp::Range(0, 9));
        assert!(TableQuery::new().is_empty());
    }

    #[test]
    fn explain_plans_summarise_routes() {
        let plan = ExplainPlan {
            choices: vec![
                PlanChoice {
                    predicate: Predicate::Point {
                        column: "id".into(),
                        key: 1,
                    },
                    candidates: vec![Candidate {
                        index: "id_ht".into(),
                        spec: "HT".into(),
                        eligible: true,
                        cost: 1e-6,
                        detail: "probe".into(),
                    }],
                    route: Route::Index {
                        index: "id_ht".into(),
                        spec: "HT".into(),
                    },
                    reason: "cheapest eligible index".into(),
                },
                PlanChoice {
                    predicate: Predicate::Range {
                        column: "val".into(),
                        lower: 0,
                        upper: 9,
                    },
                    candidates: vec![],
                    route: Route::Scan,
                    reason: "no index on column".into(),
                },
            ],
        };
        assert_eq!(plan.routed_index(0), Some("id_ht"));
        assert_eq!(plan.routed_index(1), None);
        assert_eq!(plan.scan_fallbacks(), 1);
        let rendered = plan.to_string();
        assert!(rendered.contains("id_ht"), "{rendered}");
        assert!(rendered.contains("row-store scan"), "{rendered}");
    }
}
