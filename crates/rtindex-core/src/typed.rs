//! Typed front-end over [`RtIndex`].
//!
//! The core index stores `u64` keys. The paper's "Handling other data types"
//! paragraph describes how any natively ordered type can be mapped onto a
//! `u64` while preserving order; [`TypedRtIndex`] packages that mapping so a
//! user can index an `i64`, `f64` or string-prefix column directly.

use gpu_device::Device;
use rtx_math::key_encode::IndexableKey;

use crate::config::RtIndexConfig;
use crate::error::RtIndexError;
use crate::index::RtIndex;
use rtx_query::BatchOutcome;

/// A secondary index over a column of `K` values, built by converting each
/// value to its order-preserving `u64` key.
#[derive(Debug)]
pub struct TypedRtIndex<K: IndexableKey> {
    inner: RtIndex,
    _marker: std::marker::PhantomData<K>,
}

impl<K: IndexableKey> TypedRtIndex<K> {
    /// Builds a typed index over `column` (rowID = position in the slice).
    pub fn build(
        device: &Device,
        column: &[K],
        config: RtIndexConfig,
    ) -> Result<Self, RtIndexError> {
        let keys: Vec<u64> = column.iter().map(|v| v.to_index_key()).collect();
        Ok(TypedRtIndex {
            inner: RtIndex::build(device, &keys, config)?,
            _marker: std::marker::PhantomData,
        })
    }

    /// The underlying untyped index.
    pub fn raw(&self) -> &RtIndex {
        &self.inner
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.inner.key_count()
    }

    /// True when the index holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Batched point lookups over typed query values.
    pub fn point_lookup_batch(
        &self,
        queries: &[K],
        values: Option<&[u64]>,
    ) -> Result<BatchOutcome, RtIndexError> {
        let keys: Vec<u64> = queries.iter().map(|v| v.to_index_key()).collect();
        self.inner.point_lookup_batch(&keys, values)
    }

    /// Batched inclusive range lookups over typed bounds.
    ///
    /// For types whose encoding is a strict prefix (e.g. string prefixes),
    /// the caller is responsible for post-filtering ties beyond the encoded
    /// prefix, exactly as the paper prescribes.
    pub fn range_lookup_batch(
        &self,
        ranges: &[(K, K)],
        values: Option<&[u64]>,
    ) -> Result<BatchOutcome, RtIndexError> {
        let encoded: Vec<(u64, u64)> = ranges
            .iter()
            .map(|(l, u)| (l.to_index_key(), u.to_index_key()))
            .collect();
        self.inner.range_lookup_batch(&encoded, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Device {
        Device::default_eval()
    }

    #[test]
    fn signed_integer_column_round_trips() {
        let dev = device();
        let column: Vec<i64> = vec![-1_000_000, -5, 0, 3, 77, 1 << 40];
        let index = TypedRtIndex::build(&dev, &column, RtIndexConfig::default()).expect("build");
        assert_eq!(index.len(), 6);
        assert!(!index.is_empty());
        let outcome = index.point_lookup_batch(&column, None).expect("lookup");
        for (i, r) in outcome.results.iter().enumerate() {
            assert!(r.is_hit());
            assert_eq!(r.first_row as usize, i);
        }
        let miss = index.point_lookup_batch(&[42i64], None).expect("lookup");
        assert!(!miss.results[0].is_hit());
    }

    #[test]
    fn signed_range_lookup_respects_order() {
        let dev = device();
        let column: Vec<i64> = (-50..50).collect();
        let values: Vec<u64> = vec![1; 100];
        let index = TypedRtIndex::build(&dev, &column, RtIndexConfig::default()).expect("build");
        let outcome = index
            .range_lookup_batch(&[(-10i64, 10i64)], Some(&values))
            .expect("lookup");
        assert_eq!(outcome.results[0].hit_count, 21);
    }

    #[test]
    fn float_column_point_lookups_and_wide_range_limit() {
        let dev = device();
        let column: Vec<f64> = vec![-2.5, -0.25, 0.0, 1.5, 3.25, 1e12];
        let index = TypedRtIndex::build(&dev, &column, RtIndexConfig::default()).expect("build");
        let outcome = index.point_lookup_batch(&column, None).expect("lookup");
        assert_eq!(outcome.hit_count(), column.len());
        // The float encoding is extremely sparse in u64 space, so even a
        // narrow value range spans an enormous number of key rows. RX rejects
        // such lookups instead of firing billions of rays; this is the
        // documented limitation inherited from the paper's per-row ray model.
        let err = index
            .range_lookup_batch(&[(-1.0f64, 2.0f64)], None)
            .unwrap_err();
        assert!(matches!(
            err,
            crate::error::RtIndexError::RangeTooWide { .. }
        ));
    }

    #[test]
    fn string_prefix_column_point_lookups_and_wide_range_limit() {
        let dev = device();
        let column: Vec<&str> = vec!["apple", "banana", "cherry", "date", "elderberry"];
        let index = TypedRtIndex::build(&dev, &column, RtIndexConfig::default()).expect("build");
        let hit = index.point_lookup_batch(&["cherry"], None).expect("lookup");
        assert_eq!(hit.results[0].first_row, 2);
        let miss = index.point_lookup_batch(&["fig"], None).expect("lookup");
        assert!(!miss.results[0].is_hit());
        // Like floats, string-prefix ranges span too many rows for the
        // per-row ray model; RX reports the limitation explicitly.
        let err = index.range_lookup_batch(&[("b", "d")], None).unwrap_err();
        assert!(matches!(
            err,
            crate::error::RtIndexError::RangeTooWide { .. }
        ));
    }

    #[test]
    fn raw_access_exposes_untyped_index() {
        let dev = device();
        let column: Vec<u32> = vec![5, 10, 15];
        let index = TypedRtIndex::build(&dev, &column, RtIndexConfig::default()).expect("build");
        assert_eq!(index.raw().key_count(), 3);
        assert_eq!(index.raw().keys(), &[5, 10, 15]);
    }
}
