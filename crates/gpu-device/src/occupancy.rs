//! Warp-occupancy and bandwidth-utilisation model.
//!
//! Section 4.2 / Table 5 of the paper explain the throughput saturation of
//! all indexes through two quantities: the average number of active warps
//! per SM (capped at 16 for the raytracing pipeline) and the fraction of the
//! peak memory bandwidth that the kernel achieves. This module models both
//! as a function of the launched thread count.

use crate::spec::DeviceSpec;

/// Occupancy model derived from a [`DeviceSpec`].
#[derive(Debug, Clone)]
pub struct OccupancyModel {
    spec: DeviceSpec,
}

impl OccupancyModel {
    /// Creates the model for a device.
    pub fn new(spec: DeviceSpec) -> Self {
        OccupancyModel { spec }
    }

    /// Average number of warps active per SM when `threads` logical threads
    /// are launched in one kernel.
    ///
    /// Small launches cannot fill every SM, so the value approaches the
    /// hardware limit asymptotically rather than as a hard step — the paper's
    /// Table 5 measures 3.89 warps at 2^13 lookups up to 14.25 at 2^21,
    /// against the limit of 16.
    pub fn active_warps_per_sm(&self, threads: u64) -> f64 {
        if threads == 0 {
            return 0.0;
        }
        let warps = (threads as f64 / self.spec.warp_size as f64).ceil();
        let warps_per_sm = warps / self.spec.sm_count as f64;
        let limit = self.spec.max_warps_per_sm as f64;
        // Latency hiding is imperfect: a saturating curve that never quite
        // reaches the scheduler limit, calibrated against the paper's
        // Table 5 (3.89 active warps at 2^13 lookups, 14.25 at 2^21).
        limit * warps_per_sm / (warps_per_sm + 6.0)
    }

    /// Fraction of the device's peak memory bandwidth achieved by a kernel
    /// that keeps `threads` logical threads in flight (0.0–1.0).
    ///
    /// Memory-latency hiding improves with occupancy; even a fully occupied
    /// device only reaches ~80 % of the theoretical peak for the pointer-
    /// chasing access patterns of index lookups, matching Table 5.
    pub fn bandwidth_utilisation(&self, threads: u64) -> f64 {
        if threads == 0 {
            return 0.0;
        }
        let occ = self.active_warps_per_sm(threads) / self.spec.max_warps_per_sm as f64;
        // 0 occupancy -> ~0.25 (a single warp still streams some data),
        // full occupancy -> ~0.80.
        (0.25 + 0.65 * occ).min(0.80)
    }

    /// Number of waves (sequential rounds of resident thread blocks) required
    /// to execute `threads` logical threads.
    pub fn waves(&self, threads: u64) -> u64 {
        let per_wave = self.spec.max_resident_threads();
        threads.div_ceil(per_wave).max(1)
    }

    /// Returns `true` when a launch of `threads` threads saturates the
    /// device (i.e. at least one full wave of resident warps).
    pub fn saturates_device(&self, threads: u64) -> bool {
        threads >= self.spec.max_resident_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> OccupancyModel {
        OccupancyModel::new(DeviceSpec::rtx_4090())
    }

    #[test]
    fn zero_threads_zero_occupancy() {
        assert_eq!(model().active_warps_per_sm(0), 0.0);
        assert_eq!(model().bandwidth_utilisation(0), 0.0);
    }

    #[test]
    fn occupancy_increases_with_threads_and_saturates() {
        let m = model();
        let small = m.active_warps_per_sm(1 << 13);
        let medium = m.active_warps_per_sm(1 << 17);
        let large = m.active_warps_per_sm(1 << 21);
        let huge = m.active_warps_per_sm(1 << 27);
        assert!(small < medium && medium < large && large < huge);
        assert!(
            small < 8.0,
            "2^13 lookups must leave the device underutilised, got {small}"
        );
        assert!(
            large > 12.0,
            "2^21 lookups must nearly saturate, got {large}"
        );
        assert!(huge <= 16.0 + 1e-9, "cannot exceed the scheduler limit");
    }

    #[test]
    fn bandwidth_utilisation_monotone_and_capped() {
        let m = model();
        let mut last = 0.0;
        for exp in [13u32, 15, 17, 19, 21, 25] {
            let bw = m.bandwidth_utilisation(1u64 << exp);
            assert!(bw >= last);
            assert!(bw <= 0.80);
            last = bw;
        }
        assert!(m.bandwidth_utilisation(1 << 13) < 0.55);
        assert!(m.bandwidth_utilisation(1 << 21) > 0.70);
    }

    #[test]
    fn waves_and_saturation() {
        let m = model();
        let resident = DeviceSpec::rtx_4090().max_resident_threads();
        assert_eq!(m.waves(1), 1);
        assert_eq!(m.waves(resident), 1);
        assert_eq!(m.waves(resident + 1), 2);
        assert!(!m.saturates_device(resident - 1));
        assert!(m.saturates_device(resident));
    }
}
