//! Key-representation benchmarks: Naive vs. Extended vs. 3D mode (Figure 3a),
//! key stride (Figure 3b) and decomposition of point lookups (Figure 8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_device::Device;
use rtindex_core::{Decomposition, KeyMode, RtIndex, RtIndexConfig};
use rtx_workloads as wl;

fn bench_key_modes(c: &mut Criterion) {
    let device = Device::default_eval();
    let keys = wl::dense_shuffled(1 << 16, 42);
    let queries = wl::point_lookups(&keys, 1 << 16, 43);
    let mut group = c.benchmark_group("key_mode_point_lookups");
    for mode in KeyMode::all() {
        let index =
            RtIndex::build(&device, &keys, RtIndexConfig::default().with_key_mode(mode)).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.name()),
            &queries,
            |b, q| b.iter(|| index.point_lookup_batch(q, None).unwrap()),
        );
    }
    group.finish();
}

fn bench_key_stride(c: &mut Criterion) {
    let device = Device::default_eval();
    let mut group = c.benchmark_group("key_stride_extended_mode");
    for stride in [1u64, 4] {
        let keys = wl::with_stride(1 << 14, stride, 42);
        let queries = wl::point_lookups(&keys, 1 << 14, 43);
        let index = RtIndex::build(
            &device,
            &keys,
            RtIndexConfig::default().with_key_mode(KeyMode::Extended),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(stride), &queries, |b, q| {
            b.iter(|| index.point_lookup_batch(q, None).unwrap())
        });
    }
    group.finish();
}

fn bench_decompositions(c: &mut Criterion) {
    let device = Device::default_eval();
    let bits = 16u32;
    let keys = wl::dense_shuffled(1 << bits, 42);
    let queries = wl::point_lookups(&keys, 1 << 16, 43);
    let mut group = c.benchmark_group("decomposition_point_lookups");
    for decomposition in [
        Decomposition::new(bits - 3, 3, 0),
        Decomposition::new(bits - 8, 8, 0),
        Decomposition::new(bits - 8, 0, 8),
    ] {
        let index = RtIndex::build(
            &device,
            &keys,
            RtIndexConfig::default().with_key_mode(KeyMode::ThreeD(decomposition)),
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(decomposition.label()),
            &queries,
            |b, q| b.iter(|| index.point_lookup_batch(q, None).unwrap()),
        );
    }
    group.finish();
}

/// Shared Criterion configuration: small sample counts and short measurement
/// windows keep `cargo bench --workspace` runnable in CI while still
/// producing stable medians for the simulated workloads.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_key_modes, bench_key_stride, bench_decompositions
}
criterion_main!(benches);
