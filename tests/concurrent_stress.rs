//! Concurrency stress: many threads hammering one shared sharded index and
//! one coalescing service, with every answer checked against the exact CPU
//! oracles.
//!
//! Two layers are exercised:
//!
//! * a `ShardedIndex` (updatable `RXD@4`) shared by 8 reader threads
//!   executing distinct mixed point/range batches between serialized write
//!   batches — the trait layer's `&self` execution path under real
//!   contention;
//! * a `QueryService` over `RXD@2` with 8 clients owning disjoint key
//!   slices, each interleaving its own inserts/deletes/upserts with reads
//!   — writes are fenced per the service contract, and slice disjointness
//!   makes every client's expected counts deterministic regardless of how
//!   the scheduler interleaves the clients.
//!
//! Row IDs are allocated globally (concurrent inserts interleave
//! non-deterministically), so the dynamic checks compare `hit_count` and
//! `value_sum` — row-ID-independent — while the pre-write round asserts
//! full equality including `first_row`.

use rtindex::{registry, Device, IndexSpec, QueryBatch, QueryService, ServiceConfig};
use rtx_workloads::truth::DynamicOracle;

/// A deterministic mixed read batch over the key domain, distinct per
/// (thread, round).
fn mixed_batch(domain: u64, thread: u64, round: u64) -> QueryBatch {
    let salt = thread * 7_919 + round * 104_729;
    let points = (0..96u64).map(move |i| (salt + i * 131) % (domain + domain / 8));
    let ranges = (0..24u64).map(move |i| {
        let lower = (salt + i * 613) % domain;
        (lower, lower + (i % 5) * 17)
    });
    QueryBatch::new()
        .points(points)
        .ranges(ranges)
        .range(domain, 0) // inverted: uniformly empty everywhere
        .fetch_values(true)
}

#[test]
fn sharded_index_serves_concurrent_mixed_readers_between_write_batches() {
    let device = Device::default_eval();
    let registry = registry();
    let n: u64 = 4096;
    let keys: Vec<u64> = (0..n).collect();
    let values: Vec<u64> = keys.iter().map(|k| k * 5 + 3).collect();
    let mut index = registry
        .build_updatable("RXD@4", &IndexSpec::with_values(&device, &keys, &values))
        .expect("sharded updatable build");
    let mut oracle = DynamicOracle::new(&keys, &values);

    // Before any write the answers must be exact to the row, concurrently.
    std::thread::scope(|scope| {
        for thread in 0..8u64 {
            let index = &index;
            let oracle = &oracle;
            scope.spawn(move || {
                let batch = mixed_batch(n, thread, 0);
                let out = index.execute(&batch).expect("concurrent read");
                assert_eq!(
                    out.results,
                    oracle.expected_batch(&batch),
                    "thread {thread}: pre-write reads are row-exact"
                );
            });
        }
    });

    // Serialized write batches with 8-thread mixed read storms in between.
    for round in 1..=4u64 {
        let fresh: Vec<u64> = (0..64).map(|i| 2 * n + round * 64 + i).collect();
        let fresh_values: Vec<u64> = fresh.iter().map(|k| k * 9 + 1).collect();
        let report = index.insert(&fresh, &fresh_values).expect("insert");
        assert_eq!(report.inserted_rows, fresh.len());
        oracle.insert_batch(&fresh, &fresh_values);

        let doomed: Vec<u64> = (0..48).map(|i| (round * 97 + i * 31) % n).collect();
        let report = index.delete(&doomed).expect("delete");
        assert_eq!(report.deleted_rows, oracle.delete_batch(&doomed));

        let upserted: Vec<u64> = (0..32).map(|i| (round * 53 + i * 67) % (2 * n)).collect();
        let upsert_values: Vec<u64> = upserted.iter().map(|k| k + 10 * round).collect();
        let report = index.upsert(&upserted, &upsert_values).expect("upsert");
        assert_eq!(report.inserted_rows, upserted.len());
        assert_eq!(
            report.deleted_rows,
            oracle.upsert_batch(&upserted, &upsert_values)
        );

        std::thread::scope(|scope| {
            for thread in 0..8u64 {
                let index = &index;
                let oracle = &oracle;
                scope.spawn(move || {
                    for sub in 0..2u64 {
                        let batch = mixed_batch(2 * n, thread, round * 10 + sub);
                        let out = index.execute(&batch).expect("concurrent read");
                        let expected = oracle.expected_batch(&batch);
                        for (slot, (got, want)) in out.results.iter().zip(&expected).enumerate() {
                            assert_eq!(
                                (got.hit_count, got.value_sum),
                                (want.hit_count, want.value_sum),
                                "thread {thread} round {round} slot {slot}"
                            );
                        }
                    }
                });
            }
        });
    }
}

#[test]
fn service_fans_in_clients_with_disjoint_write_slices() {
    const CLIENTS: u64 = 8;
    const SLICE: u64 = 4096;
    const INITIAL_PER_CLIENT: u64 = 192;
    const ROUNDS: u64 = 3;

    let device = Device::default_eval();
    let registry = registry();

    // Client c owns the key slice [c*SLICE, (c+1)*SLICE): every write stays
    // inside the owner's slice, so each client's expected counts and sums
    // are independent of the other clients' interleaved traffic.
    let keys: Vec<u64> = (0..CLIENTS)
        .flat_map(|c| (0..INITIAL_PER_CLIENT).map(move |i| c * SLICE + i * 3))
        .collect();
    let values: Vec<u64> = keys.iter().map(|k| k * 7 + 11).collect();
    let backend = registry
        .build_updatable("RXD@2", &IndexSpec::with_values(&device, &keys, &values))
        .expect("updatable sharded build");
    let service =
        QueryService::start_updatable(backend, ServiceConfig::new().with_max_queue_depth(1 << 16));

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let handle = service.handle();
            let keys = &keys;
            let values = &values;
            scope.spawn(move || {
                // This client's private oracle over only its slice; row IDs
                // differ from the shared index, counts and sums do not.
                let base = client * SLICE;
                let own: Vec<usize> = (0..keys.len())
                    .filter(|&i| keys[i] / SLICE == client)
                    .collect();
                let own_keys: Vec<u64> = own.iter().map(|&i| keys[i]).collect();
                let own_values: Vec<u64> = own.iter().map(|&i| values[i]).collect();
                let mut oracle = DynamicOracle::new(&own_keys, &own_values);

                let verify = |oracle: &DynamicOracle, batch: &QueryBatch, round: u64| {
                    let out = handle.query(batch.clone()).expect("service read");
                    let expected = oracle.expected_batch(batch);
                    for (slot, (got, want)) in out.results.iter().zip(&expected).enumerate() {
                        assert_eq!(
                            (got.hit_count, got.value_sum),
                            (want.hit_count, want.value_sum),
                            "client {client} round {round} slot {slot}"
                        );
                    }
                };

                for round in 0..ROUNDS {
                    // Insert fresh keys into the owned slice.
                    let fresh: Vec<u64> =
                        (0..48).map(|i| base + 2048 + round * 96 + i * 2).collect();
                    let fresh_values: Vec<u64> = fresh.iter().map(|k| k * 3 + round).collect();
                    let report = handle.insert(&fresh, &fresh_values).expect("insert");
                    assert_eq!(report.inserted_rows, fresh.len());
                    oracle.insert_batch(&fresh, &fresh_values);

                    // Reads over the owned slice (plus misses past it) see
                    // exactly this client's writes.
                    let batch = QueryBatch::new()
                        .points((0..128u64).map(|i| base + (round * 37 + i * 29) % SLICE))
                        .range(base, base + SLICE - 1)
                        .range(base + 2048, base + 2048 + 95)
                        .fetch_values(true);
                    verify(&oracle, &batch, round);

                    // Delete & upsert inside the slice, then re-verify.
                    let doomed: Vec<u64> =
                        (0..24).map(|i| base + ((round + i) * 3) % 576).collect();
                    let report = handle.delete(&doomed).expect("delete");
                    assert_eq!(report.deleted_rows, oracle.delete_batch(&doomed));

                    let upserted: Vec<u64> = (0..16).map(|i| base + i * 5).collect();
                    let upsert_values: Vec<u64> =
                        upserted.iter().map(|k| k + 1000 * round).collect();
                    let report = handle.upsert(&upserted, &upsert_values).expect("upsert");
                    assert_eq!(
                        report.deleted_rows,
                        oracle.upsert_batch(&upserted, &upsert_values)
                    );

                    let batch = QueryBatch::new()
                        .points((0..96u64).map(|i| base + i * 7))
                        .range(base, base + 640)
                        .fetch_values(true);
                    verify(&oracle, &batch, round);
                }
            });
        }
    });

    let stats = service.shutdown();
    assert_eq!(
        stats.write_batches,
        CLIENTS * ROUNDS * 3,
        "every write applied"
    );
    assert_eq!(
        stats.submitted_batches,
        CLIENTS * ROUNDS * 2,
        "every read answered"
    );
    assert_eq!(stats.rejected_batches, 0, "no backpressure at this load");
}
