//! Command-line entry point of the experiment harness.
//!
//! ```text
//! rtx-harness <experiment|all|list> [--scale tiny|small|medium|paper] [--seed N]
//! ```
//!
//! Every experiment prints the table(s) corresponding to one figure or table
//! of the paper's evaluation.

use rtx_harness::{experiment_names, run_experiment, ExperimentScale};

fn print_usage() {
    eprintln!(
        "usage: rtx-harness <experiment|all|list> [--scale tiny|small|medium|paper] [--seed N]"
    );
    eprintln!("experiments: {}", experiment_names().join(", "));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    let mut experiment = None;
    let mut scale = ExperimentScale::small();
    // Applied after the loop so `--seed N --scale small` keeps the seed.
    let mut seed = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let name = iter.next().map(String::as_str).unwrap_or("");
                match ExperimentScale::from_name(name) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale '{name}'");
                        print_usage();
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => {
                let value = iter.next().map(String::as_str).unwrap_or("");
                match value.parse::<u64>() {
                    Ok(s) => seed = Some(s),
                    Err(_) => {
                        eprintln!("invalid seed '{value}'");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            name if experiment.is_none() => experiment = Some(name.to_string()),
            other => {
                eprintln!("unexpected argument '{other}'");
                print_usage();
                std::process::exit(2);
            }
        }
    }

    if let Some(seed) = seed {
        scale.seed = seed;
    }

    let experiment = match experiment {
        Some(e) => e,
        None => {
            print_usage();
            std::process::exit(2);
        }
    };

    match experiment.as_str() {
        "list" => {
            for name in experiment_names() {
                println!("{name}");
            }
        }
        "all" => {
            for name in experiment_names() {
                println!("### {name}");
                for table in run_experiment(name, &scale).expect("listed experiment") {
                    table.print();
                }
            }
        }
        name => match run_experiment(name, &scale) {
            Some(tables) => {
                for table in tables {
                    table.print();
                }
            }
            None => {
                eprintln!("unknown experiment '{name}'");
                print_usage();
                std::process::exit(2);
            }
        },
    }
}
