//! # rtx-shard
//!
//! The sharded parallel execution layer of the RTIndeX reproduction:
//! partition any registered backend over N shards and scatter/gather mixed
//! query batches (and update batches) across the `gpu-device` worker pool.
//!
//! The paper — and the trait layer below this crate — drives every index as
//! a single monolithic structure. A production service scales on *shards*:
//! several smaller indexes, each owning a slice of the key space, answering
//! concurrently. This crate adds exactly that layer without touching any
//! backend:
//!
//! * [`HashPartitioner`] / [`RangePartitioner`] implement
//!   [`KeyRouter`](rtx_query::KeyRouter) — hash routing balances any key
//!   distribution but broadcasts range lookups, contiguous-range routing
//!   splits ranges at the partition boundaries it derives from the build
//!   column's quantiles;
//! * [`ShardedIndex`] builds N inner backends (any registry name,
//!   homogeneous or mixed per shard) *in parallel*, implements
//!   `SecondaryIndex` itself — scatter, concurrent per-shard execution,
//!   gather in submission order, global rowID translation, merged metrics —
//!   and routes `UpdatableIndex` batches through the same partitioner when
//!   every shard is updatable;
//! * [`ShardedIndex::rebalance`] migrates rows off hot shards while the
//!   index stays live: per-shard op counters detect sustained imbalance,
//!   hash routing upgrades to a [`WeightedHashPartitioner`] slot table (or
//!   range bounds recompute as load-weighted quantiles), and the moved rows
//!   keep their global rowIDs so results stay oracle-exact across the
//!   migration;
//! * [`install_sharding`] hooks the layer into a
//!   [`Registry`], after which *names* become sharded
//!   backends: `"RX@8"`, `"SA@4:range"`, `"RXD@2"` build through the same
//!   `registry.build(..)` / `build_updatable(..)` calls every experiment
//!   and example already uses.
//!
//! ```
//! use gpu_device::Device;
//! use rtx_query::{IndexSpec, QueryBatch, Registry};
//!
//! let mut registry = Registry::new();
//! gpu_baselines::register_baselines(&mut registry);
//! rtx_shard::install_sharding(&mut registry);
//!
//! let device = Device::default_eval();
//! let keys: Vec<u64> = (0..10_000).collect();
//! let index = registry
//!     .build("SA@8:range", &IndexSpec::keys_only(&device, &keys))
//!     .unwrap();
//! let out = index
//!     .execute(&QueryBatch::new().point(4096).range(100, 199))
//!     .unwrap();
//! assert_eq!(out.results[0].first_row, 4096);
//! assert_eq!(out.results[1].hit_count, 100);
//! ```

pub mod partition;
pub mod sharded;

pub use partition::{
    HashPartitioner, RangePartitioner, WeightedHashPartitioner, WEIGHTED_HASH_SLOTS,
};
pub use sharded::{RouterConfig, ShardedIndex};

use rtx_query::{Registry, SecondaryIndex, UpdatableIndex};

/// Installs the sharded-backend factories into `registry`: afterwards any
/// name of the form `"<backend>@<shards>[:hash|:range]"` that is not
/// registered verbatim builds a [`ShardedIndex`] over the registry's own
/// backends — `registry.build("RX@8", ..)` for reads,
/// `registry.build_updatable("RXD@4", ..)` when every shard must take
/// writes.
pub fn install_sharding(registry: &mut Registry) {
    registry.set_sharded_builders(
        Box::new(|registry, spec, index| {
            ShardedIndex::build(registry, spec, index)
                .map(|ix| Box::new(ix) as Box<dyn SecondaryIndex>)
        }),
        Box::new(|registry, spec, index| {
            ShardedIndex::build_updatable(registry, spec, index)
                .map(|ix| Box::new(ix) as Box<dyn UpdatableIndex>)
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_device::Device;
    use rtx_query::{
        IndexError, IndexSpec, Partitioning, QueryBatch, Registry, SecondaryIndex, ShardSpec,
    };
    use rtx_workloads as wl;
    use rtx_workloads::truth::DynamicOracle;
    use rtx_workloads::GroundTruth;

    /// Registry with every real backend plus the sharding layer.
    fn registry() -> Registry {
        let mut registry = Registry::new();
        gpu_baselines::register_baselines(&mut registry);
        rtindex_core::register_rx(&mut registry, rtindex_core::RtIndexConfig::default());
        rtx_delta::register_dynamic(&mut registry, rtx_delta::DynamicRtConfig::default());
        install_sharding(&mut registry);
        registry
    }

    fn mixed_batch(keys: &[u64], seed: u64) -> QueryBatch {
        let domain = keys.iter().copied().max().unwrap_or(0);
        let points = wl::point_lookups_with_hit_rate(keys, 120, 0.7, seed);
        let ranges: Vec<(u64, u64)> = (0..40u64)
            .map(|i| {
                let lower = (i * 41 + seed) % (domain + 16);
                (lower, lower + (i % 4) * 9)
            })
            .collect();
        QueryBatch::new()
            .points(points)
            .ranges(ranges)
            .range(17, 3) // inverted: uniform empty
            .point(domain + 12345) // guaranteed miss
            .fetch_values(true)
    }

    #[test]
    fn sharded_backends_answer_exactly_like_the_oracle() {
        let device = Device::default_eval();
        let registry = registry();
        let keys = wl::dense_shuffled(3000, 11);
        let values = wl::value_column(3000, 12);
        let truth = GroundTruth::new(&keys, Some(&values));
        let spec = IndexSpec::with_values(&device, &keys, &values);
        let batch = mixed_batch(&keys, 13);
        let expected = truth.expected_batch(&batch);

        for name in ["RX@4", "SA@3:range", "B+@2", "RXD@5:range", "SA@1"] {
            let ix = registry.build(name, &spec).expect(name);
            assert_eq!(ix.name(), name);
            assert_eq!(ix.key_count(), keys.len(), "{name}");
            assert!(ix.memory_bytes() > 0, "{name}");
            assert!(ix.build_metrics().simulated_time_s > 0.0, "{name}");
            let out = ix.execute(&batch).expect(name);
            assert_eq!(out.results, expected, "{name}");
            assert!(out.metrics.simulated_time_s > 0.0, "{name}");

            // Chunked execution changes launches, never results.
            let chunked = ix.execute(&batch.clone().with_chunk_size(13)).unwrap();
            assert_eq!(chunked.results, expected, "{name} chunked");
        }
    }

    #[test]
    fn hash_sharded_ht_serves_points_and_rejects_ranges_uniformly() {
        let device = Device::default_eval();
        let registry = registry();
        let keys = wl::dense_shuffled(1000, 3);
        let spec = IndexSpec::keys_only(&device, &keys);
        let ix = registry.build("HT@4", &spec).unwrap();
        assert!(!ix.capabilities().range_lookups);
        let out = ix
            .execute(&QueryBatch::of_points(&[keys[0], 99_999]))
            .unwrap();
        assert!(out.results[0].is_hit() && !out.results[1].is_hit());
        let err = ix
            .execute(&QueryBatch::new().range(5, 2))
            .map(|_| ())
            .unwrap_err();
        assert!(
            matches!(err, IndexError::UnsupportedOperation { operation, .. }
                if operation == "range lookups"),
            "even inverted ranges reject uniformly on a range-less backend"
        );
    }

    #[test]
    fn updatable_sharded_rxd_routes_updates_through_the_partitioner() {
        let device = Device::default_eval();
        let registry = registry();
        let keys: Vec<u64> = (0..600).collect();
        let values: Vec<u64> = (0..600).map(|v| v + 1).collect();
        let spec = IndexSpec::with_values(&device, &keys, &values);
        let mut oracle = DynamicOracle::new(&keys, &values);

        for name in ["RXD@3", "RXD@4:range"] {
            let mut ix = registry.build_updatable(name, &spec).expect(name);
            assert!(ix.capabilities().updates, "{name}");

            let ins_keys: Vec<u64> = (1000..1080).collect();
            let ins_values: Vec<u64> = (0..80).map(|v| 7000 + v).collect();
            let report = ix.insert(&ins_keys, &ins_values).unwrap();
            assert_eq!(report.inserted_rows, 80, "{name}");

            let del_keys: Vec<u64> = (0..120).collect();
            let report = ix.delete(&del_keys).unwrap();
            assert_eq!(report.deleted_rows, 120, "{name}");

            let ups_keys: Vec<u64> = (100..160).collect();
            let ups_values: Vec<u64> = (0..60).map(|v| 9000 + v).collect();
            let report = ix.upsert(&ups_keys, &ups_values).unwrap();
            assert_eq!(report.inserted_rows, 60, "{name}");
            // Keys 100..120 were already deleted; 120..160 existed.
            assert_eq!(report.deleted_rows, 40, "{name}");

            let mut shadow = oracle.clone();
            shadow.insert_batch(&ins_keys, &ins_values);
            shadow.delete_batch(&del_keys);
            shadow.upsert_batch(&ups_keys, &ups_values);

            let batch = QueryBatch::new()
                .points((0..200).chain(990..1090))
                .range(90, 170)
                .range(1000, 1500)
                .fetch_values(true);
            let out = ix.execute(&batch).expect(name);
            assert_eq!(out.results, shadow.expected_batch(&batch), "{name}");
        }
        let _ = &mut oracle;
    }

    #[test]
    fn sharded_row_mirror_survives_inner_compactions() {
        // Aggressive compaction policy: every shard reorganises during the
        // churn. Counts and sums must still match the oracle exactly;
        // global first rows keep the wrapper's stable numbering.
        let device = Device::default_eval();
        let mut registry = Registry::new();
        rtx_delta::register_dynamic(
            &mut registry,
            rtx_delta::DynamicRtConfig::default().with_policy(rtx_delta::CompactionPolicy {
                max_delta_entries: 8,
                max_delta_fraction: 0.01,
                max_delete_ratio: 0.01,
            }),
        );
        install_sharding(&mut registry);

        let keys: Vec<u64> = (0..300).collect();
        let values: Vec<u64> = (0..300).map(|v| v * 2 + 1).collect();
        let mut ix = registry
            .build_updatable("RXD@3", &IndexSpec::with_values(&device, &keys, &values))
            .unwrap();
        let mut oracle = DynamicOracle::new(&keys, &values);

        let mut reorganisations = 0;
        for round in 0..6u64 {
            let ins: Vec<u64> = (1000 + round * 40..1000 + round * 40 + 40).collect();
            let ins_v: Vec<u64> = ins.iter().map(|k| k * 3).collect();
            reorganisations += ix.insert(&ins, &ins_v).unwrap().reorganisations;
            oracle.insert_batch(&ins, &ins_v);
            let del: Vec<u64> = (round * 30..round * 30 + 25).collect();
            reorganisations += ix.delete(&del).unwrap().reorganisations;
            oracle.delete_batch(&del);
        }
        assert!(reorganisations > 0, "the policy must have fired");

        let batch = QueryBatch::new()
            .points((0..320).step_by(3))
            .ranges((0..20).map(|i| (i * 70, i * 70 + 50)))
            .fetch_values(true);
        let out = ix.execute(&batch).unwrap();
        for (slot, (got, want)) in out
            .results
            .iter()
            .zip(oracle.expected_batch(&batch))
            .enumerate()
        {
            assert_eq!(got.hit_count, want.hit_count, "slot {slot}");
            assert_eq!(got.value_sum, want.value_sum, "slot {slot}");
        }
    }

    #[test]
    fn mixed_per_shard_backends_compose() {
        let device = Device::default_eval();
        let registry = registry();
        let keys = wl::dense_shuffled(800, 21);
        let values = wl::value_column(800, 22);
        let spec = IndexSpec::with_values(&device, &keys, &values);
        let truth = GroundTruth::new(&keys, Some(&values));

        let ix = ShardedIndex::build_mixed(&registry, &["RX", "SA"], Partitioning::Range, &spec)
            .unwrap();
        assert_eq!(ix.name(), "RX+SA@2:range");
        assert_eq!(ix.shard_count(), 2);
        assert!(ix.capabilities().range_lookups);
        let batch = mixed_batch(&keys, 23);
        assert_eq!(
            ix.execute(&batch).unwrap().results,
            truth.expected_batch(&batch)
        );

        // Mixing in HT drops range support for the whole sharded index.
        let ix =
            ShardedIndex::build_mixed(&registry, &["RX", "HT"], Partitioning::Hash, &spec).unwrap();
        assert!(!ix.capabilities().range_lookups);
        let stats = ix.shard_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0, "RX");
        assert_eq!(stats[1].0, "HT");
        assert_eq!(stats.iter().map(|s| s.1).sum::<usize>(), 800);
    }

    #[test]
    fn build_errors_propagate_from_shards_and_specs() {
        let device = Device::default_eval();
        let registry = registry();
        let spec = IndexSpec::keys_only(&device, &[1, 2, 2, 3]);

        // B+ rejects duplicates — sharded B+ propagates the same class.
        let err = registry.build("B+@2", &spec).map(|_| ()).unwrap_err();
        assert!(err.is_unsupported_key_set(), "{err}");

        // Unknown inner backend: the standard listing error.
        let err = registry.build("ZZ@2", &spec).map(|_| ()).unwrap_err();
        assert!(matches!(err, IndexError::UnknownBackend { .. }));
        assert!(err.to_string().contains("RX"), "{err}");

        // Zero shards: rejected before building anything.
        let err = registry.build("RX@0", &spec).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("at least 1"), "{err}");

        // Read-only inner backends cannot form an updatable sharded index.
        let err = registry
            .build_updatable("SA@2", &spec)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, IndexError::UnknownBackend { .. }), "{err}");

        // A value fetch against a value-less sharded index fails uniformly.
        let ix = registry.build("SA@2", &spec).unwrap();
        let err = ix
            .execute(&QueryBatch::new().point(1).fetch_values(true))
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, IndexError::NoValueColumn { .. }));

        // Updates on a read-only-built sharded backend are rejected.
        let mut direct = ShardedIndex::build(&registry, &ShardSpec::hash("SA", 2), &spec).unwrap();
        let err = rtx_query::UpdatableIndex::insert(&mut direct, &[9], &[9])
            .map(|_| ())
            .unwrap_err();
        assert!(
            matches!(err, IndexError::UnsupportedOperation { operation, .. }
                if operation == "updates")
        );
    }

    #[test]
    fn empty_key_sets_shard_and_only_miss() {
        let device = Device::default_eval();
        let registry = registry();
        let spec = IndexSpec::keys_only(&device, &[]);
        for name in ["RX@3", "SA@2:range"] {
            let ix = registry.build(name, &spec).expect(name);
            assert_eq!(ix.key_count(), 0);
            let out = ix
                .execute(&QueryBatch::new().point(1).range(0, 5000))
                .unwrap();
            assert_eq!(out.hit_count(), 0, "{name}");
        }
    }

    #[test]
    fn rebalance_stays_oracle_exact_across_an_online_migration() {
        // The core hot-shard guarantee: migrate rows between shards while
        // the index is live, and every result — global rowIDs included —
        // stays exactly what the unsharded oracle answers, before and
        // after, and for writes that land through the new layout.
        let device = Device::default_eval();
        let registry = registry();
        let keys: Vec<u64> = (0..900).collect();
        let values: Vec<u64> = (0..900).map(|v| v * 7 + 3).collect();
        let spec = IndexSpec::with_values(&device, &keys, &values);
        let oracle = DynamicOracle::new(&keys, &values);

        for shard_spec in [ShardSpec::hash("RXD", 4), ShardSpec::range("RXD", 3)] {
            let name = shard_spec.name();
            let mut ix = ShardedIndex::build_updatable(&registry, &shard_spec, &spec).unwrap();
            let mut shadow = oracle.clone();

            // Hammer two keys so their shard dominates the op counters.
            let hot: Vec<u64> = [17u64, 23].iter().flat_map(|&k| [k; 64]).collect();
            for _ in 0..8 {
                ix.execute(&QueryBatch::of_points(&hot)).unwrap();
            }
            let load = ix.load();
            assert_eq!(load.shard_count(), shard_spec.shards, "{name}");
            assert_eq!(load.rows.iter().sum::<u64>(), 900, "{name}");
            assert!(
                load.imbalance_ratio() > 1.5,
                "{name}: hot traffic must skew the counters, got {}",
                load.imbalance_ratio()
            );

            let report = ix.rebalance().unwrap();
            assert!(report.moved_rows > 0, "{name}: rows must migrate");
            assert_eq!(ix.load().total_ops(), 0, "{name}: counters reset");
            assert_eq!(ix.key_count(), 900, "{name}: no row lost");

            // Results are untouched by the migration.
            let batch = mixed_batch(&keys, 41);
            assert_eq!(
                ix.execute(&batch).unwrap().results,
                shadow.expected_batch(&batch),
                "{name}: post-migration results"
            );

            // Writes route through the new layout and stay oracle-exact.
            let ins: Vec<u64> = (2000..2080).collect();
            let ins_v: Vec<u64> = ins.iter().map(|k| k * 5).collect();
            ix.insert(&ins, &ins_v).unwrap();
            shadow.insert_batch(&ins, &ins_v);
            let del: Vec<u64> = (0..60).chain(2000..2020).collect();
            ix.delete(&del).unwrap();
            shadow.delete_batch(&del);

            let batch = QueryBatch::new()
                .points((0..100).chain(1990..2090))
                .range(10, 80)
                .range(2040, 2400)
                .fetch_values(true);
            assert_eq!(
                ix.execute(&batch).unwrap().results,
                shadow.expected_batch(&batch),
                "{name}: post-migration writes"
            );

            // A second pass with the counters already balanced (reads now
            // spread by the migrated layout) must not thrash: it either
            // moves nothing or keeps exactness all the same.
            let report = ix.rebalance().unwrap();
            let batch = mixed_batch(&keys, 43);
            assert_eq!(
                ix.execute(&batch).unwrap().results,
                shadow.expected_batch(&batch),
                "{name}: after second rebalance ({report:?})"
            );
        }
    }

    #[test]
    fn rebalance_handles_valueless_and_degenerate_shapes() {
        let device = Device::default_eval();
        let registry = registry();

        // Valueless rows migrate too (checkpoint triples carry zero
        // values, exactly like the durable replay path).
        let keys: Vec<u64> = (0..400).collect();
        let spec = IndexSpec::keys_only(&device, &keys);
        let mut ix =
            ShardedIndex::build_updatable(&registry, &ShardSpec::hash("RXD", 4), &spec).unwrap();
        let hot = [5u64; 256];
        ix.execute(&QueryBatch::of_points(&hot)).unwrap();
        let report = ix.rebalance().unwrap();
        assert!(report.moved_rows > 0);
        let out = ix
            .execute(&QueryBatch::new().points(0..420u64).range(100, 199))
            .unwrap();
        assert_eq!(out.hit_count(), 400 + 1, "all keys survive the migration");
        assert_eq!(out.results.last().unwrap().hit_count, 100);

        // A single shard has nowhere to move rows: an empty report.
        let mut ix =
            ShardedIndex::build_updatable(&registry, &ShardSpec::hash("RXD", 1), &spec).unwrap();
        ix.execute(&QueryBatch::of_points(&hot)).unwrap();
        assert_eq!(
            ix.rebalance().unwrap(),
            rtx_query::RebalanceReport::default()
        );

        // No observed ops and uniform placement: nothing to do, and a
        // read-only sharded build rejects the operation outright.
        let mut ix =
            ShardedIndex::build_updatable(&registry, &ShardSpec::hash("RXD", 4), &spec).unwrap();
        ix.rebalance().unwrap();
        let batch = QueryBatch::of_points(&[5, 399, 7777]);
        let out = ix.execute(&batch).unwrap();
        assert_eq!(out.hit_count(), 2);
        let mut read_only =
            ShardedIndex::build(&registry, &ShardSpec::hash("SA", 2), &spec).unwrap();
        assert!(matches!(
            read_only.rebalance(),
            Err(IndexError::UnsupportedOperation { .. })
        ));
    }

    #[test]
    fn shard_load_counts_routed_ops_and_surfaces_through_the_trait() {
        let device = Device::default_eval();
        let registry = registry();
        let keys = wl::dense_shuffled(600, 51);
        let spec = IndexSpec::keys_only(&device, &keys);
        let ix = registry.build("RX@4", &spec).unwrap();

        // Monolithic backends report no shard load; sharded ones do.
        let mono = registry.build("RX", &spec).unwrap();
        assert!(mono.shard_load().is_none());
        let load = ix.shard_load().expect("sharded index reports load");
        assert_eq!(load.total_ops(), 0);
        assert_eq!(load.imbalance_ratio(), 0.0, "no traffic yet");
        assert!(load.hottest_shard().is_none());

        ix.execute(&QueryBatch::of_points(&[1, 2, 3, 4, 5]))
            .unwrap();
        ix.execute(&QueryBatch::new().range(0, 599)).unwrap();
        let load = ix.shard_load().expect("sharded index reports load");
        // 5 points + the broadcast range (one op per shard).
        assert_eq!(load.total_ops(), 5 + 4);
        assert!(load.imbalance_ratio() >= 1.0);
        assert!(load.hottest_shard().is_some());
        assert_eq!(load.rows.iter().sum::<u64>(), 600);
    }

    #[test]
    fn point_and_range_chunk_hooks_delegate_to_the_scattered_path() {
        let device = Device::default_eval();
        let registry = registry();
        let keys = wl::dense_shuffled(500, 31);
        let values = wl::value_column(500, 32);
        let truth = GroundTruth::new(&keys, Some(&values));
        let ix = registry
            .build("RX@3", &IndexSpec::with_values(&device, &keys, &values))
            .unwrap();
        let queries = [keys[0], keys[499], 77_777];
        let out = ix.point_chunk(&queries, true).unwrap();
        for (q, r) in queries.iter().zip(&out.results) {
            assert_eq!(*r, truth.expected_point(*q, true));
        }
        let ranges = [(10, 60), (400, 900), (9, 2)];
        let out = ix.range_chunk(&ranges, false).unwrap();
        for (&(l, u), r) in ranges.iter().zip(&out.results) {
            assert_eq!(*r, truth.expected_range(l, u, false));
        }
    }
}
