//! Configuration of the dynamic-update layer: the wrapped RX configuration
//! plus the automatic-compaction policy.

use rtindex_core::RtIndexConfig;

/// Why a compaction ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionTrigger {
    /// The delta buffer exceeded its entry budget (absolute count or
    /// fraction of the base).
    DeltaOverflow,
    /// Too many base rows were tombstoned.
    DeleteRatio,
    /// [`DynamicRtIndex::compact_now`](crate::DynamicRtIndex::compact_now)
    /// was called.
    Manual,
}

impl CompactionTrigger {
    /// Short display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            CompactionTrigger::DeltaOverflow => "delta-overflow",
            CompactionTrigger::DeleteRatio => "delete-ratio",
            CompactionTrigger::Manual => "manual",
        }
    }
}

/// When the delta layer folds itself back into the BVH.
///
/// Compaction runs after an update batch as soon as *either* threshold is
/// crossed; the merge rebuilds the base index over the live key set through
/// the ordinary `optixAccelBuild` path, so its cost is charged by the same
/// cost model as an explicit [`RtIndex::rebuild`](rtindex_core::RtIndex).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Compact when the delta holds at least this many live entries.
    pub max_delta_entries: usize,
    /// Compact when the delta holds at least this fraction of the base key
    /// count (checked only once the base is non-empty).
    pub max_delta_fraction: f64,
    /// Compact when at least this fraction of base rows is tombstoned.
    pub max_delete_ratio: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            max_delta_entries: 1 << 16,
            max_delta_fraction: 0.25,
            max_delete_ratio: 0.25,
        }
    }
}

impl CompactionPolicy {
    /// A policy that never compacts automatically (updates accumulate until
    /// [`DynamicRtIndex::compact_now`](crate::DynamicRtIndex::compact_now)).
    pub fn never() -> Self {
        CompactionPolicy {
            max_delta_entries: usize::MAX,
            max_delta_fraction: f64::INFINITY,
            max_delete_ratio: f64::INFINITY,
        }
    }

    /// Returns the triggered reason, if the thresholds say it is time to
    /// compact.
    pub fn trigger(
        &self,
        delta_entries: usize,
        base_rows: usize,
        dead_base_rows: usize,
    ) -> Option<CompactionTrigger> {
        if delta_entries >= self.max_delta_entries {
            return Some(CompactionTrigger::DeltaOverflow);
        }
        if base_rows > 0
            && (delta_entries as f64) >= self.max_delta_fraction * base_rows as f64
            && delta_entries > 0
        {
            return Some(CompactionTrigger::DeltaOverflow);
        }
        if base_rows > 0
            && dead_base_rows > 0
            && (dead_base_rows as f64) >= self.max_delete_ratio * base_rows as f64
        {
            return Some(CompactionTrigger::DeleteRatio);
        }
        None
    }
}

/// Complete configuration of a [`DynamicRtIndex`](crate::DynamicRtIndex).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicRtConfig {
    /// Configuration used for the immutable base index (and for every
    /// compaction rebuild).
    pub rx: RtIndexConfig,
    /// Automatic-compaction thresholds.
    pub policy: CompactionPolicy,
    /// Run triggered compactions in the background (two-generation mode):
    /// the current delta is frozen, the new base is rebuilt on a background
    /// thread while reads keep serving from (old base + frozen delta +
    /// fresh delta), and the generations swap atomically once the rebuild
    /// lands — writes stall only for the swap, never for the rebuild.
    ///
    /// Off by default: synchronous compaction keeps rowIDs densely
    /// renumbered after every merge, which the sharded row mirror
    /// (`rtx-shard`) relies on. Enable it for unsharded serving paths where
    /// write-stall latency matters (see `rtx-serve`).
    pub background: bool,
    /// Land a completed background compaction automatically at the start of
    /// the next update batch (the default). Durability wrappers turn this
    /// *off* so the swap point becomes an explicit choice they make — and
    /// log — via [`DynamicRtIndex::poll_compaction`]: replaying the same
    /// batches with swaps forced at the logged positions then reproduces
    /// the exact structural state, independent of background-thread timing.
    ///
    /// [`DynamicRtIndex::poll_compaction`]: crate::DynamicRtIndex::poll_compaction
    pub auto_swap: bool,
}

impl Default for DynamicRtConfig {
    fn default() -> Self {
        DynamicRtConfig {
            rx: RtIndexConfig::default(),
            policy: CompactionPolicy::default(),
            background: false,
            auto_swap: true,
        }
    }
}

impl DynamicRtConfig {
    /// Returns the configuration with a different base-index configuration.
    pub fn with_rx(mut self, rx: RtIndexConfig) -> Self {
        self.rx = rx;
        self
    }

    /// Returns the configuration with a different compaction policy.
    pub fn with_policy(mut self, policy: CompactionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns the configuration with background (two-generation)
    /// compaction enabled or disabled.
    pub fn with_background_compaction(mut self, background: bool) -> Self {
        self.background = background;
        self
    }

    /// Returns the configuration with automatic swap-landing enabled or
    /// disabled (see [`DynamicRtConfig::auto_swap`]).
    pub fn with_auto_swap(mut self, auto_swap: bool) -> Self {
        self.auto_swap = auto_swap;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_has_sane_thresholds() {
        let p = CompactionPolicy::default();
        assert!(p.max_delta_entries > 0);
        assert!(p.max_delta_fraction > 0.0 && p.max_delta_fraction < 1.0);
        assert!(p.max_delete_ratio > 0.0 && p.max_delete_ratio < 1.0);
    }

    #[test]
    fn triggers_fire_on_each_threshold() {
        let p = CompactionPolicy {
            max_delta_entries: 100,
            max_delta_fraction: 0.5,
            max_delete_ratio: 0.5,
        };
        assert_eq!(p.trigger(0, 1000, 0), None);
        assert_eq!(
            p.trigger(100, 1000, 0),
            Some(CompactionTrigger::DeltaOverflow)
        );
        assert_eq!(
            p.trigger(99, 100, 0),
            Some(CompactionTrigger::DeltaOverflow)
        );
        assert_eq!(
            p.trigger(0, 1000, 500),
            Some(CompactionTrigger::DeleteRatio)
        );
        assert_eq!(p.trigger(0, 1000, 499), None);
        // An empty base never triggers the relative thresholds.
        assert_eq!(p.trigger(10, 0, 0), None);
        assert_eq!(CompactionPolicy::never().trigger(1 << 30, 1, 1), None);
    }

    #[test]
    fn trigger_names_are_stable() {
        assert_eq!(CompactionTrigger::DeltaOverflow.name(), "delta-overflow");
        assert_eq!(CompactionTrigger::DeleteRatio.name(), "delete-ratio");
        assert_eq!(CompactionTrigger::Manual.name(), "manual");
    }
}
