//! Composite-key conformance: typed batches against every backend — plain,
//! sharded and durable — answered oracle-exact under multi-column schemas.
//!
//! The oracle here is deliberately *logical*: tuples are matched by
//! column-wise typed comparison (unsigned, signed, byte-string), never by
//! encoding. Agreement with the backends therefore proves the
//! order-preserving encoding end to end — a tuple range answered through
//! 8-byte direct keys or a 32-byte dictionary must equal the answer a
//! human would derive from the typed tuples.
//!
//! Coverage mirrors `trait_conformance.rs`:
//! - a 2-column direct schema (`{u32,u32}`, one limb) on all five plain
//!   backends and the five sharded variants;
//! - a 3-column direct schema (`{u16,u16,u16}`);
//! - a wide dictionary schema (`{u32,i64,str16}`, four limbs) with
//!   negative signed values and string columns;
//! - a durable `+wal:` reopen of a dictionary-mapped composite index, the
//!   KEYDICT sidecar reloading alongside the WAL replay.
//!
//! Per-backend expectations: B+ rejects *direct* composite builds as
//! unsupported key sets (encoded keys occupy the high bytes, overflowing
//! its 32-bit key domain) but serves *wide* schemas (dictionary-mapped
//! keys are small); HT serves full-arity points but rejects every
//! range-compiled op uniformly.

use std::cmp::Ordering;

use proptest::prelude::*;
use rtindex::{
    registry, Device, IndexError, IndexSpec, KeyBound, KeySchema, KeyTuple, KeyValue, LookupResult,
    SecondaryIndex, SpecName, TypedBatch, TypedOp, MISS,
};

/// The sharded variants from the raw-key conformance suite, reused under
/// brace schemas (canonical grammar position: after the shard production).
const SHARDED_BACKENDS: [&str; 5] = ["RX@3", "HT@2", "B+@2", "SA@4:range", "RXD@2:range"];

// ---------------------------------------------------------------------------
// The logical oracle: typed column-wise comparison, no encoding anywhere.
// ---------------------------------------------------------------------------

fn cmp_value(a: &KeyValue, b: &KeyValue) -> Ordering {
    match (a, b) {
        (KeyValue::U64(x), KeyValue::U64(y)) => x.cmp(y),
        (KeyValue::I64(x), KeyValue::I64(y)) => x.cmp(y),
        (KeyValue::Str(x), KeyValue::Str(y)) => x.as_bytes().cmp(y.as_bytes()),
        _ => panic!("oracle compared mismatched column types: {a} vs {b}"),
    }
}

fn cmp_tuple(a: &[KeyValue], b: &[KeyValue]) -> Ordering {
    for (x, y) in a.iter().zip(b) {
        match cmp_value(x, y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

fn bound_holds(value: &KeyValue, lower: &KeyBound, upper: &KeyBound) -> bool {
    let above = match lower {
        KeyBound::Unbounded => true,
        KeyBound::Included(v) => cmp_value(value, v) != Ordering::Less,
        KeyBound::Excluded(v) => cmp_value(value, v) == Ordering::Greater,
    };
    let below = match upper {
        KeyBound::Unbounded => true,
        KeyBound::Included(v) => cmp_value(value, v) != Ordering::Greater,
        KeyBound::Excluded(v) => cmp_value(value, v) == Ordering::Less,
    };
    above && below
}

fn op_matches(op: &TypedOp, tuple: &[KeyValue]) -> bool {
    match op {
        TypedOp::Point(t) => t.as_slice() == tuple,
        TypedOp::Range(lower, upper) => {
            cmp_tuple(lower, tuple) != Ordering::Greater
                && cmp_tuple(tuple, upper) != Ordering::Greater
        }
        TypedOp::Prefix {
            prefix,
            lower,
            upper,
        } => {
            if tuple[..prefix.len()] != prefix[..] {
                return false;
            }
            match tuple.get(prefix.len()) {
                Some(next) => bound_holds(next, lower, upper),
                None => true, // full-arity prefix: pure equality
            }
        }
    }
}

/// Brute-force expected results for a typed batch over the stored tuples:
/// `first_row` is the smallest matching rowID, `value_sum` the wrapping sum
/// when fetching.
fn expected_typed(batch: &TypedBatch, tuples: &[KeyTuple], values: &[u64]) -> Vec<LookupResult> {
    batch
        .ops()
        .iter()
        .map(|op| {
            let mut result = LookupResult::miss();
            for (row, tuple) in tuples.iter().enumerate() {
                if op_matches(op, tuple) {
                    result.first_row = result.first_row.min(row as u32);
                    result.hit_count += 1;
                    if batch.fetches_values() {
                        result.value_sum = result.value_sum.wrapping_add(values[row]);
                    }
                }
            }
            result
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Tuple generators.
// ---------------------------------------------------------------------------

/// `{u32,u32}` tuples: ~`n / 23` rows per leading-column group, second
/// column unique.
fn pair_tuples(n: usize) -> Vec<KeyTuple> {
    (0..n as u64)
        .map(|i| vec![KeyValue::U64((i * 7919) % 23), KeyValue::U64(i)])
        .collect()
}

/// `{u16,u16,u16}` tuples: two grouping columns then a unique tail.
fn triple_tuples(n: usize) -> Vec<KeyTuple> {
    (0..n as u64)
        .map(|i| {
            vec![
                KeyValue::U64(i % 7),
                KeyValue::U64((i * 31) % 11),
                KeyValue::U64(i),
            ]
        })
        .collect()
}

/// `{u32,i64,str16}` tuples: grouped leading column, signed values crossing
/// zero, unique string tail.
fn wide_tuples(n: usize) -> Vec<KeyTuple> {
    (0..n as i64)
        .map(|i| {
            vec![
                KeyValue::U64((i % 13) as u64),
                KeyValue::I64(i * 17 - n as i64),
                KeyValue::Str(format!("name-{i:04}")),
            ]
        })
        .collect()
}

fn value_column(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| i * 1_000 + 7).collect()
}

// ---------------------------------------------------------------------------
// The conformance check.
// ---------------------------------------------------------------------------

/// Point-only typed batch: every fourth stored tuple plus misses made by
/// bumping the last column past any stored value.
fn point_batch(tuples: &[KeyTuple]) -> TypedBatch {
    let mut batch = TypedBatch::new().fetch_values(true);
    for tuple in tuples.iter().step_by(4) {
        batch = batch.point(tuple.clone());
    }
    for tuple in tuples.iter().step_by(97) {
        let mut miss = tuple.clone();
        *miss.last_mut().unwrap() = match miss.last().unwrap() {
            KeyValue::U64(_) => KeyValue::U64(u64::from(u16::MAX)),
            KeyValue::I64(v) => KeyValue::I64(v.wrapping_add(1_000_000)),
            // Stays inside the narrowest str<N> column used here and never
            // collides with a generated value (those start with a letter
            // below 'z').
            KeyValue::Str(s) => KeyValue::Str(format!("z{}", &s[..s.len().min(7)])),
        };
        batch = batch.point(miss);
    }
    batch
}

/// Mixed prefix/range batch over the leading-column groups: pure prefixes,
/// inclusive / exclusive prefix ranges, a full-tuple range, an inverted
/// (empty) range and an absent prefix group.
fn range_batch(tuples: &[KeyTuple], groups: u64) -> TypedBatch {
    let mut batch = TypedBatch::new().fetch_values(true);
    for g in 0..groups {
        batch = batch.prefix([KeyValue::U64(g)]);
    }
    // Bounds on the column after the prefix: the generators keep column 1
    // unsigned in the direct schemas and signed in the wide schema.
    let second = |t: &KeyTuple| t[1].clone();
    let sorted_seconds = {
        let mut s: Vec<KeyValue> = tuples.iter().map(second).collect();
        s.sort_by(cmp_value);
        s
    };
    if let (Some(lo), Some(hi)) = (sorted_seconds.first(), sorted_seconds.last()) {
        batch = batch
            .prefix_range([KeyValue::U64(1)], lo.clone()..=hi.clone())
            .prefix_range([KeyValue::U64(2)], lo.clone()..hi.clone())
            .prefix_range(
                [KeyValue::U64(3)],
                (KeyBound::Excluded(lo.clone()), KeyBound::Unbounded),
            );
    }
    let mut lo_tuple = tuples[0].clone();
    let mut hi_tuple = tuples[tuples.len() / 2].clone();
    if cmp_tuple(&lo_tuple, &hi_tuple) == Ordering::Greater {
        std::mem::swap(&mut lo_tuple, &mut hi_tuple);
    }
    batch = batch.range(lo_tuple.clone(), hi_tuple.clone());
    batch = batch.range(hi_tuple, lo_tuple.clone()); // inverted unless equal
    batch.prefix([KeyValue::U64(groups + 50)]) // absent group
}

fn composite_check(
    label: &str,
    ix: &dyn SecondaryIndex,
    schema: &KeySchema,
    tuples: &[KeyTuple],
    values: &[u64],
    groups: u64,
) {
    assert_eq!(ix.key_count(), tuples.len(), "{label}: key count");
    assert_eq!(ix.key_schema(), Some(schema), "{label}: schema surfaced");

    // Full-arity points compile to encoded points: every backend serves
    // them, including HT.
    let points = point_batch(tuples);
    let out = ix.execute_typed(&points).expect("typed point batch");
    assert_eq!(
        out.results,
        expected_typed(&points, tuples, values),
        "{label}: typed points"
    );

    let mixed = range_batch(tuples, groups);
    if ix.capabilities().range_lookups {
        let out = ix.execute_typed(&mixed).expect("typed mixed batch");
        assert_eq!(
            out.results,
            expected_typed(&mixed, tuples, values),
            "{label}: typed prefixes and ranges"
        );
        let absent = out.results.last().expect("non-empty batch");
        assert_eq!(absent.first_row, MISS, "{label}: absent prefix is a miss");

        let chunked = ix.execute_typed(&mixed.clone().with_chunk_size(5)).unwrap();
        assert_eq!(chunked.results, out.results, "{label}: chunked == whole");
    } else {
        let err = ix.execute_typed(&mixed).map(|_| ()).unwrap_err();
        assert!(
            matches!(err, IndexError::UnsupportedOperation { operation, .. }
                if operation == "range lookups"),
            "{label}: range rejection must be uniform"
        );
    }
}

/// Runs one schema over the five plain backends and five sharded variants.
/// B+ may reject the build — only as an unsupported key set, and only when
/// `bplus_rejects` says the schema's encoded image overflows 32-bit keys.
fn run_schema(schema_text: &str, tuples: Vec<KeyTuple>, groups: u64, bplus_rejects: bool) {
    let device = Device::default_eval();
    let registry = registry();
    let schema = KeySchema::parse(schema_text).expect("schema parses");
    let values = value_column(tuples.len());
    let spec = IndexSpec::typed_with_values(&device, schema.clone(), &tuples, &values);

    let mut served = 0;
    let all_names = registry
        .backends()
        .into_iter()
        .map(str::to_string)
        .chain(SHARDED_BACKENDS.iter().map(|s| s.to_string()));
    for base in all_names {
        let name = format!("{base}{schema_text}");
        match registry.build(&name, &spec) {
            Ok(ix) => {
                served += 1;
                assert_eq!(ix.name(), name, "{name}: display name");
                composite_check(&name, ix.as_ref(), &schema, &tuples, &values, groups);
            }
            Err(err) => {
                assert!(
                    err.is_unsupported_key_set(),
                    "{name}: build may only fail as unsupported, got {err}"
                );
                assert!(
                    base.starts_with("B+") && bplus_rejects,
                    "{name}: only B+ rejects, and only direct composite schemas"
                );
            }
        }
    }
    assert_eq!(served, if bplus_rejects { 8 } else { 10 }, "{schema_text}");
}

#[test]
fn two_column_direct_schema_conforms_on_every_backend() {
    // {u32,u32} packs into one limb: the direct codec, no dictionary.
    // Encoded keys occupy the high bytes, so B+ (32-bit key domain)
    // rejects the build — plain and sharded alike.
    run_schema("{u32,u32}", pair_tuples(600), 23, true);
}

#[test]
fn three_column_direct_schema_conforms_on_every_backend() {
    run_schema("{u16,u16,u16}", triple_tuples(500), 7, true);
}

#[test]
fn wide_dictionary_schema_conforms_on_every_backend() {
    // {u32,i64,str16} spans 28 raw bytes → a 32-byte bucket, four limbs:
    // the dictionary codec. Mapped keys are dense and small, so every
    // backend serves the build — including B+.
    run_schema("{u32,i64,str16}", wide_tuples(400), 13, false);
}

#[test]
fn durable_composite_index_reopens_with_its_key_dictionary() {
    let device = Device::default_eval();
    let registry = registry();
    let dir = std::env::temp_dir().join(format!("rtx-composite-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // {u32,str8} spans 12 raw bytes → a 16-byte bucket, two limbs: the
    // dictionary codec, persisted in the KEYDICT sidecar next to the WAL.
    let schema = KeySchema::parse("{u32,str8}").unwrap();
    let name = format!("RXD{schema}+wal:{}", dir.display());
    let tuple = |g: u64, s: &str| vec![KeyValue::U64(g), KeyValue::Str(s.to_string())];

    let mut tuples: Vec<KeyTuple> = (0..200u64)
        .map(|i| tuple(i % 5, &format!("row{i:03}")))
        .collect();
    let mut values = value_column(tuples.len());

    // First life: bulk build, then typed writes that grow the dictionary.
    {
        let spec = IndexSpec::typed_with_values(&device, schema.clone(), &tuples, &values);
        let mut ix = registry.build_updatable(&name, &spec).expect("first life");

        let fresh: Vec<KeyTuple> = (0..40u64)
            .map(|i| tuple(7, &format!("new{i:02}")))
            .collect();
        let fresh_values: Vec<u64> = (0..40u64).map(|i| i + 5).collect();
        ix.insert_rows(&fresh, &fresh_values).unwrap();
        tuples.extend(fresh.iter().cloned());
        values.extend(fresh_values.iter().copied());

        // Deleting an unknown tuple is a no-op and must not grow the dict.
        ix.delete_rows(&[tuple(99, "ghost")]).unwrap();

        let batch = TypedBatch::new()
            .prefix([KeyValue::U64(7)])
            .point(tuple(7, "new00"))
            .fetch_values(true);
        let out = ix.execute_typed(&batch).unwrap();
        assert_eq!(out.results, expected_typed(&batch, &tuples, &values));
    }

    // Second life: reopen from disk. The WAL replays the inner index; the
    // sidecar restores the tuple dictionary — typed queries keep working.
    {
        let spec = IndexSpec::keys_only(&device, &[]);
        let ix = registry.build_updatable(&name, &spec).expect("reopen");
        assert_eq!(ix.key_count(), tuples.len(), "reopened key count");
        assert_eq!(ix.key_schema(), Some(&schema));

        let batch = TypedBatch::new()
            .prefix([KeyValue::U64(7)])
            .prefix([KeyValue::U64(3)])
            .point(tuple(7, "new13"))
            .point(tuple(99, "ghost")) // never inserted: a miss
            .fetch_values(true);
        let out = ix.execute_typed(&batch).unwrap();
        let want = expected_typed(&batch, &tuples, &values);
        assert_eq!(out.results, want, "reopened answers");
        assert!(out.results[0].is_hit() && out.results[2].is_hit());
        assert!(!out.results[3].is_hit());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Satellite: IndexSpec names round-trip the full registry grammar.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every name the grammar can produce parses into a `SpecName` whose
    /// `Display` reprints it canonically — and reparsing the display is a
    /// fixed point.
    #[test]
    fn prop_spec_names_round_trip_parse_and_display(
        backend_i in 0usize..5,
        builder_i in 0usize..3,
        shard_kind in 0usize..4,
        shard_n in 1usize..17,
        // (type selector, str width): widths are capped so four columns
        // never exceed the 32-byte raw-width limit.
        column_picks in prop::collection::vec((0usize..6, 1usize..9), 0usize..4),
        durable in any::<bool>(),
    ) {
        const BACKENDS: [&str; 5] = ["RX", "HT", "B+", "SA", "RXD"];
        const BUILDERS: [&str; 3] = ["", ":sah", ":lbvh"];
        const TYPES: [&str; 5] = ["u8", "u16", "u32", "u64", "i64"];
        let backend = BACKENDS[backend_i];
        let builder = BUILDERS[builder_i];
        let shard = match shard_kind {
            0 => String::new(),
            1 => format!("@{shard_n}"),
            2 => format!("@{shard_n}:hash"),
            _ => format!("@{shard_n}:range"),
        };
        let columns: Vec<String> = column_picks
            .iter()
            .map(|&(t, n)| if t < 5 { TYPES[t].to_string() } else { format!("str{n}") })
            .collect();
        let schema = if columns.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", columns.join(","))
        };
        let wal = if durable { "+wal:/tmp/rtx-spec-roundtrip" } else { "" };
        let name = format!("{backend}{builder}{shard}{schema}{wal}");
        let parsed = SpecName::parse(&name).expect("grammar name parses");
        // Hash partitioning is the default and prints bare — the one
        // normalization Display applies; everything else is verbatim.
        let canonical = format!("{backend}{builder}{}{schema}{wal}", shard.replace(":hash", ""));
        prop_assert_eq!(parsed.to_string(), canonical, "display reprints canonically");
        let reparsed = SpecName::parse(&parsed.to_string()).expect("display reparses");
        prop_assert_eq!(parsed, reparsed, "parse∘display is a fixed point");
    }
}
