//! Index-based join: the batch-lookup workload the paper motivates ("batch
//! processing workloads, which, for instance, arise naturally in index-based
//! joins, are able to fully saturate the GPU").
//!
//! An orders table is joined with a customers table through a secondary
//! index on the customers' key column: every order row produces one point
//! lookup, and the join aggregates a value from the matching customer row.
//! The probe runs through the unified `SecondaryIndex` API, so the same
//! code drives RX and the hash-table baseline.
//!
//! Run with: `cargo run --release --example index_join`

use rtindex::{registry, Device, IndexSpec, QueryBatch};
use rtx_workloads as wl;

fn main() {
    let device = Device::default_eval();
    let seed = 11;

    // Build side: customers(customer_key, credit_limit). 2^15 customers.
    let customers = 1usize << 15;
    let customer_keys = wl::dense_shuffled(customers, seed);
    let credit_limits = wl::value_column(customers, seed + 1);

    // Probe side: orders(customer_fk), 2^17 rows, Zipf-skewed foreign keys —
    // a few big customers place most orders.
    let orders = 1usize << 17;
    let order_fks = wl::point_lookups_zipf(&customer_keys, orders, 1.0, seed + 2);

    println!("joining {orders} orders against {customers} customers (Zipf 1.0 foreign keys)");

    // Index the build side once per backend, probe with the whole orders
    // batch; under heavy skew RX narrows HT's usual lead (Figure 16).
    let registry = registry();
    let spec = IndexSpec::with_values(&device, &customer_keys, &credit_limits);
    let probe = QueryBatch::of_points(&order_fks).fetch_values(true);
    let truth = wl::GroundTruth::new(&customer_keys, Some(&credit_limits));

    let rx = registry.build("RX", &spec).expect("build side");
    let ht = registry.build("HT", &spec).expect("build side");
    let mut whole = None;
    for index in [&rx, &ht] {
        let out = index.execute(&probe).expect("probe");
        println!(
            "{} probe: {} matches, aggregated credit limit {}, simulated {:.3} ms",
            index.name(),
            out.hit_count(),
            out.total_value_sum(),
            out.sim_ms()
        );

        // Verify the join result against the oracle.
        assert_eq!(out.total_value_sum(), truth.batch_point_sum(&order_fks));
        assert_eq!(
            out.hit_count(),
            orders,
            "every order has a matching customer"
        );
        if whole.is_none() {
            whole = Some(out);
        }
    }
    println!("join results verified: OK");

    // Splitting the probe side into small batches wastes GPU resources
    // (Figure 13): the chunked-execution knob shows the effect without any
    // manual batch bookkeeping. Reuses the RX outcome measured above.
    let whole = whole.expect("RX probed first");
    let split = rx
        .execute(&probe.clone().with_chunk_size(orders / 64))
        .expect("64 launches");
    assert_eq!(
        whole.results, split.results,
        "chunking never changes answers"
    );
    println!(
        "probing in 64 chunks: {:.3} ms vs. {:.3} ms in one batch",
        split.sim_ms(),
        whole.sim_ms()
    );
}
