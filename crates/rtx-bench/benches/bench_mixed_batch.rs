//! Mixed-batch benchmarks over the unified `SecondaryIndex` API: one
//! submission mixing point lookups, range lookups and a value fetch,
//! executed on every range-capable backend from the registry, plus the
//! chunked-execution path and the registry build itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_device::Device;
use rtx_harness::registry;
use rtx_query::{IndexSpec, QueryBatch};
use rtx_workloads as wl;

/// A mixed 3:1 point/range submission with value fetch over a dense domain.
fn mixed_batch(keys: &[u64], seed: u64) -> QueryBatch {
    let n = keys.len() as u64;
    let points = wl::point_lookups(keys, keys.len() / 2, seed);
    let ranges = wl::range_lookups(n, keys.len() / 6, 32, seed + 1);
    QueryBatch::new()
        .points(points)
        .ranges(ranges)
        .fetch_values(true)
}

fn bench_mixed_batch_backends(c: &mut Criterion) {
    let device = Device::default_eval();
    let keys = wl::dense_shuffled(1 << 16, 42);
    let values = wl::value_column(keys.len(), 43);
    let batch = mixed_batch(&keys, 44);
    let registry = registry();
    let spec = IndexSpec::with_values(&device, &keys, &values);

    let mut group = c.benchmark_group("mixed_batch");
    group.throughput(Throughput::Elements(batch.len() as u64));
    for name in registry.backends() {
        let index = registry.build(name, &spec).expect("build");
        if !index.capabilities().range_lookups {
            continue;
        }
        group.bench_with_input(BenchmarkId::from_parameter(name), &batch, |b, batch| {
            b.iter(|| index.execute(batch).unwrap())
        });
    }
    group.finish();
}

fn bench_mixed_batch_chunking(c: &mut Criterion) {
    let device = Device::default_eval();
    let keys = wl::dense_shuffled(1 << 16, 42);
    let values = wl::value_column(keys.len(), 43);
    let registry = registry();
    let index = registry
        .build("RX", &IndexSpec::with_values(&device, &keys, &values))
        .expect("build");

    let mut group = c.benchmark_group("mixed_batch_chunking");
    for chunk in [0usize, 1 << 10, 1 << 13] {
        let batch = mixed_batch(&keys, 44).with_chunk_size(chunk);
        group.throughput(Throughput::Elements(batch.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &batch, |b, batch| {
            b.iter(|| index.execute(batch).unwrap())
        });
    }
    group.finish();
}

fn bench_registry_build(c: &mut Criterion) {
    let device = Device::default_eval();
    let keys = wl::dense_shuffled(1 << 14, 42);
    let values = wl::value_column(keys.len(), 43);
    let registry = registry();
    let spec = IndexSpec::with_values(&device, &keys, &values);

    let mut group = c.benchmark_group("registry_build");
    group.throughput(Throughput::Elements(keys.len() as u64));
    for name in registry.backends() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| registry.build(name, &spec).unwrap())
        });
    }
    group.finish();
}

/// Shared Criterion configuration: small sample counts and short measurement
/// windows keep `cargo bench --workspace` runnable in CI while still
/// producing stable medians for the simulated workloads.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets =
    bench_mixed_batch_backends,
    bench_mixed_batch_chunking,
    bench_registry_build
}
criterion_main!(benches);
