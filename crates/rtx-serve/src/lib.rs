//! # rtx-serve
//!
//! The concurrent multi-client query service of the RTIndeX reproduction:
//! cross-client batch coalescing, admission control and fenced writes over
//! any [`SecondaryIndex`](rtx_query::SecondaryIndex) backend.
//!
//! The paper's index wins by amortising fixed per-launch work over *large*
//! GPU-submitted batches — but service traffic arrives as millions of
//! *small* per-client submissions. This crate closes that gap the way
//! streaming databases front their storage engines with a concurrent
//! ingest/serve layer:
//!
//! * every client holds a clonable [`ClientHandle`] and submits small
//!   [`QueryBatch`](rtx_query::QueryBatch)es into a bounded MPMC queue;
//! * a **coalescer thread** drains the queue, fuses many client batches
//!   into one large backend submission
//!   ([`FusedBatch`](rtx_query::FusedBatch)), executes it once — on a plain
//!   backend, or a sharded one so fusion and sharding compose — and
//!   scatters the per-client slices back through response channels;
//! * **admission control** bounds the queue
//!   ([`ServiceConfig::max_queue_depth`]): overload surfaces as
//!   [`ServeError::Overloaded`] backpressure instead of unbounded memory;
//! * **writes are serialized and fenced**: on an
//!   [`UpdatableIndex`](rtx_query::UpdatableIndex) backend, a write batch
//!   never overtakes reads queued before it and is fully visible to reads
//!   queued after it;
//! * a [`TableService`] applies the same queue discipline to a whole
//!   multi-index [`Table`](rtx_table::Table): transactional CDC ingest
//!   batches ride the write fence, queries run the table's cost-based
//!   planner, and the planner's routing decisions surface in the service
//!   counters ([`ServiceStats`]).
//!
//! ```
//! use rtx_query::{IndexSpec, QueryBatch, Registry};
//! use rtx_serve::{QueryService, ServiceConfig};
//!
//! let mut registry = Registry::new();
//! gpu_baselines::register_baselines(&mut registry);
//! rtx_shard::install_sharding(&mut registry);
//!
//! let device = gpu_device::Device::default_eval();
//! let keys: Vec<u64> = (0..10_000).collect();
//! let backend = registry
//!     .build("SA@2", &IndexSpec::keys_only(&device, &keys))
//!     .unwrap();
//!
//! // One service, any number of concurrent clients.
//! let service = QueryService::start(backend, ServiceConfig::default());
//! let results = std::thread::scope(|scope| {
//!     let workers: Vec<_> = (0..4)
//!         .map(|c| {
//!             let handle = service.handle();
//!             scope.spawn(move || {
//!                 handle
//!                     .query(QueryBatch::new().point(c * 100).range(0, 9))
//!                     .unwrap()
//!             })
//!         })
//!         .collect();
//!     workers.into_iter().map(|w| w.join().unwrap()).collect::<Vec<_>>()
//! });
//! for out in &results {
//!     assert!(out.results[0].is_hit());
//!     assert_eq!(out.results[1].hit_count, 10);
//! }
//! ```

pub mod adaptive;
pub mod config;
pub mod error;
pub mod service;
pub mod table_service;

pub use adaptive::{AdaptiveLingerConfig, LingerPolicy};
pub use config::{RebalanceConfig, ServiceConfig};
pub use error::ServeError;
pub use service::{ClientHandle, PendingQuery, QueryService, RetryPolicy, ServiceStats};
pub use table_service::{PendingTableQuery, TableClient, TableService};
