//! The [`SecondaryIndex`] and [`UpdatableIndex`] traits.
//!
//! Every backend (RX and the three GPU baselines, plus the dynamic delta
//! index) implements [`SecondaryIndex`]; the experiment harness, the
//! examples and the acceptance tests drive them exclusively through
//! `Box<dyn SecondaryIndex>` trait objects obtained from the
//! [`Registry`](crate::registry::Registry).

use optix_sim::LaunchMetrics;

use crate::arena::ExecArena;
use crate::batch::{QueryBatch, QueryOp, QueryOps};
use crate::error::IndexError;
use crate::keys::{KeySchema, KeyTuple, TypedBatch};
use crate::shard::{RebalanceReport, ShardLoad};
use crate::types::{
    BatchOutcome, Capabilities, DurableStats, IndexBuildMetrics, MemoryUsage, QueryOutcome,
    UpdateReport,
};

/// A read-only secondary index over a `(key, optional value)` column pair.
///
/// Implementors provide the two homogeneous execution hooks
/// ([`point_chunk`](SecondaryIndex::point_chunk) /
/// [`range_chunk`](SecondaryIndex::range_chunk)); the mixed-batch entry
/// point [`execute`](SecondaryIndex::execute) is provided on top of them,
/// so splitting, chunking and result scattering behave identically across
/// backends.
pub trait SecondaryIndex: Send + Sync {
    /// Short display name ("RX", "HT", "B+", "SA", "RXD", or a sharded
    /// spec such as "RX@8") used in report tables and error messages.
    fn name(&self) -> &str;

    /// Number of indexed keys.
    fn key_count(&self) -> usize;

    /// Device memory the index occupies after construction.
    fn memory_bytes(&self) -> u64;

    /// Metrics captured while building.
    fn build_metrics(&self) -> IndexBuildMetrics;

    /// What the backend supports.
    fn capabilities(&self) -> Capabilities;

    /// Whether the index was built with a value column (required for
    /// batches submitted with [`QueryBatch::fetch_values`]).
    fn has_value_column(&self) -> bool;

    /// Structural memory breakdown (base / delta / tombstones / WAL
    /// buffer). The default attributes [`memory_bytes`] wholesale to the
    /// base, which is correct for monolithic read-only backends; layered
    /// backends override this with a real split.
    ///
    /// [`memory_bytes`]: SecondaryIndex::memory_bytes
    fn memory_usage(&self) -> MemoryUsage {
        MemoryUsage::base_only(self.memory_bytes())
    }

    /// Durability counters, or `None` for a memory-only index. Overridden
    /// by WAL-backed wrappers.
    fn durability_stats(&self) -> Option<DurableStats> {
        None
    }

    /// Per-shard load snapshot (op and row counters), or `None` for an
    /// unsharded backend. Overridden by the sharded wrapper; the service
    /// layer polls this to surface a load-imbalance ratio and drive
    /// hot-shard rebalancing.
    fn shard_load(&self) -> Option<ShardLoad> {
        None
    }

    /// The typed key schema of this index, or `None` for a raw-`u64` index
    /// (whose implicit schema is `{u64}`). Overridden by the composite
    /// wrapper; plain backends never carry one.
    fn key_schema(&self) -> Option<&KeySchema> {
        None
    }

    /// Executes a typed batch: point, range and prefix-range operations
    /// over the index's [`KeySchema`], compiled into encoded `u64`
    /// operations before any backend hook runs.
    ///
    /// The default compiles against [`key_schema`](SecondaryIndex::key_schema)
    /// (falling back to the implicit `{u64}` schema), which covers every
    /// single-limb direct-codec schema on every backend; wide multi-limb
    /// schemas need the dictionary state held by the composite wrapper,
    /// which overrides this, so reaching the default with one is an error
    /// telling the caller to build through the registry.
    fn execute_typed(&self, batch: &TypedBatch) -> Result<QueryOutcome, IndexError> {
        let compiled = match self.key_schema() {
            Some(schema) => schema.compile(batch)?,
            None => KeySchema::raw_u64().compile(batch)?,
        };
        self.execute(&compiled)
    }

    /// Executes one homogeneous chunk of point lookups.
    ///
    /// Execution hook called by [`execute`](SecondaryIndex::execute);
    /// `fetch_values` is only ever true when
    /// [`has_value_column`](SecondaryIndex::has_value_column) is. Callers
    /// should prefer [`execute`](SecondaryIndex::execute).
    fn point_chunk(&self, queries: &[u64], fetch_values: bool) -> Result<BatchOutcome, IndexError>;

    /// Executes one homogeneous chunk of inclusive range lookups.
    ///
    /// Execution hook called by [`execute`](SecondaryIndex::execute); only
    /// invoked when [`Capabilities::range_lookups`] is set.
    fn range_chunk(
        &self,
        ranges: &[(u64, u64)],
        fetch_values: bool,
    ) -> Result<BatchOutcome, IndexError>;

    /// Executes a mixed batch: point and range lookups in one submission,
    /// with an optional value fetch.
    ///
    /// Equivalent to [`execute_in`](SecondaryIndex::execute_in) with a
    /// fresh throwaway [`ExecArena`]; callers on a hot path should hold an
    /// arena and call `execute_in` directly to skip the per-submission
    /// scratch allocations.
    fn execute(&self, batch: &QueryBatch) -> Result<QueryOutcome, IndexError> {
        self.execute_in(batch, &mut ExecArena::new())
    }

    /// Executes a mixed batch using caller-provided scratch.
    ///
    /// The default implementation regroups the operations into homogeneous
    /// runs inside `arena` (cleared and refilled — reuse is always safe),
    /// splits each run into chunks of at most [`QueryBatch::chunk_size`]
    /// operations, executes the chunks through the backend hooks —
    /// **concurrently** over the [`gpu_device`] worker pool when a run
    /// splits into ≥ 2 chunks — then merges their metrics and scatters the
    /// per-chunk results back into submission order. Scatter is by
    /// submission slot, so concurrent chunk execution cannot reorder
    /// results; chunk metrics are merged in chunk order so the outcome is
    /// bit-identical to sequential execution.
    fn execute_in(
        &self,
        batch: &QueryBatch,
        arena: &mut ExecArena,
    ) -> Result<QueryOutcome, IndexError> {
        arena.clear();
        let mut has_range_op = false;
        for (slot, op) in batch.ops().iter().enumerate() {
            match *op {
                QueryOp::Point(key) => {
                    arena.point_slots.push(slot);
                    arena.point_keys.push(key);
                }
                QueryOp::Range(lower, upper) => {
                    has_range_op = true;
                    // An inverted range (`lower > upper`) is empty by
                    // definition; its slot stays the pre-filled miss on
                    // every backend instead of reaching backend-dependent
                    // handling.
                    if lower <= upper {
                        arena.range_slots.push(slot);
                        arena.range_bounds.push((lower, upper));
                    }
                }
            }
        }
        execute_grouped(
            self,
            arena,
            batch.len(),
            has_range_op,
            batch.fetches_values(),
            batch.chunk_size(),
        )
    }

    /// Executes a pre-grouped SoA op stream ([`QueryOps`]) using
    /// caller-provided scratch. Same semantics as
    /// [`execute_in`](SecondaryIndex::execute_in); the dense point-key run
    /// is copied into the arena wholesale and only the order-tag bitmap is
    /// walked to derive the slot maps, so no per-op enum dispatch happens
    /// on the execution path.
    fn execute_ops_in(
        &self,
        ops: &QueryOps,
        arena: &mut ExecArena,
    ) -> Result<QueryOutcome, IndexError> {
        arena.clear();
        arena.point_keys.extend_from_slice(ops.points());
        let bounds = ops.ranges();
        let mut next_range = 0usize;
        for slot in 0..ops.len() {
            if ops.is_range(slot) {
                let (lower, upper) = bounds[next_range];
                next_range += 1;
                // Inverted ranges stay pre-filled misses (see `execute_in`).
                if lower <= upper {
                    arena.range_slots.push(slot);
                    arena.range_bounds.push((lower, upper));
                }
            } else {
                arena.point_slots.push(slot);
            }
        }
        execute_grouped(
            self,
            arena,
            ops.len(),
            ops.range_count() > 0,
            ops.fetches_values(),
            ops.chunk_size(),
        )
    }
}

/// The shared mixed-batch execution core: validates the request against the
/// backend's capabilities, then runs the point and range runs grouped in
/// `arena` and scatters their results into one submission-order outcome.
fn execute_grouped<I: SecondaryIndex + ?Sized>(
    index: &I,
    arena: &ExecArena,
    total_ops: usize,
    has_range_op: bool,
    fetch: bool,
    chunk_size: Option<usize>,
) -> Result<QueryOutcome, IndexError> {
    if fetch && !index.has_value_column() {
        return Err(IndexError::NoValueColumn {
            backend: index.name().into(),
        });
    }
    if has_range_op && !index.capabilities().range_lookups {
        return Err(IndexError::UnsupportedOperation {
            backend: index.name().into(),
            operation: "range lookups",
        });
    }

    let chunk = chunk_size.unwrap_or(usize::MAX);
    let mut outcome = QueryOutcome {
        // Pre-fill with misses so a (buggy) backend that under-reports
        // can never leave a slot looking like a hit of rowID 0 — and
        // under-reporting is caught below regardless.
        results: vec![crate::types::LookupResult::miss(); total_ops],
        metrics: LaunchMetrics::default(),
    };
    scatter_chunks(
        index.name(),
        &arena.point_slots,
        &mut outcome,
        chunk,
        |lo, hi| index.point_chunk(&arena.point_keys[lo..hi], fetch),
    )?;
    scatter_chunks(
        index.name(),
        &arena.range_slots,
        &mut outcome,
        chunk,
        |lo, hi| index.range_chunk(&arena.range_bounds[lo..hi], fetch),
    )?;
    Ok(outcome)
}

/// Runs one homogeneous operation run in chunks of at most `chunk`
/// operations, scattering every chunk's results into the submission-order
/// `slots` of `outcome` and merging the launch metrics.
///
/// A run that splits into ≥ 2 chunks executes them concurrently on the
/// shared [`gpu_device`] worker pool; because each chunk's results land in
/// its own submission slots and metrics are merged in chunk order after all
/// chunks return, the outcome is identical to sequential execution. Errors
/// are reported in chunk order so failure behaviour is deterministic too.
///
/// A backend whose chunk hook returns the wrong number of results is an
/// error, not silent data loss — `SecondaryIndex` is a public trait, so
/// this contract is enforced in release builds too.
fn scatter_chunks<F>(
    backend: &str,
    slots: &[usize],
    outcome: &mut QueryOutcome,
    chunk: usize,
    run: F,
) -> Result<(), IndexError>
where
    F: Fn(usize, usize) -> Result<BatchOutcome, IndexError> + Sync,
{
    if slots.is_empty() {
        return Ok(());
    }
    let chunks = slots.len().div_ceil(chunk.max(1));
    let parts: Vec<Result<BatchOutcome, IndexError>> = if chunks >= 2 {
        gpu_device::parallel_tasks(chunks, |c| {
            let lo = c * chunk;
            let hi = slots.len().min(lo + chunk);
            run(lo, hi)
        })
    } else {
        vec![run(0, slots.len())]
    };

    // Sequential scatter + metric merge in chunk order keeps the outcome
    // (and any error) deterministic regardless of execution interleaving.
    let mut lo = 0usize;
    for part in parts {
        let hi = slots.len().min(lo.saturating_add(chunk));
        let part = part?;
        if part.results.len() != hi - lo {
            return Err(IndexError::Backend {
                backend: backend.into(),
                message: format!(
                    "chunk returned {} results for {} operations",
                    part.results.len(),
                    hi - lo
                ),
            });
        }
        for (slot, result) in slots[lo..hi].iter().zip(part.results) {
            outcome.results[*slot] = result;
        }
        outcome.metrics.merge(&part.metrics);
        lo = hi;
    }
    Ok(())
}

/// A secondary index that additionally supports batched writes.
///
/// Mirrors the update model of the delta layer: inserts append fresh rows,
/// deletes remove every live row holding a key, upserts do both. Each batch
/// may trigger a structural reorganisation (compaction), reported in the
/// returned [`UpdateReport`].
pub trait UpdatableIndex: SecondaryIndex {
    /// Inserts a batch of `(key, value)` rows.
    fn insert(&mut self, keys: &[u64], values: &[u64]) -> Result<UpdateReport, IndexError>;

    /// Deletes every live entry whose key appears in `keys` (all
    /// duplicates, wherever they live). Unknown keys are ignored.
    fn delete(&mut self, keys: &[u64]) -> Result<UpdateReport, IndexError>;

    /// Upserts a batch: every key's existing entries are deleted, then one
    /// fresh `(key, value)` row is inserted per pair.
    fn upsert(&mut self, keys: &[u64], values: &[u64]) -> Result<UpdateReport, IndexError>;

    /// Inserts a batch of typed `(tuple, value)` rows, encoding each tuple
    /// against the index's schema first. The default covers direct-codec
    /// schemas (including the implicit `{u64}`); the composite wrapper
    /// overrides it to allocate dictionary slots for wide schemas.
    fn insert_rows(
        &mut self,
        rows: &[KeyTuple],
        values: &[u64],
    ) -> Result<UpdateReport, IndexError> {
        let keys = typed_write_schema(self).encode_rows(rows)?;
        self.insert(&keys, values)
    }

    /// Deletes every live entry matching one of the typed tuples. Unknown
    /// tuples are ignored, mirroring [`delete`](UpdatableIndex::delete).
    fn delete_rows(&mut self, rows: &[KeyTuple]) -> Result<UpdateReport, IndexError> {
        let keys = typed_write_schema(self).encode_rows(rows)?;
        self.delete(&keys)
    }

    /// Upserts a batch of typed `(tuple, value)` rows (see
    /// [`upsert`](UpdatableIndex::upsert)).
    fn upsert_rows(
        &mut self,
        rows: &[KeyTuple],
        values: &[u64],
    ) -> Result<UpdateReport, IndexError> {
        let keys = typed_write_schema(self).encode_rows(rows)?;
        self.upsert(&keys, values)
    }

    /// Lands any *completed* deferred reorganisation (e.g. a background
    /// compaction whose swap is ready) without blocking, returning how many
    /// landed. The default — for backends without deferred reorganisation —
    /// lands nothing.
    ///
    /// Durable wrappers call this *before* logging each update batch so the
    /// swap point becomes an explicit WAL record and replay can reproduce
    /// the exact structural state.
    fn poll_reorganisation(&mut self) -> Result<u64, IndexError> {
        Ok(0)
    }

    /// Waits for any in-flight deferred reorganisation to complete and
    /// lands it, returning how many landed. Default: nothing to wait for.
    fn await_reorganisation(&mut self) -> Result<u64, IndexError> {
        Ok(0)
    }

    /// True while a deferred reorganisation (background compaction rebuild)
    /// is in flight but has not landed. Durable wrappers compare this
    /// before and after a batch to detect the *freeze* point and annotate
    /// their log. Default: never.
    fn reorganisation_in_flight(&self) -> bool {
        false
    }

    /// Forces a full synchronous reorganisation (merge delta + drop
    /// tombstones), making the structural state canonical. Backends without
    /// an explicit compaction report `UnsupportedOperation`.
    fn compact(&mut self) -> Result<UpdateReport, IndexError> {
        Err(IndexError::UnsupportedOperation {
            backend: self.name().to_string().into(),
            operation: "explicit compaction",
        })
    }

    /// The live `(key, value)` rows in rowID order — but only when the
    /// index is in a *clean* state: empty delta, no tombstones, rowIDs
    /// dense `0..n`, so that a fresh build over exactly these columns
    /// reproduces the index (the snapshot contract). Returns `None` in any
    /// dirty state; callers compact first. Valueless indexes report 0
    /// values. The default (`None`) marks a backend as non-snapshottable.
    fn checkpoint_rows(&self) -> Option<Vec<(u64, u64)>> {
        None
    }

    /// Asks a durable wrapper to snapshot now (compacting first if
    /// needed) and truncate its WAL, returning the number of snapshots
    /// written. A memory-only index has nothing to do. `rtx-serve` routes
    /// `ClientHandle::checkpoint` here through the write fence.
    fn checkpoint(&mut self) -> Result<u64, IndexError> {
        Ok(0)
    }

    /// Rebalances row placement across shards when the backend detects a
    /// sustained load imbalance (see
    /// [`shard_load`](SecondaryIndex::shard_load)), migrating rows from hot
    /// shards to cold ones while preserving every global rowID. The default
    /// — for unsharded backends — has nothing to move and reports an empty
    /// pass. `rtx-serve` calls this through the write fence, so reads never
    /// observe a half-migrated layout.
    fn rebalance_shards(&mut self) -> Result<RebalanceReport, IndexError> {
        Ok(RebalanceReport::default())
    }
}

/// The schema the provided typed-write defaults encode against: the
/// index's own schema, or the implicit `{u64}` for legacy indexes.
fn typed_write_schema<I: UpdatableIndex + ?Sized>(index: &I) -> KeySchema {
    index
        .key_schema()
        .cloned()
        .unwrap_or_else(KeySchema::raw_u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{LookupResult, MISS};

    /// A trivial in-memory backend used to exercise the provided `execute`.
    struct VecIndex {
        keys: Vec<u64>,
        values: Option<Vec<u64>>,
        ranges: bool,
        /// Chunk sizes observed by the execution hooks.
        chunks_seen: std::sync::Mutex<Vec<usize>>,
    }

    impl VecIndex {
        fn lookup<F: Fn(u64) -> bool>(&self, qualifies: F, fetch: bool) -> LookupResult {
            let mut r = LookupResult::miss();
            for (row, &k) in self.keys.iter().enumerate() {
                if qualifies(k) {
                    r.first_row = r.first_row.min(row as u32);
                    r.hit_count += 1;
                    if fetch {
                        if let Some(v) = &self.values {
                            r.value_sum = r.value_sum.wrapping_add(v[row]);
                        }
                    }
                }
            }
            r
        }
    }

    impl SecondaryIndex for VecIndex {
        fn name(&self) -> &str {
            "VEC"
        }
        fn key_count(&self) -> usize {
            self.keys.len()
        }
        fn memory_bytes(&self) -> u64 {
            (self.keys.len() * 8) as u64
        }
        fn build_metrics(&self) -> IndexBuildMetrics {
            IndexBuildMetrics::default()
        }
        fn capabilities(&self) -> Capabilities {
            Capabilities {
                range_lookups: self.ranges,
                ..Capabilities::read_only()
            }
        }
        fn has_value_column(&self) -> bool {
            self.values.is_some()
        }
        fn point_chunk(&self, queries: &[u64], fetch: bool) -> Result<BatchOutcome, IndexError> {
            self.chunks_seen.lock().unwrap().push(queries.len());
            Ok(BatchOutcome {
                results: queries
                    .iter()
                    .map(|&q| self.lookup(|k| k == q, fetch))
                    .collect(),
                metrics: LaunchMetrics {
                    simulated_time_s: 1.0,
                    ..Default::default()
                },
            })
        }
        fn range_chunk(
            &self,
            ranges: &[(u64, u64)],
            fetch: bool,
        ) -> Result<BatchOutcome, IndexError> {
            self.chunks_seen.lock().unwrap().push(ranges.len());
            Ok(BatchOutcome {
                results: ranges
                    .iter()
                    .map(|&(l, u)| self.lookup(|k| k >= l && k <= u, fetch))
                    .collect(),
                metrics: LaunchMetrics {
                    simulated_time_s: 0.5,
                    ..Default::default()
                },
            })
        }
    }

    fn vec_index(ranges: bool) -> VecIndex {
        VecIndex {
            keys: vec![5, 1, 9, 5],
            values: Some(vec![50, 10, 90, 51]),
            ranges,
            chunks_seen: std::sync::Mutex::new(Vec::new()),
        }
    }

    #[test]
    fn mixed_batch_preserves_submission_order() {
        let ix = vec_index(true);
        let batch = QueryBatch::new()
            .point(1)
            .range(4, 9)
            .point(7)
            .range(0, 0)
            .fetch_values(true);
        let out = ix.execute(&batch).unwrap();
        assert_eq!(out.results.len(), 4);
        assert_eq!(out.results[0].first_row, 1);
        assert_eq!(out.results[0].value_sum, 10);
        assert_eq!(out.results[1].hit_count, 3, "5, 9 and the duplicate 5");
        assert_eq!(out.results[1].value_sum, 191);
        assert_eq!(out.results[2].first_row, MISS);
        assert_eq!(out.results[3].hit_count, 0);
        // One point launch + one range launch, metrics merged.
        assert!((out.metrics.simulated_time_s - 1.5).abs() < 1e-12);
    }

    #[test]
    fn chunked_execution_matches_unchunked() {
        let ix = vec_index(true);
        let queries: Vec<u64> = (0..10).collect();
        let whole = ix
            .execute(&QueryBatch::of_points(&queries).fetch_values(true))
            .unwrap();
        let chunked = ix
            .execute(
                &QueryBatch::of_points(&queries)
                    .fetch_values(true)
                    .with_chunk_size(3),
            )
            .unwrap();
        assert_eq!(whole.results, chunked.results);
        // 10 points in chunks of 3 -> 4 launches after the initial whole run.
        let seen = ix.chunks_seen.lock().unwrap().clone();
        assert_eq!(seen, vec![10, 3, 3, 3, 1]);
        // Chunked execution pays one simulated launch per chunk.
        assert!(chunked.metrics.simulated_time_s > whole.metrics.simulated_time_s);
    }

    #[test]
    fn range_on_incapable_backend_is_a_uniform_error() {
        let ix = vec_index(false);
        let err = ix
            .execute(&QueryBatch::new().point(1).range(0, 9))
            .unwrap_err();
        assert_eq!(
            err,
            IndexError::UnsupportedOperation {
                backend: "VEC".into(),
                operation: "range lookups",
            }
        );
        // Point-only batches still work.
        assert_eq!(
            ix.execute(&QueryBatch::new().point(1)).unwrap().hit_count(),
            1
        );
    }

    #[test]
    fn value_fetch_without_column_errors() {
        let mut ix = vec_index(true);
        ix.values = None;
        let err = ix
            .execute(&QueryBatch::new().point(1).fetch_values(true))
            .unwrap_err();
        assert!(matches!(err, IndexError::NoValueColumn { .. }));
    }

    #[test]
    fn inverted_ranges_answer_empty_without_reaching_the_backend() {
        let ix = vec_index(true);
        let out = ix
            .execute(&QueryBatch::new().range(9, 3).point(1).range(5, 5))
            .unwrap();
        assert_eq!(out.results[0], LookupResult::miss());
        assert_eq!(out.results[1].first_row, 1);
        assert_eq!(out.results[2].hit_count, 2, "5 and its duplicate");
        // The inverted range was never forwarded: one point launch plus one
        // single-operation range launch.
        assert_eq!(*ix.chunks_seen.lock().unwrap(), vec![1, 1]);

        // On a backend without range support even an inverted range is still
        // a range operation and fails uniformly.
        let err = ix_without_ranges_err();
        assert_eq!(
            err,
            IndexError::UnsupportedOperation {
                backend: "VEC".into(),
                operation: "range lookups",
            }
        );
    }

    fn ix_without_ranges_err() -> IndexError {
        vec_index(false)
            .execute(&QueryBatch::new().range(9, 3))
            .unwrap_err()
    }

    #[test]
    fn empty_batch_executes_to_empty_outcome() {
        let ix = vec_index(true);
        let out = ix.execute(&QueryBatch::new()).unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.metrics.simulated_time_s, 0.0);
        assert_eq!(ix.chunks_seen.lock().unwrap().len(), 0, "no launch");
    }
}
