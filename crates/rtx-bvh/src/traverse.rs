//! Stack-based BVH traversal with any-hit semantics.
//!
//! The traversal mirrors what the fixed-function RT hardware does for
//! `optixTrace()`: it walks the hierarchy front to back-ish (children are
//! pushed unordered, as the paper's workloads never rely on ordering),
//! performs a slab test per visited node, and calls the any-hit callback for
//! every primitive whose intersection test succeeds within the ray interval.
//!
//! The collected [`TraversalStats`] feed the GPU cost model: box tests and
//! (hardware) triangle tests are charged to the RT cores, software
//! intersection programs and any-hit program invocations are charged to the
//! programmable cores, and every visited node/primitive accounts for memory
//! traffic.

use rtx_math::Ray;

use crate::node::Bvh;
use crate::primitives::{PrimitiveHit, PrimitiveSet};

/// Counters collected by one ray traversal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// BVH nodes visited (interior + leaf).
    pub nodes_visited: u64,
    /// Ray/box slab tests performed.
    pub box_tests: u64,
    /// Hardware triangle intersection tests performed.
    pub hw_prim_tests: u64,
    /// Software intersection-program invocations performed.
    pub sw_prim_tests: u64,
    /// Any-hit program invocations (accepted intersections).
    pub any_hit_invocations: u64,
    /// 1 when the traversal never descended past the root because the root
    /// volume already excluded the ray (the "early abort" of Section 4.6).
    pub aborted_at_root: u64,
}

impl TraversalStats {
    /// Merges another stats record into this one.
    pub fn merge(&mut self, other: &TraversalStats) {
        self.nodes_visited += other.nodes_visited;
        self.box_tests += other.box_tests;
        self.hw_prim_tests += other.hw_prim_tests;
        self.sw_prim_tests += other.sw_prim_tests;
        self.any_hit_invocations += other.any_hit_invocations;
        self.aborted_at_root += other.aborted_at_root;
    }

    /// Total primitive tests of either kind.
    pub fn prim_tests(&self) -> u64 {
        self.hw_prim_tests + self.sw_prim_tests
    }
}

/// Decision returned by an any-hit callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnyHitControl {
    /// Keep searching for further intersections (the normal RTIndeX case:
    /// every hit is a result row).
    Continue,
    /// Stop the traversal immediately (`optixTerminateRay`), used by
    /// existence-only lookups.
    Terminate,
}

/// Traverses `bvh` with `ray`, invoking `any_hit(prim_index, t)` for every
/// primitive intersection inside the ray interval.
///
/// Returns the traversal statistics. The callback receives the *original*
/// primitive index (i.e. the index into the build input, which for RTIndeX
/// equals the rowID).
pub fn traverse<F>(bvh: &Bvh, prims: &dyn PrimitiveSet, ray: &Ray, mut any_hit: F) -> TraversalStats
where
    F: FnMut(u32, f32) -> AnyHitControl,
{
    let mut stats = TraversalStats::default();
    if bvh.nodes.is_empty() {
        return stats;
    }

    let inv_dir = ray.inv_direction();

    // Root test first so we can record early aborts (misses rejected at the
    // very top of the tree, which the paper identifies as the reason RX wins
    // under low hit rates).
    stats.nodes_visited += 1;
    stats.box_tests += 1;
    if bvh.nodes[0]
        .bounds
        .intersect_with_inv(ray, inv_dir)
        .is_none()
    {
        stats.aborted_at_root = 1;
        return stats;
    }

    let mut stack: Vec<u32> = Vec::with_capacity(64);
    stack.push(0);

    'outer: while let Some(node_index) = stack.pop() {
        let node = &bvh.nodes[node_index as usize];
        if node.is_leaf() {
            let start = node.first_prim as usize;
            let end = start + node.prim_count as usize;
            for slot in start..end {
                let prim_index = bvh.prim_indices[slot];
                let hit = prims.intersect(prim_index as usize, ray);
                match hit {
                    PrimitiveHit::HardwareHit(_) => stats.hw_prim_tests += 1,
                    PrimitiveHit::SoftwareHit(_) | PrimitiveHit::Miss => {
                        if prims.hardware_intersection() {
                            stats.hw_prim_tests += 1;
                        } else {
                            stats.sw_prim_tests += 1;
                        }
                    }
                }
                if let Some(t) = hit.t() {
                    stats.any_hit_invocations += 1;
                    if any_hit(prim_index, t) == AnyHitControl::Terminate {
                        break 'outer;
                    }
                }
            }
        } else {
            // Test both children; push the ones the ray touches.
            for child in [node_index + 1, node.right_child] {
                let child_node = &bvh.nodes[child as usize];
                stats.nodes_visited += 1;
                stats.box_tests += 1;
                if child_node.bounds.intersect_with_inv(ray, inv_dir).is_some() {
                    stack.push(child);
                }
            }
        }
    }
    stats
}

/// Convenience wrapper that collects every hit primitive index.
pub fn collect_hits(bvh: &Bvh, prims: &dyn PrimitiveSet, ray: &Ray) -> (Vec<u32>, TraversalStats) {
    let mut hits = Vec::new();
    let stats = traverse(bvh, prims, ray, |prim, _t| {
        hits.push(prim);
        AnyHitControl::Continue
    });
    (hits, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build, BuildConfig, BuilderKind};
    use crate::primitives::{AabbSet, SphereSet, TriangleSet};
    use rtx_math::{Aabb, Sphere, Triangle, Vec3f};

    fn line_of_triangles(n: usize) -> TriangleSet {
        TriangleSet::new(
            (0..n)
                .map(|i| Triangle::key_triangle(Vec3f::new(i as f32, 0.0, 0.0), 0.4))
                .collect(),
        )
    }

    fn range_ray(lower: f32, upper: f32) -> Ray {
        // Parallel-from-offset ray covering [lower, upper].
        Ray::new(
            Vec3f::new(lower - 0.5, 0.0, 0.0),
            Vec3f::new(1.0, 0.0, 0.0),
            0.0,
            upper - lower + 1.0,
        )
    }

    fn point_ray(key: f32) -> Ray {
        Ray::new(
            Vec3f::new(key, 0.0, -0.5),
            Vec3f::new(0.0, 0.0, 1.0),
            0.0,
            1.0,
        )
    }

    #[test]
    fn range_ray_hits_exactly_the_keys_in_range() {
        for builder in [BuilderKind::Sah, BuilderKind::Lbvh] {
            let prims = line_of_triangles(64);
            let bvh = build(
                &prims,
                &BuildConfig {
                    builder,
                    ..Default::default()
                },
            );
            let (mut hits, stats) = collect_hits(&bvh, &prims, &range_ray(10.0, 20.0));
            hits.sort_unstable();
            assert_eq!(hits, (10..=20).collect::<Vec<u32>>(), "builder {builder:?}");
            assert_eq!(stats.any_hit_invocations, 11);
            assert!(stats.nodes_visited > 0);
            assert!(stats.hw_prim_tests >= 11);
        }
    }

    #[test]
    fn point_ray_hits_exactly_one_key() {
        let prims = line_of_triangles(64);
        let bvh = build(&prims, &BuildConfig::default());
        for key in [0usize, 1, 31, 62, 63] {
            let (hits, _) = collect_hits(&bvh, &prims, &point_ray(key as f32));
            assert_eq!(hits, vec![key as u32], "key {key}");
        }
    }

    #[test]
    fn miss_outside_domain_aborts_at_root() {
        let prims = line_of_triangles(64);
        let bvh = build(&prims, &BuildConfig::default());
        let (hits, stats) = collect_hits(&bvh, &prims, &point_ray(1000.0));
        assert!(hits.is_empty());
        assert_eq!(stats.aborted_at_root, 1);
        assert_eq!(stats.nodes_visited, 1, "only the root may be visited");
    }

    #[test]
    fn miss_inside_domain_visits_fewer_nodes_than_hit() {
        // A miss between two existing keys still terminates quickly compared
        // to scanning, but does not abort at the root.
        let prims = TriangleSet::new(
            (0..64)
                .map(|i| Triangle::key_triangle(Vec3f::new((i * 2) as f32, 0.0, 0.0), 0.4))
                .collect(),
        );
        let bvh = build(&prims, &BuildConfig::default());
        let (hits, stats) = collect_hits(&bvh, &prims, &point_ray(31.0));
        assert!(hits.is_empty());
        assert_eq!(stats.aborted_at_root, 0);
        assert!(stats.nodes_visited < bvh.node_count() as u64);
    }

    #[test]
    fn terminate_stops_after_first_hit() {
        let prims = line_of_triangles(64);
        let bvh = build(&prims, &BuildConfig::default());
        let mut count = 0;
        let stats = traverse(&bvh, &prims, &range_ray(0.0, 63.0), |_prim, _t| {
            count += 1;
            AnyHitControl::Terminate
        });
        assert_eq!(count, 1);
        assert_eq!(stats.any_hit_invocations, 1);
    }

    #[test]
    fn duplicate_keys_are_all_reported() {
        let mut tris: Vec<Triangle> = Vec::new();
        for i in 0..16 {
            for _ in 0..4 {
                tris.push(Triangle::key_triangle(Vec3f::new(i as f32, 0.0, 0.0), 0.4));
            }
        }
        let prims = TriangleSet::new(tris);
        let bvh = build(&prims, &BuildConfig::default());
        let (hits, _) = collect_hits(&bvh, &prims, &point_ray(5.0));
        assert_eq!(hits.len(), 4, "all four duplicates of key 5 must be found");
        for h in hits {
            assert_eq!(h / 4, 5);
        }
    }

    #[test]
    fn sphere_and_aabb_sets_report_software_tests() {
        let n = 32usize;
        let centers: Vec<Vec3f> = (0..n).map(|i| Vec3f::new(i as f32, 0.0, 0.0)).collect();
        let spheres = SphereSet::new(centers.clone(), Sphere::KEY_RADIUS);
        let boxes = AabbSet::new(
            centers
                .iter()
                .map(|c| Aabb::new(*c - Vec3f::splat(0.4), *c + Vec3f::splat(0.4)))
                .collect(),
        );
        let config = BuildConfig::default();
        let bvh_s = build(&spheres, &config);
        let bvh_b = build(&boxes, &config);

        let (hits_s, stats_s) = collect_hits(&bvh_s, &spheres, &point_ray(3.0));
        assert_eq!(hits_s, vec![3]);
        assert!(stats_s.sw_prim_tests > 0);
        assert_eq!(stats_s.hw_prim_tests, 0);

        let (hits_b, stats_b) = collect_hits(&bvh_b, &boxes, &point_ray(3.0));
        assert_eq!(hits_b, vec![3]);
        assert!(stats_b.sw_prim_tests > 0);
    }

    #[test]
    fn empty_bvh_traversal_is_a_noop() {
        let prims = TriangleSet::default();
        let bvh = build(&prims, &BuildConfig::default());
        let (hits, stats) = collect_hits(&bvh, &prims, &point_ray(0.0));
        assert!(hits.is_empty());
        assert_eq!(stats.nodes_visited, 0);
    }

    #[test]
    fn stats_merge_adds_counters() {
        let mut a = TraversalStats {
            nodes_visited: 3,
            box_tests: 3,
            ..Default::default()
        };
        let b = TraversalStats {
            nodes_visited: 2,
            hw_prim_tests: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.nodes_visited, 5);
        assert_eq!(a.hw_prim_tests, 5);
        assert_eq!(a.prim_tests(), 5);
    }

    #[test]
    fn wide_range_visits_more_nodes_than_point() {
        let prims = line_of_triangles(1024);
        let bvh = build(&prims, &BuildConfig::default());
        let (_, point_stats) = collect_hits(&bvh, &prims, &point_ray(512.0));
        let (_, range_stats) = collect_hits(&bvh, &prims, &range_ray(0.0, 1023.0));
        assert!(range_stats.nodes_visited > point_stats.nodes_visited * 4);
        assert!(range_stats.any_hit_invocations == 1024);
    }
}
