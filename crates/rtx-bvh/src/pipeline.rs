//! The staged, parallel BVH build pipeline.
//!
//! [`BuildPipeline`] decomposes construction into the stages a GPU driver
//! runs — snapshot the primitives, Morton-sort (LBVH), split the top levels,
//! emit the subtrees in parallel over the worker pool
//! ([`gpu_device::parallel_map`]), stitch the spine — and produces a
//! [`Bvh`] that is **bit-identical** to the one-shot builders in
//! [`builder`](crate::builder) for the same [`BuildConfig`], regardless of
//! how many workers execute it:
//!
//! * the top-level splits use *the same split rule* as the one-shot builder
//!   ([`sah_split_position`] / [`lbvh_split_position`]), applied until every
//!   slice is at most the grain size;
//! * the grain derives from a fixed subtree target
//!   ([`BuildPipeline::with_target_subtrees`]), **not** from the worker
//!   count, so the decomposition — and with it the emitted tree — never
//!   depends on execution width;
//! * each slice is built by the same iterative range builders the one-shot
//!   path uses, and the stitch splices the subtree blocks back in exact
//!   pre-order with offset fix-ups.
//!
//! The pipeline reports per-stage host timings and the subtree count; the
//! simulated device cost of the stages lives in [`gpu_device::build`] and is
//! charged by the accel layer (`optix-sim`), where the build is wired into
//! `optixAccelBuild`.
//!
//! [`sah_split_position`]: crate::builder
//! [`lbvh_split_position`]: crate::builder

use std::time::{Duration, Instant};

use gpu_device::build::{BuildStage, BUILD_STAGE_COUNT};
use gpu_device::{parallel_map, parallel_tasks, worker_count};

use crate::builder::{
    build_lbvh_range, build_sah_range, lbvh_split_position, morton_sorted, sah_split_position,
    BuildConfig, BuilderKind, PrimInfo,
};
use crate::node::{Bvh, BvhNode};
use crate::primitives::PrimitiveSet;
use rtx_math::Aabb;

/// Default number of subtrees the top-level splitting aims for. Fixed (not
/// derived from the worker count) so the decomposition is deterministic;
/// large enough that the pool load-balances uneven split sizes.
pub const DEFAULT_TARGET_SUBTREES: usize = 64;

/// The staged parallel builder. See the [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct BuildPipeline {
    config: BuildConfig,
    workers: usize,
    target_subtrees: usize,
}

/// The result of one pipeline run: the hierarchy plus the stage telemetry
/// the accel layer charges to the cost model.
#[derive(Debug)]
pub struct PipelineBuild {
    /// The built hierarchy (uncompacted; compaction is the accel layer's
    /// decision, as in OptiX).
    pub bvh: Bvh,
    /// Subtrees emitted by the parallel stage.
    pub subtree_count: usize,
    /// Host wall-clock time per stage, indexed by [`BuildStage::index`].
    /// The compaction slot stays zero — the pipeline never compacts.
    pub stage_host: [Duration; BUILD_STAGE_COUNT],
    /// The worker width the run was configured with (drives the simulated
    /// cost; the host-side pool is always the process-global one).
    pub workers: usize,
}

/// One step of the top-level build plan, in pre-order.
struct PlanStep {
    /// Bounds of the range this step covers (identical fold order to the
    /// one-shot builder, so the float results match bit for bit).
    bounds: Aabb,
    /// `Some(slice_index)` for a subtree slice, `None` for a spine interior.
    slice: Option<usize>,
    /// Plan index of the interior whose `right_child` this step's root is.
    right_parent: Option<usize>,
}

impl BuildPipeline {
    /// A pipeline for `config`, simulated at the pool width
    /// ([`worker_count`]).
    pub fn new(config: BuildConfig) -> Self {
        BuildPipeline {
            config,
            workers: worker_count(),
            target_subtrees: DEFAULT_TARGET_SUBTREES,
        }
    }

    /// Overrides the simulated worker width (clamped to at least 1). The
    /// emitted tree does not depend on this — only the simulated cost and
    /// the reported width do.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Overrides the subtree target of the top-level splitting. Changing it
    /// changes the decomposition but not the emitted tree.
    pub fn with_target_subtrees(mut self, target: usize) -> Self {
        self.target_subtrees = target.max(1);
        self
    }

    /// The build configuration.
    pub fn config(&self) -> &BuildConfig {
        &self.config
    }

    /// The configured worker width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs the pipeline over `prims`.
    pub fn run(&self, prims: &dyn PrimitiveSet) -> PipelineBuild {
        let mut stage_host = [Duration::ZERO; BUILD_STAGE_COUNT];
        let n = prims.len();

        // Stage: snapshot. Chunked over the pool; chunk boundaries affect
        // only which worker copies which records, never their content.
        let start = Instant::now();
        let chunks = worker_count().min(n.max(1));
        let chunk = n.div_ceil(chunks).max(1);
        let mut info: Vec<PrimInfo> = Vec::with_capacity(n);
        for part in parallel_tasks(chunks, |c| {
            let lo = c * chunk;
            let hi = ((c + 1) * chunk).min(n);
            (lo..hi)
                .map(|i| PrimInfo {
                    index: i as u32,
                    bounds: prims.bounds(i),
                    centroid: prims.centroid(i),
                })
                .collect::<Vec<_>>()
        }) {
            info.extend(part);
        }
        stage_host[BuildStage::Snapshot.index()] = start.elapsed();

        if info.is_empty() {
            return PipelineBuild {
                bvh: Bvh::new(Vec::new(), Vec::new(), self.config.allow_update),
                subtree_count: 0,
                stage_host,
                workers: self.workers,
            };
        }

        let grain = n
            .div_ceil(self.target_subtrees)
            .max(self.config.max_leaf_size)
            .max(1);

        let (plan, built) = match self.config.builder {
            BuilderKind::Lbvh => {
                // Stage: Morton encode + sort.
                let start = Instant::now();
                let keyed = morton_sorted(info);
                stage_host[BuildStage::MortonSort.index()] = start.elapsed();

                // Stages: top-level split, then parallel subtree emission.
                let start = Instant::now();
                let (plan, slices) = plan_ranges(keyed.len(), grain, |lo, hi| {
                    (
                        fold_bounds(keyed[lo..hi].iter().map(|(_, p)| &p.bounds)),
                        if hi - lo > grain {
                            Some(lbvh_split_position(&keyed[lo..hi]))
                        } else {
                            None
                        },
                    )
                });
                let chunks = into_chunks(keyed, &slices);
                let config = self.config;
                let built = parallel_map(chunks, move |_, chunk| {
                    let mut nodes = Vec::with_capacity(chunk.len() * 2);
                    let mut order = Vec::with_capacity(chunk.len());
                    build_lbvh_range(&chunk, &mut nodes, &mut order, &config);
                    (nodes, order)
                });
                stage_host[BuildStage::EmitSubtrees.index()] = start.elapsed();
                (plan, built)
            }
            BuilderKind::Sah => {
                // SAH has no sort stage; top-level splitting sorts each
                // range along its own split axis, exactly like the one-shot
                // builder's root levels.
                let start = Instant::now();
                let mut info = info;
                let (plan, slices) = plan_ranges(info.len(), grain, |lo, hi| {
                    let bounds = fold_bounds(info[lo..hi].iter().map(|p| &p.bounds));
                    let split = if hi - lo > grain {
                        Some(sah_split_position(&mut info[lo..hi], &self.config))
                    } else {
                        None
                    };
                    (bounds, split)
                });
                let chunks = into_chunks(info, &slices);
                let config = self.config;
                let built = parallel_map(chunks, move |_, mut chunk| {
                    let mut nodes = Vec::with_capacity(chunk.len() * 2);
                    let mut order = Vec::with_capacity(chunk.len());
                    build_sah_range(&mut chunk, &mut nodes, &mut order, &config);
                    (nodes, order)
                });
                stage_host[BuildStage::EmitSubtrees.index()] = start.elapsed();
                (plan, built)
            }
        };

        // Stage: stitch the spine and splice the subtree blocks in
        // pre-order.
        let start = Instant::now();
        let bvh = stitch(&plan, built, n, self.config.allow_update);
        stage_host[BuildStage::Stitch.index()] = start.elapsed();

        PipelineBuild {
            subtree_count: plan.iter().filter(|s| s.slice.is_some()).count(),
            bvh,
            stage_host,
            workers: self.workers,
        }
    }
}

fn fold_bounds<'a, I: Iterator<Item = &'a Aabb>>(bounds: I) -> Aabb {
    bounds.fold(Aabb::EMPTY, |acc, b| acc.union(b))
}

/// Splits `[0, n)` top-down with `inspect(lo, hi) -> (bounds, split)` until
/// every range is at most `grain` long, returning the pre-order plan and
/// the slice ranges in ascending order. `inspect` returns `None` for a
/// range that is small enough (it becomes a subtree slice) and the
/// *range-local* split position otherwise — the same value the one-shot
/// builder would use, so the spine is the top of the exact same tree.
fn plan_ranges<F>(n: usize, grain: usize, mut inspect: F) -> (Vec<PlanStep>, Vec<(usize, usize)>)
where
    F: FnMut(usize, usize) -> (Aabb, Option<usize>),
{
    debug_assert!(n > 0 && grain > 0);
    let mut plan = Vec::new();
    let mut slices = Vec::new();
    // (lo, hi, plan index of the interior this range right-fixes).
    let mut stack = vec![(0usize, n, None::<usize>)];
    while let Some((lo, hi, right_parent)) = stack.pop() {
        let step = plan.len();
        let (bounds, split) = inspect(lo, hi);
        match split {
            None => {
                slices.push((lo, hi));
                plan.push(PlanStep {
                    bounds,
                    slice: Some(slices.len() - 1),
                    right_parent,
                });
            }
            Some(split) => {
                plan.push(PlanStep {
                    bounds,
                    slice: None,
                    right_parent,
                });
                stack.push((lo + split, hi, Some(step)));
                stack.push((lo, lo + split, None));
            }
        }
    }
    // Pre-order over contiguous ranges visits them left to right.
    debug_assert!(slices.windows(2).all(|w| w[0].1 == w[1].0));
    (plan, slices)
}

/// Moves `items` into per-slice chunks. The slices tile `[0, len)` in
/// ascending order, so this is a sequence of takes.
fn into_chunks<T>(items: Vec<T>, slices: &[(usize, usize)]) -> Vec<Vec<T>> {
    let mut iter = items.into_iter();
    slices
        .iter()
        .map(|&(lo, hi)| iter.by_ref().take(hi - lo).collect())
        .collect()
}

/// Replays the plan in pre-order, emitting spine interiors and splicing the
/// built subtree blocks with node/order offset fix-ups. Produces exactly
/// the array the one-shot builder would have appended.
fn stitch(
    plan: &[PlanStep],
    built: Vec<(Vec<BvhNode>, Vec<u32>)>,
    prim_count: usize,
    allow_update: bool,
) -> Bvh {
    let total_nodes: usize = plan.iter().filter(|s| s.slice.is_none()).count()
        + built.iter().map(|(nodes, _)| nodes.len()).sum::<usize>();
    let mut nodes: Vec<BvhNode> = Vec::with_capacity(total_nodes);
    let mut order: Vec<u32> = Vec::with_capacity(prim_count);
    let mut root_of = vec![0u32; plan.len()];

    for (i, step) in plan.iter().enumerate() {
        let node_index = nodes.len() as u32;
        root_of[i] = node_index;
        if let Some(parent) = step.right_parent {
            nodes[root_of[parent] as usize].right_child = node_index;
        }
        match step.slice {
            None => nodes.push(BvhNode::interior(step.bounds, 0)),
            Some(s) => {
                let (sub_nodes, sub_order) = &built[s];
                let node_off = nodes.len() as u32;
                let order_off = order.len() as u32;
                nodes.extend(sub_nodes.iter().map(|n| {
                    let mut n = *n;
                    if n.is_leaf() {
                        n.first_prim += order_off;
                    } else {
                        n.right_child += node_off;
                    }
                    n
                }));
                order.extend_from_slice(sub_order);
            }
        }
    }
    Bvh::new(nodes, order, allow_update)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build;
    use crate::primitives::TriangleSet;
    use rtx_math::{Triangle, Vec3f};

    fn line_of_triangles(n: usize) -> TriangleSet {
        TriangleSet::new(
            (0..n)
                .map(|i| Triangle::key_triangle(Vec3f::new(i as f32, 0.0, 0.0), 0.4))
                .collect(),
        )
    }

    fn clustered_triangles(n: usize) -> TriangleSet {
        // Duplicates and uneven clusters: exercises the degenerate split
        // paths of both builders.
        TriangleSet::new(
            (0..n)
                .map(|i| {
                    let x = if i % 3 == 0 { 7.0 } else { (i % 41) as f32 };
                    Triangle::key_triangle(Vec3f::new(x, (i % 5) as f32, 0.0), 0.4)
                })
                .collect(),
        )
    }

    fn assert_identical(a: &Bvh, b: &Bvh, what: &str) {
        assert_eq!(a.nodes, b.nodes, "{what}: node arrays differ");
        assert_eq!(a.prim_indices, b.prim_indices, "{what}: orders differ");
    }

    #[test]
    fn pipeline_matches_one_shot_builders() {
        for builder in [BuilderKind::Lbvh, BuilderKind::Sah] {
            for n in [0usize, 1, 3, 17, 255, 1024, 5000] {
                let prims = line_of_triangles(n);
                let config = BuildConfig {
                    builder,
                    ..BuildConfig::default()
                };
                let reference = build(&prims, &config);
                let staged = BuildPipeline::new(config).run(&prims).bvh;
                staged.validate().expect("staged build valid");
                assert_identical(&staged, &reference, &format!("{builder:?} n={n}"));
            }
        }
    }

    #[test]
    fn pipeline_is_identical_across_worker_widths() {
        for builder in [BuilderKind::Lbvh, BuilderKind::Sah] {
            let prims = clustered_triangles(4096);
            let config = BuildConfig {
                builder,
                ..BuildConfig::default()
            };
            let one = BuildPipeline::new(config).with_workers(1).run(&prims);
            let eight = BuildPipeline::new(config).with_workers(8).run(&prims);
            assert_identical(&one.bvh, &eight.bvh, &format!("{builder:?}"));
            assert_eq!(one.subtree_count, eight.subtree_count);
            assert!(one.subtree_count > 1, "the build must actually decompose");
            assert_identical(
                &one.bvh,
                &build(&prims, &config),
                &format!("{builder:?} vs one-shot"),
            );
        }
    }

    #[test]
    fn subtree_target_changes_decomposition_but_not_the_tree() {
        let prims = line_of_triangles(2048);
        let config = BuildConfig::default();
        let coarse = BuildPipeline::new(config)
            .with_target_subtrees(4)
            .run(&prims);
        let fine = BuildPipeline::new(config)
            .with_target_subtrees(256)
            .run(&prims);
        assert!(fine.subtree_count > coarse.subtree_count);
        assert_identical(&coarse.bvh, &fine.bvh, "subtree target");
    }

    #[test]
    fn duplicate_heavy_input_builds_identically() {
        let prims = TriangleSet::new(
            (0..512)
                .map(|_| Triangle::key_triangle(Vec3f::new(3.0, 0.0, 0.0), 0.4))
                .collect(),
        );
        for builder in [BuilderKind::Lbvh, BuilderKind::Sah] {
            let config = BuildConfig {
                builder,
                ..BuildConfig::default()
            };
            let staged = BuildPipeline::new(config).run(&prims);
            staged.bvh.validate().expect("valid");
            assert_identical(&staged.bvh, &build(&prims, &config), "duplicates");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let config = BuildConfig::default();
        let empty = BuildPipeline::new(config).run(&line_of_triangles(0));
        assert_eq!(empty.bvh.node_count(), 0);
        assert_eq!(empty.subtree_count, 0);
        let one = BuildPipeline::new(config).run(&line_of_triangles(1));
        assert_eq!(one.subtree_count, 1);
        one.bvh.validate().expect("valid single-leaf build");
    }

    #[test]
    fn iterative_builders_survive_max_depth_inputs() {
        // max_leaf_size = 1 over clustered duplicates maximises depth; the
        // explicit work stack must handle it without recursion.
        let prims = clustered_triangles(1 << 15);
        for builder in [BuilderKind::Lbvh, BuilderKind::Sah] {
            let config = BuildConfig {
                builder,
                max_leaf_size: 1,
                ..BuildConfig::default()
            };
            let staged = BuildPipeline::new(config).run(&prims);
            staged.bvh.validate().expect("valid deep build");
            assert_eq!(staged.bvh.primitive_count(), 1 << 15);
        }
    }
}
