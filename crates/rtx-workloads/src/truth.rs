//! Ground-truth answers for generated workloads.
//!
//! Every index implementation (RX and the baselines) is verified against a
//! plain hash-map/sorted-vector oracle. The oracle also provides the
//! aggregate the paper's methodology reports: the sum of the projected
//! values of all qualifying rows.

use std::collections::HashMap;

use rtx_query::{LookupResult, QueryBatch, QueryOp};

/// Reserved rowID reported for misses (the canonical `rtx-query` sentinel,
/// re-exported so oracle answers compare against index answers directly).
pub use rtx_query::MISS;

/// An exact oracle over a key column and an optional value column.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// key -> rowIDs holding that key.
    by_key: HashMap<u64, Vec<u32>>,
    /// (key, rowID) pairs sorted by key, for range queries.
    sorted: Vec<(u64, u32)>,
    values: Option<Vec<u64>>,
}

impl GroundTruth {
    /// Builds the oracle from the key column (rowID = position) and an
    /// optional value column of the same length.
    pub fn new(keys: &[u64], values: Option<&[u64]>) -> Self {
        if let Some(v) = values {
            assert_eq!(
                v.len(),
                keys.len(),
                "value column must match the key column length"
            );
        }
        let mut by_key: HashMap<u64, Vec<u32>> = HashMap::with_capacity(keys.len());
        let mut sorted: Vec<(u64, u32)> = Vec::with_capacity(keys.len());
        for (row, &key) in keys.iter().enumerate() {
            by_key.entry(key).or_default().push(row as u32);
            sorted.push((key, row as u32));
        }
        sorted.sort_unstable();
        GroundTruth {
            by_key,
            sorted,
            values: values.map(|v| v.to_vec()),
        }
    }

    /// RowIDs holding `key` (empty on a miss).
    pub fn point_rows(&self, key: u64) -> &[u32] {
        self.by_key.get(&key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of qualifying rows for a point lookup.
    pub fn point_hit_count(&self, key: u64) -> u32 {
        self.point_rows(key).len() as u32
    }

    /// First (smallest) qualifying rowID for a point lookup, or [`MISS`].
    pub fn point_first_row(&self, key: u64) -> u32 {
        self.point_rows(key).iter().copied().min().unwrap_or(MISS)
    }

    /// Sum of the values of all rows holding `key`.
    pub fn point_value_sum(&self, key: u64) -> u64 {
        let values = match &self.values {
            Some(v) => v,
            None => return 0,
        };
        self.point_rows(key)
            .iter()
            .map(|&r| values[r as usize])
            .fold(0u64, u64::wrapping_add)
    }

    /// RowIDs of all rows whose key lies in `[lower, upper]`.
    pub fn range_rows(&self, lower: u64, upper: u64) -> Vec<u32> {
        if lower > upper {
            return Vec::new();
        }
        let start = self.sorted.partition_point(|&(k, _)| k < lower);
        self.sorted[start..]
            .iter()
            .take_while(|&&(k, _)| k <= upper)
            .map(|&(_, r)| r)
            .collect()
    }

    /// Number of qualifying rows for a range lookup.
    pub fn range_hit_count(&self, lower: u64, upper: u64) -> u32 {
        self.range_rows(lower, upper).len() as u32
    }

    /// Sum of the values of all rows whose key lies in `[lower, upper]`.
    pub fn range_value_sum(&self, lower: u64, upper: u64) -> u64 {
        let values = match &self.values {
            Some(v) => v,
            None => return 0,
        };
        self.range_rows(lower, upper)
            .iter()
            .map(|&r| values[r as usize])
            .fold(0u64, u64::wrapping_add)
    }

    /// Total value sum over a batch of point lookups (the experiment-level
    /// aggregate).
    pub fn batch_point_sum(&self, queries: &[u64]) -> u64 {
        queries
            .iter()
            .map(|&q| self.point_value_sum(q))
            .fold(0u64, u64::wrapping_add)
    }

    /// Total value sum over a batch of range lookups.
    pub fn batch_range_sum(&self, ranges: &[(u64, u64)]) -> u64 {
        ranges
            .iter()
            .map(|&(l, u)| self.range_value_sum(l, u))
            .fold(0u64, u64::wrapping_add)
    }

    /// Expected hit count over a batch of point lookups (lookups that find
    /// at least one row).
    pub fn batch_point_hits(&self, queries: &[u64]) -> usize {
        queries
            .iter()
            .filter(|&&q| self.point_hit_count(q) > 0)
            .count()
    }

    /// The full expected [`LookupResult`] of a point lookup. `fetch_values`
    /// mirrors [`QueryBatch::fetch_values`]: without it the expected sum is
    /// 0 regardless of the oracle's value column.
    pub fn expected_point(&self, key: u64, fetch_values: bool) -> LookupResult {
        LookupResult {
            first_row: self.point_first_row(key),
            hit_count: self.point_hit_count(key),
            value_sum: if fetch_values {
                self.point_value_sum(key)
            } else {
                0
            },
        }
    }

    /// The full expected [`LookupResult`] of an inclusive range lookup.
    pub fn expected_range(&self, lower: u64, upper: u64, fetch_values: bool) -> LookupResult {
        let rows = self.range_rows(lower, upper);
        LookupResult {
            first_row: rows.iter().copied().min().unwrap_or(MISS),
            hit_count: rows.len() as u32,
            value_sum: if fetch_values {
                self.range_value_sum(lower, upper)
            } else {
                0
            },
        }
    }

    /// The expected results of a mixed [`QueryBatch`], in submission order —
    /// what [`SecondaryIndex::execute`](rtx_query::SecondaryIndex::execute)
    /// must return on any backend indexing the oracle's columns.
    pub fn expected_batch(&self, batch: &QueryBatch) -> Vec<LookupResult> {
        let fetch = batch.fetches_values();
        batch
            .ops()
            .iter()
            .map(|op| match *op {
                QueryOp::Point(key) => self.expected_point(key, fetch),
                QueryOp::Range(lower, upper) => self.expected_range(lower, upper, fetch),
            })
            .collect()
    }
}

/// Aggregate answer of the dynamic oracle for one lookup. Since the
/// result types were unified in `rtx-query`, this is the same type the
/// index implementations return, so oracle answers compare directly.
pub type DynamicTruth = LookupResult;

/// An exact CPU oracle for a *dynamic* index: tracks the live
/// `(row, key, value)` entries under batched inserts, deletes, upserts and
/// compactions, mirroring the row-assignment rules of
/// `rtx_delta::DynamicRtIndex`:
///
/// * initial rows are `0..n` in column order;
/// * inserted rows take the next free rowIDs in batch order;
/// * deletes remove every live row holding the key;
/// * a compaction renumbers the surviving rows densely (`0..len`) while
///   preserving their relative order.
///
/// Drive the oracle in lockstep with the index under test and compare
/// lookup answers; call [`DynamicOracle::compact`] whenever the index
/// reports a synchronous compaction, or the
/// [`begin_compaction`](DynamicOracle::begin_compaction) /
/// [`finish_compaction`](DynamicOracle::finish_compaction) pair around a
/// *background* (two-generation) compaction: rows snapshotted at the freeze
/// renumber densely to their snapshot position at the swap, while rows
/// inserted during the rebuild keep their IDs.
#[derive(Debug, Clone, Default)]
pub struct DynamicOracle {
    /// Live entries in ascending row order.
    entries: Vec<(u32, u64, u64)>,
    next_row: u32,
    /// Row renumbering of an in-flight background compaction: old row →
    /// snapshot position, captured at the freeze and applied at the swap.
    pending_renumber: Option<HashMap<u32, u32>>,
}

impl DynamicOracle {
    /// Creates the oracle over the initial key/value columns.
    pub fn new(keys: &[u64], values: &[u64]) -> Self {
        assert_eq!(
            keys.len(),
            values.len(),
            "value column must match the key column length"
        );
        DynamicOracle {
            entries: keys
                .iter()
                .zip(values)
                .enumerate()
                .map(|(row, (&k, &v))| (row as u32, k, v))
                .collect(),
            next_row: keys.len() as u32,
            pending_renumber: None,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry is live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The live `(row, key, value)` entries in ascending row order.
    pub fn live_entries(&self) -> &[(u32, u64, u64)] {
        &self.entries
    }

    /// Inserts a batch of `(key, value)` rows.
    pub fn insert_batch(&mut self, keys: &[u64], values: &[u64]) {
        assert_eq!(keys.len(), values.len());
        for (&k, &v) in keys.iter().zip(values) {
            self.entries.push((self.next_row, k, v));
            self.next_row += 1;
        }
    }

    /// Deletes every live row holding one of `keys`; returns how many rows
    /// were removed.
    pub fn delete_batch(&mut self, keys: &[u64]) -> usize {
        let doomed: std::collections::HashSet<u64> = keys.iter().copied().collect();
        let before = self.entries.len();
        self.entries.retain(|&(_, k, _)| !doomed.contains(&k));
        before - self.entries.len()
    }

    /// Upserts a batch: deletes every key's rows, then inserts one fresh row
    /// per `(key, value)` pair. Returns the number of deleted rows.
    pub fn upsert_batch(&mut self, keys: &[u64], values: &[u64]) -> usize {
        let deleted = self.delete_batch(keys);
        self.insert_batch(keys, values);
        deleted
    }

    /// Mirrors one mixed operation into the oracle (reads are no-ops).
    /// Returns the number of deleted rows, so lockstep drivers can compare
    /// it against the index's update report.
    pub fn apply(&mut self, op: &crate::mixed::MixedOp) -> usize {
        use crate::mixed::MixedOp;
        match op {
            MixedOp::Insert(_) => {
                let (keys, values) = op.columns();
                self.insert_batch(&keys, &values);
                0
            }
            MixedOp::Delete(keys) => self.delete_batch(keys),
            MixedOp::Upsert(_) => {
                let (keys, values) = op.columns();
                self.upsert_batch(&keys, &values)
            }
            MixedOp::PointLookups(_) | MixedOp::RangeLookups(_) => 0,
        }
    }

    /// Mirrors a *synchronous* compaction: renumbers the live rows densely
    /// in preserved order and resets the row allocator past them.
    pub fn compact(&mut self) {
        self.pending_renumber = None;
        for (row, entry) in self.entries.iter_mut().enumerate() {
            entry.0 = row as u32;
        }
        self.next_row = self.entries.len() as u32;
    }

    /// Mirrors the *freeze* of a background compaction: captures the
    /// snapshot renumbering (current rows → dense snapshot positions)
    /// without applying it. Rows stay unchanged until
    /// [`finish_compaction`](DynamicOracle::finish_compaction), exactly
    /// like the index keeps serving old rowIDs while the rebuild runs.
    pub fn begin_compaction(&mut self) {
        self.pending_renumber = Some(
            self.entries
                .iter()
                .enumerate()
                .map(|(position, &(row, _, _))| (row, position as u32))
                .collect(),
        );
    }

    /// Mirrors the *swap* of a background compaction: snapshot rows
    /// renumber to their snapshot position (entries deleted during the
    /// rebuild simply dropped out) and rows inserted during the rebuild
    /// keep their IDs — so the allocator moves only when nothing lives
    /// above the snapshot, exactly like the index. A no-op when no
    /// [`begin_compaction`](DynamicOracle::begin_compaction) is pending.
    pub fn finish_compaction(&mut self) {
        let Some(renumber) = self.pending_renumber.take() else {
            return;
        };
        let mut all_snapshot = true;
        for entry in &mut self.entries {
            if let Some(&new_row) = renumber.get(&entry.0) {
                entry.0 = new_row;
            } else {
                all_snapshot = false;
            }
        }
        // Snapshot members were a prefix of the ascending entry order and
        // renumber order-preservingly below every later row, so the vector
        // stays ascending.
        debug_assert!(self.entries.windows(2).all(|w| w[0].0 < w[1].0));
        // Mirror of the index's allocator reset: when nothing lives above
        // the snapshot (every in-flight insert was deleted again), the
        // allocator resumes right after the snapshot rows.
        if all_snapshot {
            self.next_row = renumber.len() as u32;
        }
    }

    /// Aggregate answer for a point lookup of `key`.
    pub fn point(&self, key: u64) -> DynamicTruth {
        self.aggregate(self.entries.iter().filter(|&&(_, k, _)| k == key))
    }

    /// Aggregate answer for an inclusive range lookup `[lower, upper]`.
    pub fn range(&self, lower: u64, upper: u64) -> DynamicTruth {
        self.aggregate(
            self.entries
                .iter()
                .filter(|&&(_, k, _)| k >= lower && k <= upper),
        )
    }

    /// The expected results of a mixed [`QueryBatch`] against the current
    /// live entries, in submission order. `fetch_values` is honoured like
    /// in [`GroundTruth::expected_batch`].
    pub fn expected_batch(&self, batch: &QueryBatch) -> Vec<LookupResult> {
        let strip = |mut r: LookupResult| {
            if !batch.fetches_values() {
                r.value_sum = 0;
            }
            r
        };
        batch
            .ops()
            .iter()
            .map(|op| match *op {
                QueryOp::Point(key) => strip(self.point(key)),
                QueryOp::Range(lower, upper) => strip(self.range(lower, upper)),
            })
            .collect()
    }

    fn aggregate<'a, I: Iterator<Item = &'a (u32, u64, u64)>>(&self, rows: I) -> DynamicTruth {
        let mut truth = DynamicTruth {
            first_row: MISS,
            hit_count: 0,
            value_sum: 0,
        };
        for &(row, _, value) in rows {
            truth.first_row = truth.first_row.min(row);
            truth.hit_count += 1;
            truth.value_sum = truth.value_sum.wrapping_add(value);
        }
        truth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyset::{dense_shuffled, value_column, with_multiplicity};

    #[test]
    fn point_oracle_matches_manual_scan() {
        let keys = dense_shuffled(100, 1);
        let values = value_column(100, 2);
        let truth = GroundTruth::new(&keys, Some(&values));
        for q in 0..120u64 {
            let expected_rows: Vec<u32> = keys
                .iter()
                .enumerate()
                .filter(|(_, &k)| k == q)
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(truth.point_rows(q), expected_rows.as_slice());
            assert_eq!(truth.point_hit_count(q), expected_rows.len() as u32);
            if q < 100 {
                assert_eq!(truth.point_first_row(q), expected_rows[0]);
                assert_eq!(truth.point_value_sum(q), values[expected_rows[0] as usize]);
            } else {
                assert_eq!(truth.point_first_row(q), MISS);
                assert_eq!(truth.point_value_sum(q), 0);
            }
        }
    }

    #[test]
    fn duplicates_are_counted() {
        let keys = with_multiplicity(10, 3, 1);
        let values = vec![1u64; keys.len()];
        let truth = GroundTruth::new(&keys, Some(&values));
        assert_eq!(truth.point_hit_count(5), 3);
        assert_eq!(truth.point_value_sum(5), 3);
    }

    #[test]
    fn range_oracle_counts_dense_spans() {
        let keys = dense_shuffled(1000, 1);
        let truth = GroundTruth::new(&keys, None);
        assert_eq!(truth.range_hit_count(100, 199), 100);
        assert_eq!(truth.range_hit_count(990, 1100), 10);
        assert_eq!(truth.range_hit_count(2000, 3000), 0);
        assert_eq!(truth.range_hit_count(10, 5), 0, "inverted range");
        assert_eq!(truth.range_rows(0, 999).len(), 1000);
    }

    #[test]
    fn batch_aggregates() {
        let keys = dense_shuffled(50, 1);
        let values = value_column(50, 2);
        let truth = GroundTruth::new(&keys, Some(&values));
        let queries = vec![1u64, 2, 3, 100];
        assert_eq!(truth.batch_point_hits(&queries), 3);
        let expected: u64 = queries
            .iter()
            .map(|&q| truth.point_value_sum(q))
            .fold(0u64, u64::wrapping_add);
        assert_eq!(truth.batch_point_sum(&queries), expected);
        assert_eq!(
            truth.batch_range_sum(&[(0, 9), (40, 49)]),
            truth.range_value_sum(0, 9) + truth.range_value_sum(40, 49)
        );
    }

    #[test]
    #[should_panic(expected = "value column")]
    fn mismatched_value_column_panics() {
        let _ = GroundTruth::new(&[1, 2, 3], Some(&[1]));
    }

    #[test]
    fn dynamic_oracle_tracks_inserts_deletes_and_rows() {
        let mut oracle = DynamicOracle::new(&[5, 6, 5], &[50, 60, 51]);
        assert_eq!(oracle.len(), 3);
        assert_eq!(
            oracle.point(5),
            DynamicTruth {
                first_row: 0,
                hit_count: 2,
                value_sum: 101
            }
        );

        oracle.insert_batch(&[7, 5], &[70, 52]);
        assert_eq!(oracle.point(5).hit_count, 3);
        assert_eq!(
            oracle.point(7),
            DynamicTruth {
                first_row: 3,
                hit_count: 1,
                value_sum: 70
            }
        );

        assert_eq!(oracle.delete_batch(&[5, 999]), 3);
        assert_eq!(oracle.point(5).hit_count, 0);
        assert_eq!(oracle.point(5).first_row, MISS);
        assert_eq!(oracle.len(), 2);

        // Reinsert after delete: only the fresh row is live.
        oracle.insert_batch(&[5], &[53]);
        assert_eq!(
            oracle.point(5),
            DynamicTruth {
                first_row: 5,
                hit_count: 1,
                value_sum: 53
            }
        );
    }

    #[test]
    fn dynamic_oracle_range_and_compaction() {
        let mut oracle = DynamicOracle::new(&[10, 20, 30, 40], &[1, 2, 3, 4]);
        oracle.delete_batch(&[20]);
        oracle.insert_batch(&[25], &[5]);
        let r = oracle.range(10, 30);
        assert_eq!(r.hit_count, 3, "10, 30 and the inserted 25");
        assert_eq!(r.value_sum, 9);
        assert_eq!(r.first_row, 0);

        // Rows before compaction are sparse (1 deleted), dense afterwards.
        assert_eq!(
            oracle
                .live_entries()
                .iter()
                .map(|e| e.0)
                .collect::<Vec<_>>(),
            vec![0, 2, 3, 4]
        );
        oracle.compact();
        assert_eq!(
            oracle
                .live_entries()
                .iter()
                .map(|e| e.0)
                .collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        // Next insert continues after the compacted tail.
        oracle.insert_batch(&[99], &[9]);
        assert_eq!(oracle.point(99).first_row, 4);
    }

    #[test]
    fn dynamic_oracle_two_phase_compaction_renumbers_only_the_snapshot() {
        let mut oracle = DynamicOracle::new(&[10, 20, 30, 40], &[1, 2, 3, 4]);
        oracle.delete_batch(&[20]);
        // Freeze: rows 0, 2, 3 are the snapshot (positions 0, 1, 2).
        oracle.begin_compaction();
        // During the rebuild: an insert keeps allocating high rows, a
        // delete drops a snapshot member, and rows stay untouched.
        oracle.insert_batch(&[50], &[5]);
        assert_eq!(oracle.point(50).first_row, 4);
        oracle.delete_batch(&[30]);
        assert_eq!(oracle.point(10).first_row, 0);
        assert_eq!(oracle.point(40).first_row, 3);
        // Swap: snapshot members renumber to their snapshot position, the
        // in-flight insert keeps its row, the allocator is untouched.
        oracle.finish_compaction();
        assert_eq!(oracle.point(10).first_row, 0);
        assert_eq!(oracle.point(40).first_row, 2);
        assert_eq!(oracle.point(50).first_row, 4);
        assert_eq!(oracle.point(30).first_row, MISS, "deleted mid-rebuild");
        oracle.insert_batch(&[60], &[6]);
        assert_eq!(oracle.point(60).first_row, 5, "allocator continued");
        // A second finish without a begin is a no-op.
        oracle.finish_compaction();
        assert_eq!(oracle.point(40).first_row, 2);
    }

    #[test]
    fn dynamic_oracle_upsert_replaces_all_copies() {
        let mut oracle = DynamicOracle::new(&[1, 1, 2], &[10, 11, 20]);
        let deleted = oracle.upsert_batch(&[1], &[100]);
        assert_eq!(deleted, 2);
        assert_eq!(
            oracle.point(1),
            DynamicTruth {
                first_row: 3,
                hit_count: 1,
                value_sum: 100
            }
        );
        assert_eq!(oracle.point(2).value_sum, 20);
    }
}
