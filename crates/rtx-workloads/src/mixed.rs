//! Mixed read/write operation streams for dynamic-index experiments.
//!
//! The static evaluation of the paper only needs (key set, lookup batch)
//! pairs; the dynamic-update layer additionally needs *interleaved* insert /
//! delete / upsert / lookup traffic. This module generates such streams
//! deterministically: a seeded sequence of batched [`MixedOp`]s whose keys
//! are drawn either uniformly or Zipf-skewed from a bounded key domain, so
//! that deletes and lookups naturally mix hits (keys inserted earlier) and
//! misses.
//!
//! Verification pairs a stream with the CPU oracle
//! ([`DynamicOracle`](crate::truth::DynamicOracle)): apply each operation to
//! both the index under test and the oracle, and compare every lookup
//! answer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtx_query::{IndexError, QueryBatch, QueryOutcome, UpdatableIndex, UpdateReport};

use crate::zipf::ZipfSampler;

/// One batched operation of a mixed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixedOp {
    /// Insert the `(key, value)` pairs.
    Insert(Vec<(u64, u64)>),
    /// Delete every entry holding one of the keys.
    Delete(Vec<u64>),
    /// Upsert the `(key, value)` pairs (delete all copies, insert one).
    Upsert(Vec<(u64, u64)>),
    /// Point lookups.
    PointLookups(Vec<u64>),
    /// Inclusive range lookups.
    RangeLookups(Vec<(u64, u64)>),
}

impl MixedOp {
    /// Number of primitive operations in the batch.
    pub fn len(&self) -> usize {
        match self {
            MixedOp::Insert(b) | MixedOp::Upsert(b) => b.len(),
            MixedOp::Delete(b) | MixedOp::PointLookups(b) => b.len(),
            MixedOp::RangeLookups(b) => b.len(),
        }
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short display name of the operation kind.
    pub fn kind(&self) -> &'static str {
        match self {
            MixedOp::Insert(_) => "insert",
            MixedOp::Delete(_) => "delete",
            MixedOp::Upsert(_) => "upsert",
            MixedOp::PointLookups(_) => "point",
            MixedOp::RangeLookups(_) => "range",
        }
    }

    /// True for inserts, deletes and upserts.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            MixedOp::Insert(_) | MixedOp::Delete(_) | MixedOp::Upsert(_)
        )
    }

    /// The read side of the operation as a [`QueryBatch`] (with
    /// `fetch_values` set, matching the dynamic oracle's value tracking);
    /// `None` for writes.
    pub fn as_query_batch(&self) -> Option<QueryBatch> {
        match self {
            MixedOp::PointLookups(queries) => {
                Some(QueryBatch::of_points(queries).fetch_values(true))
            }
            MixedOp::RangeLookups(ranges) => Some(QueryBatch::of_ranges(ranges).fetch_values(true)),
            _ => None,
        }
    }

    /// Splits a write batch into parallel key/value columns (`values` empty
    /// for deletes); both empty for reads.
    pub fn columns(&self) -> (Vec<u64>, Vec<u64>) {
        match self {
            MixedOp::Insert(pairs) | MixedOp::Upsert(pairs) => (
                pairs.iter().map(|&(k, _)| k).collect(),
                pairs.iter().map(|&(_, v)| v).collect(),
            ),
            MixedOp::Delete(keys) => (keys.clone(), Vec::new()),
            _ => (Vec::new(), Vec::new()),
        }
    }
}

/// What one applied [`MixedOp`] produced: the update report (writes) or the
/// query outcome (reads).
#[derive(Debug, Clone, Default)]
pub struct MixedOpResult {
    /// The report of a write batch; `None` for reads.
    pub update: Option<UpdateReport>,
    /// The outcome of a lookup batch; `None` for writes.
    pub lookups: Option<QueryOutcome>,
}

/// Applies one mixed operation to an index through the unified update/query
/// API: writes go through [`UpdatableIndex`], lookups execute as a
/// [`QueryBatch`].
pub fn apply_mixed_op(
    index: &mut dyn UpdatableIndex,
    op: &MixedOp,
) -> Result<MixedOpResult, IndexError> {
    let mut result = MixedOpResult::default();
    match op {
        MixedOp::Insert(_) => {
            let (keys, values) = op.columns();
            result.update = Some(index.insert(&keys, &values)?);
        }
        MixedOp::Delete(keys) => {
            result.update = Some(index.delete(keys)?);
        }
        MixedOp::Upsert(_) => {
            let (keys, values) = op.columns();
            result.update = Some(index.upsert(&keys, &values)?);
        }
        MixedOp::PointLookups(_) | MixedOp::RangeLookups(_) => {
            let batch = op.as_query_batch().expect("read op");
            result.lookups = Some(index.execute(&batch)?);
        }
    }
    Ok(result)
}

/// Shape of a generated mixed stream.
///
/// The five `*_weight` fields are relative (they need not sum to 1); each
/// generated batch picks its kind with probability proportional to its
/// weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixedWorkloadConfig {
    /// Total number of primitive operations across all batches.
    pub total_ops: usize,
    /// Primitive operations per batch.
    pub batch_size: usize,
    /// Relative weight of insert batches.
    pub insert_weight: f64,
    /// Relative weight of delete batches.
    pub delete_weight: f64,
    /// Relative weight of upsert batches.
    pub upsert_weight: f64,
    /// Relative weight of point-lookup batches.
    pub point_weight: f64,
    /// Relative weight of range-lookup batches.
    pub range_weight: f64,
    /// Keys are drawn from `0..key_domain`.
    pub key_domain: u64,
    /// Zipf skew over the key domain (0 = uniform).
    pub zipf_theta: f64,
    /// Span of generated range lookups (`upper = lower + span - 1`).
    pub range_span: u64,
    /// Seed of the stream.
    pub seed: u64,
}

impl MixedWorkloadConfig {
    /// A balanced update-heavy mix (25% inserts, 15% deletes, 10% upserts,
    /// 35% point lookups, 15% range lookups) over a uniform key domain.
    pub fn uniform(total_ops: usize, key_domain: u64, seed: u64) -> Self {
        MixedWorkloadConfig {
            total_ops,
            batch_size: (total_ops / 20).clamp(1, 1024),
            insert_weight: 0.25,
            delete_weight: 0.15,
            upsert_weight: 0.10,
            point_weight: 0.35,
            range_weight: 0.15,
            key_domain,
            zipf_theta: 0.0,
            range_span: 16,
            seed,
        }
    }

    /// The same mix with Zipf-skewed key choice (hot keys are inserted,
    /// deleted and looked up far more often).
    pub fn zipfian(total_ops: usize, key_domain: u64, theta: f64, seed: u64) -> Self {
        MixedWorkloadConfig {
            zipf_theta: theta,
            ..Self::uniform(total_ops, key_domain, seed)
        }
    }
}

/// Generates the operation stream described by `config`.
pub fn mixed_ops(config: &MixedWorkloadConfig) -> Vec<MixedOp> {
    let mut zipf = (config.zipf_theta > 0.0)
        .then(|| ZipfSampler::new(config.key_domain as usize, config.zipf_theta, config.seed));
    mixed_ops_with(config, move |rng| match &mut zipf {
        Some(sampler) => sampler.sample() as u64,
        None => rng.gen_range(0..config.key_domain),
    })
}

/// Generates the operation stream described by `config`, drawing every key
/// through `draw_key` instead of the config's uniform/Zipf picker. This is
/// the shared engine behind [`mixed_ops`] and the skewed generators in
/// [`crate::skew`].
pub(crate) fn mixed_ops_with(
    config: &MixedWorkloadConfig,
    mut draw_key: impl FnMut(&mut StdRng) -> u64,
) -> Vec<MixedOp> {
    assert!(
        config.total_ops > 0,
        "a mixed workload needs at least one operation"
    );
    assert!(
        config.batch_size > 0,
        "batches must hold at least one operation"
    );
    assert!(config.key_domain > 0, "the key domain must be non-empty");
    assert!(
        config.range_span >= 1,
        "range lookups must span at least one key"
    );
    let weights = [
        config.insert_weight,
        config.delete_weight,
        config.upsert_weight,
        config.point_weight,
        config.range_weight,
    ];
    assert!(
        weights.iter().all(|w| *w >= 0.0) && weights.iter().sum::<f64>() > 0.0,
        "operation weights must be non-negative and not all zero"
    );
    let total_weight: f64 = weights.iter().sum();

    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x4D49_5845_444F_5053);

    let mut ops = Vec::new();
    let mut remaining = config.total_ops;
    while remaining > 0 {
        let batch = config.batch_size.min(remaining);
        remaining -= batch;

        let mut pick = rng.gen_range(0.0..total_weight);
        let mut kind = weights.len() - 1;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                kind = i;
                break;
            }
            pick -= w;
        }

        let op = match kind {
            0 => MixedOp::Insert(
                (0..batch)
                    .map(|_| (draw_key(&mut rng), rng.gen_range(0..1_000_000u64)))
                    .collect(),
            ),
            1 => MixedOp::Delete((0..batch).map(|_| draw_key(&mut rng)).collect()),
            2 => MixedOp::Upsert(
                (0..batch)
                    .map(|_| (draw_key(&mut rng), rng.gen_range(0..1_000_000u64)))
                    .collect(),
            ),
            3 => MixedOp::PointLookups((0..batch).map(|_| draw_key(&mut rng)).collect()),
            _ => MixedOp::RangeLookups(
                (0..batch)
                    .map(|_| {
                        let max_lower = config.key_domain.saturating_sub(config.range_span);
                        let lower = draw_key(&mut rng).min(max_lower);
                        (lower, lower + config.range_span - 1)
                    })
                    .collect(),
            ),
        };
        ops.push(op);
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stream_covers_the_requested_operation_count() {
        let config = MixedWorkloadConfig::uniform(10_000, 4096, 7);
        let ops = mixed_ops(&config);
        let total: usize = ops.iter().map(MixedOp::len).sum();
        assert_eq!(total, 10_000);
        assert!(ops
            .iter()
            .all(|op| !op.is_empty() && op.len() <= config.batch_size));
        // Deterministic.
        assert_eq!(ops, mixed_ops(&config));
        assert_ne!(ops, mixed_ops(&MixedWorkloadConfig { seed: 8, ..config }));
    }

    #[test]
    fn all_operation_kinds_appear_in_a_long_stream() {
        let ops = mixed_ops(&MixedWorkloadConfig::uniform(20_000, 1024, 3));
        let kinds: HashSet<&'static str> = ops.iter().map(MixedOp::kind).collect();
        for kind in ["insert", "delete", "upsert", "point", "range"] {
            assert!(kinds.contains(kind), "missing {kind} batches");
        }
        assert!(ops.iter().any(MixedOp::is_write));
    }

    #[test]
    fn keys_and_ranges_respect_the_domain() {
        let config = MixedWorkloadConfig::uniform(5_000, 500, 11);
        for op in mixed_ops(&config) {
            match op {
                MixedOp::Insert(b) | MixedOp::Upsert(b) => {
                    assert!(b.iter().all(|&(k, _)| k < 500));
                }
                MixedOp::Delete(b) | MixedOp::PointLookups(b) => {
                    assert!(b.iter().all(|&k| k < 500));
                }
                MixedOp::RangeLookups(b) => {
                    for (l, u) in b {
                        assert!(l <= u && u < 500 + config.range_span);
                        assert_eq!(u - l + 1, config.range_span);
                    }
                }
            }
        }
    }

    #[test]
    fn zipf_streams_concentrate_key_traffic() {
        let uniform = mixed_ops(&MixedWorkloadConfig::uniform(20_000, 10_000, 5));
        let skewed = mixed_ops(&MixedWorkloadConfig::zipfian(20_000, 10_000, 1.5, 5));
        let distinct = |ops: &[MixedOp]| -> usize {
            let mut keys = HashSet::new();
            for op in ops {
                match op {
                    MixedOp::Insert(b) | MixedOp::Upsert(b) => {
                        keys.extend(b.iter().map(|&(k, _)| k))
                    }
                    MixedOp::Delete(b) | MixedOp::PointLookups(b) => keys.extend(b.iter()),
                    MixedOp::RangeLookups(b) => keys.extend(b.iter().map(|&(l, _)| l)),
                }
            }
            keys.len()
        };
        assert!(
            distinct(&skewed) < distinct(&uniform) / 2,
            "zipf traffic must touch far fewer distinct keys ({} vs {})",
            distinct(&skewed),
            distinct(&uniform)
        );
    }

    #[test]
    fn tiny_domains_smaller_than_the_range_span_are_safe() {
        // key_domain (8) < range_span (16): ranges clamp to lower = 0
        // instead of underflowing.
        let config = MixedWorkloadConfig::uniform(2_000, 8, 13);
        for op in mixed_ops(&config) {
            if let MixedOp::RangeLookups(b) = op {
                for (l, u) in b {
                    assert_eq!(l, 0);
                    assert_eq!(u, config.range_span - 1);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one operation")]
    fn empty_workload_rejected() {
        let _ = mixed_ops(&MixedWorkloadConfig::uniform(0, 10, 1));
    }
}
