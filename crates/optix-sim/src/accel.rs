//! Acceleration structures (`optixAccelBuild` / `optixAccelCompact` /
//! update).
//!
//! A [`GeometryAccel`] owns both the primitive buffer (the paper's "vertex
//! buffer", whose position encodes the rowID) and the BVH built over it.
//! Device-memory usage of both parts is accounted against the owning
//! [`Device`]'s tracker, including the temporary scratch memory the build
//! consumes, so that Table 6 (footprint during vs. after build) can be
//! reproduced.

use gpu_device::build::{staged_build_cost, BuildWork, BUILD_STAGE_COUNT};
use gpu_device::{worker_count, Device, KernelStats, SimulatedTime};
use rtx_bvh::{refit, BuildConfig, BuildPipeline, BuilderKind, Bvh, PrimitiveSet};

use crate::build_input::{BuildInput, PrimitiveKind};

/// Options for `optixAccelBuild`, restricted to the flags RTIndeX uses.
#[derive(Debug, Clone, Copy)]
pub struct AccelBuildOptions {
    /// `OPTIX_BUILD_FLAG_ALLOW_UPDATE`: enables refitting updates and, like
    /// in OptiX, disables the effect of compaction.
    pub allow_update: bool,
    /// `OPTIX_BUILD_FLAG_ALLOW_COMPACTION`: run compaction right after the
    /// build (the paper compacts in all final configurations).
    pub compact: bool,
    /// Maximum primitives per BVH leaf.
    pub max_leaf_size: usize,
    /// Which builder the "driver" uses.
    pub builder: BuilderKind,
    /// Concurrent build queues the staged pipeline is simulated at;
    /// `None` uses the pool width ([`gpu_device::worker_count`]). The
    /// emitted structure never depends on this — only the simulated build
    /// time does.
    pub build_workers: Option<usize>,
}

impl Default for AccelBuildOptions {
    fn default() -> Self {
        AccelBuildOptions {
            allow_update: false,
            compact: true,
            max_leaf_size: 4,
            builder: BuilderKind::Lbvh,
            build_workers: None,
        }
    }
}

impl AccelBuildOptions {
    /// Returns options with updates allowed (and compaction therefore
    /// disabled).
    pub fn updatable() -> Self {
        AccelBuildOptions {
            allow_update: true,
            compact: false,
            ..Default::default()
        }
    }

    /// Returns options pinned to an explicit build-queue width.
    pub fn with_build_workers(mut self, workers: usize) -> Self {
        self.build_workers = Some(workers.max(1));
        self
    }
}

/// Metrics captured while building (or updating) an acceleration structure.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildMetrics {
    /// Host wall-clock time spent constructing the BVH.
    pub host_build_time: std::time::Duration,
    /// Simulated device time for the build kernel.
    pub simulated_time_s: f64,
    /// Simulated seconds per pipeline stage, indexed by
    /// [`gpu_device::build::BuildStage::index`]. All zero after a refitting
    /// update (refits are a single kernel, not a pipeline).
    pub stage_sim_s: [f64; BUILD_STAGE_COUNT],
    /// Build-queue width the staged pipeline was simulated at.
    pub build_workers: usize,
    /// Subtrees emitted by the parallel stage (0 for refits).
    pub subtree_count: usize,
    /// Bytes of temporary memory used during the build and released after.
    pub scratch_bytes: u64,
    /// Bytes reclaimed by compaction (0 when compaction did not run).
    pub compacted_bytes: u64,
}

/// An acceleration-structure build running on a background thread.
///
/// Created by [`GeometryAccel::build_async`]. Dropping it without calling
/// [`wait`](PendingAccelBuild::wait) detaches the build (it still completes
/// and is then discarded).
#[derive(Debug)]
pub struct PendingAccelBuild {
    handle: std::thread::JoinHandle<GeometryAccel>,
}

impl PendingAccelBuild {
    /// True once the background build has completed and
    /// [`wait`](PendingAccelBuild::wait) would return without blocking.
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }

    /// Blocks until the build completes and returns the structure.
    pub fn wait(self) -> GeometryAccel {
        self.handle.join().expect("accel build thread panicked")
    }
}

/// A built geometry acceleration structure.
#[derive(Debug)]
pub struct GeometryAccel {
    input: BuildInput,
    bvh: Bvh,
    metrics: BuildMetrics,
    /// Device allocation backing the primitive buffer.
    prim_buffer: gpu_device::DeviceBuffer<u8>,
    /// Device allocation backing the BVH nodes.
    bvh_buffer: gpu_device::DeviceBuffer<u8>,
}

impl GeometryAccel {
    /// Builds the acceleration structure (our `optixAccelBuild`) through
    /// the staged parallel pipeline: snapshot → Morton sort → parallel
    /// subtree emission over the worker pool → top-level stitch → optional
    /// compaction. Each stage is charged as a build kernel against the
    /// device's cost model, with the data-parallel stages split over the
    /// configured build-queue width, so simulated build throughput scales
    /// with [`gpu_device::worker_count`] (or the explicit
    /// [`AccelBuildOptions::build_workers`] override). The emitted
    /// structure is bit-identical at every width.
    pub fn build(device: &Device, input: BuildInput, options: &AccelBuildOptions) -> GeometryAccel {
        let start = std::time::Instant::now();

        let config = BuildConfig {
            max_leaf_size: options.max_leaf_size,
            sah_bins: 16,
            allow_update: options.allow_update,
            builder: options.builder,
        };
        let workers = options.build_workers.unwrap_or_else(worker_count).max(1);

        // Temporary build scratch: GPU builders need roughly another copy of
        // the primitive data plus sort space. Model it as 2x the primitive
        // buffer, held only for the duration of the build.
        let scratch_bytes = input.primitive_buffer_bytes() * 2;
        let scratch = device.alloc::<u8>(scratch_bytes as usize);

        let staged = BuildPipeline::new(config)
            .with_workers(workers)
            .run(input.as_primitive_set());
        let mut bvh = staged.bvh;
        let mut compacted_bytes = 0;
        if options.compact {
            compacted_bytes = bvh.compact();
        }

        let host_build_time = start.elapsed();
        drop(scratch);

        // Account the persistent allocations.
        let prim_buffer = device.alloc::<u8>(input.primitive_buffer_bytes() as usize);
        let bvh_buffer = device.alloc::<u8>(bvh.memory_bytes() as usize);

        // Charge the staged pipeline to the device. The BVH build remains a
        // multi-kernel pipeline that touches the primitive buffer several
        // times and writes the whole hierarchy — noticeably more work than
        // the single radix sort behind the SA/B+ builds, which is why RX
        // has the slowest build in Figure 10c.
        let work = BuildWork {
            prims: input.len() as u64,
            prim_buffer_bytes: input.primitive_buffer_bytes(),
            bvh_bytes: Bvh::tight_bytes_for(bvh.node_count(), bvh.primitive_count()),
            subtrees: staged.subtree_count.max(1) as u64,
            morton_sort: matches!(options.builder, BuilderKind::Lbvh),
        };
        let cost = staged_build_cost(device, &work, workers, options.compact);

        let metrics = BuildMetrics {
            host_build_time,
            simulated_time_s: cost.total_s,
            stage_sim_s: cost.stage_s,
            build_workers: workers,
            subtree_count: staged.subtree_count,
            scratch_bytes,
            compacted_bytes,
        };

        GeometryAccel {
            input,
            bvh,
            metrics,
            prim_buffer,
            bvh_buffer,
        }
    }

    /// Starts a build on a background thread (the asynchronous half of
    /// `optixAccelBuild` on a side stream): the calling thread keeps
    /// serving from existing structures while the new one is constructed,
    /// and claims the result with [`PendingAccelBuild::wait`].
    pub fn build_async(
        device: &Device,
        input: BuildInput,
        options: &AccelBuildOptions,
    ) -> PendingAccelBuild {
        let device = device.clone();
        let options = *options;
        PendingAccelBuild {
            handle: std::thread::Builder::new()
                .name("rtx-accel-build".to_string())
                .spawn(move || GeometryAccel::build(&device, input, &options))
                .expect("spawn accel build thread"),
        }
    }

    /// Number of primitives in the structure.
    pub fn primitive_count(&self) -> usize {
        self.input.len()
    }

    /// The primitive kind of the underlying build input.
    pub fn kind(&self) -> PrimitiveKind {
        self.input.kind()
    }

    /// The build input (primitive buffer).
    pub fn input(&self) -> &BuildInput {
        &self.input
    }

    /// The primitives as an abstract set (used by traversal).
    pub fn primitives(&self) -> &dyn PrimitiveSet {
        self.input.as_primitive_set()
    }

    /// The underlying BVH.
    pub fn bvh(&self) -> &Bvh {
        &self.bvh
    }

    /// Build metrics of the most recent build or update.
    pub fn metrics(&self) -> &BuildMetrics {
        &self.metrics
    }

    /// Total device memory the structure occupies right now (primitive
    /// buffer + BVH).
    pub fn memory_bytes(&self) -> u64 {
        self.prim_buffer.size_bytes() + self.bvh_buffer.size_bytes()
    }

    /// Simulated device time of the most recent build/update.
    pub fn simulated_build_time(&self) -> SimulatedTime {
        SimulatedTime::from_seconds(self.metrics.simulated_time_s)
    }

    /// Performs a refitting update (our
    /// `optixAccelBuild(OPTIX_BUILD_OPERATION_UPDATE)`): replaces the
    /// primitive buffer with `new_input` (same primitive count, same kind)
    /// and refits the existing BVH without rebuilding its topology.
    pub fn update(&mut self, device: &Device, new_input: BuildInput) -> Result<(), String> {
        if new_input.kind() != self.input.kind() {
            return Err(format!(
                "update cannot change the primitive type ({:?} -> {:?})",
                self.input.kind(),
                new_input.kind()
            ));
        }
        let start = std::time::Instant::now();

        // Updates also require temporary memory (the OptiX documentation's
        // "updates still require additional temporary memory").
        let scratch_bytes = new_input.primitive_buffer_bytes();
        let scratch = device.alloc::<u8>(scratch_bytes as usize);

        self.input = new_input;
        refit::refit(&mut self.bvh, self.input.as_primitive_set()).map_err(|e| e.to_string())?;
        drop(scratch);

        let n = self.input.len() as u64;
        // The whole primitive buffer is passed to the update routine, so the
        // cost is independent of how many primitives actually moved.
        let update_stats = KernelStats {
            threads_launched: n,
            kernel_launches: 1,
            instructions: n * 20,
            dram_bytes_read: self.input.primitive_buffer_bytes() * 2,
            dram_bytes_written: self.bvh.memory_bytes(),
            ..KernelStats::new()
        };
        let simulated = device.cost_model().simulated_time(&update_stats);
        device.profiler().record_kernel(update_stats);

        self.metrics = BuildMetrics {
            host_build_time: start.elapsed(),
            simulated_time_s: simulated.as_seconds(),
            scratch_bytes,
            ..BuildMetrics::default()
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_math::Vec3f;

    fn centers(n: usize) -> Vec<Vec3f> {
        (0..n).map(|i| Vec3f::new(i as f32, 0.0, 0.0)).collect()
    }

    #[test]
    fn build_produces_valid_structure_and_accounts_memory() {
        let device = Device::default_eval();
        let gas = GeometryAccel::build(
            &device,
            BuildInput::from_centers(PrimitiveKind::Triangle, &centers(1000)),
            &AccelBuildOptions::default(),
        );
        assert_eq!(gas.primitive_count(), 1000);
        assert_eq!(gas.kind(), PrimitiveKind::Triangle);
        gas.bvh().validate().expect("valid BVH");
        assert!(gas.memory_bytes() > 0);
        assert_eq!(device.memory().current_bytes(), gas.memory_bytes());
        // Peak includes the build scratch.
        assert!(device.memory().peak_bytes() > gas.memory_bytes());
        assert!(gas.metrics().compacted_bytes > 0, "default options compact");
        assert!(gas.simulated_build_time().as_seconds() > 0.0);
    }

    #[test]
    fn compaction_shrinks_footprint() {
        let device = Device::default_eval();
        let input = BuildInput::from_centers(PrimitiveKind::Triangle, &centers(4096));
        let uncompacted = GeometryAccel::build(
            &device,
            input.clone(),
            &AccelBuildOptions {
                compact: false,
                ..Default::default()
            },
        );
        let compacted = GeometryAccel::build(&device, input, &AccelBuildOptions::default());
        assert!(compacted.memory_bytes() < uncompacted.memory_bytes());
    }

    #[test]
    fn sphere_footprint_smaller_than_triangle_footprint() {
        let device = Device::default_eval();
        let c = centers(4096);
        let tri = GeometryAccel::build(
            &device,
            BuildInput::from_centers(PrimitiveKind::Triangle, &c),
            &AccelBuildOptions::default(),
        );
        let sph = GeometryAccel::build(
            &device,
            BuildInput::from_centers(PrimitiveKind::Sphere, &c),
            &AccelBuildOptions::default(),
        );
        // The primitive buffer dominates the difference: 36 vs 12 bytes/key.
        assert!(sph.input().primitive_buffer_bytes() < tri.input().primitive_buffer_bytes());
    }

    #[test]
    fn update_refits_and_rejects_kind_changes() {
        let device = Device::default_eval();
        let mut gas = GeometryAccel::build(
            &device,
            BuildInput::from_centers(PrimitiveKind::Triangle, &centers(128)),
            &AccelBuildOptions::updatable(),
        );
        // Move every key by +1000: same count, same kind -> ok.
        let moved: Vec<Vec3f> = (0..128)
            .map(|i| Vec3f::new(1000.0 + i as f32, 0.0, 0.0))
            .collect();
        gas.update(
            &device,
            BuildInput::from_centers(PrimitiveKind::Triangle, &moved),
        )
        .expect("update succeeds");
        assert!(gas
            .bvh()
            .root_bounds()
            .contains_point(Vec3f::new(1064.0, 0.0, 0.0)));

        let err = gas
            .update(
                &device,
                BuildInput::from_centers(PrimitiveKind::Sphere, &moved),
            )
            .expect_err("kind change must fail");
        assert!(err.contains("primitive type"));
    }

    #[test]
    fn update_requires_updatable_build() {
        let device = Device::default_eval();
        let mut gas = GeometryAccel::build(
            &device,
            BuildInput::from_centers(PrimitiveKind::Triangle, &centers(16)),
            &AccelBuildOptions::default(),
        );
        let err = gas
            .update(
                &device,
                BuildInput::from_centers(PrimitiveKind::Triangle, &centers(16)),
            )
            .expect_err("non-updatable build");
        assert!(err.contains("allow-update"));
    }

    #[test]
    fn build_records_one_kernel_per_pipeline_stage() {
        let device = Device::default_eval();
        let before = device.profiler().kernels_recorded();
        let gas = GeometryAccel::build(
            &device,
            BuildInput::from_centers(PrimitiveKind::Aabb, &centers(64)),
            &AccelBuildOptions::default(),
        );
        assert_eq!(
            device.profiler().kernels_recorded(),
            before + gpu_device::BUILD_STAGE_COUNT as u64
        );
        assert!(device.profiler().last_kernel().dram_bytes_written > 0);
        // Every executed stage contributes simulated time that sums to the
        // total.
        let m = gas.metrics();
        assert!(m.stage_sim_s.iter().all(|&s| s > 0.0));
        assert!((m.stage_sim_s.iter().sum::<f64>() - m.simulated_time_s).abs() < 1e-12);
        assert!(m.subtree_count >= 1);
        assert!(m.build_workers >= 1);
    }

    #[test]
    fn wider_build_queues_shrink_simulated_build_time_only() {
        let device = Device::default_eval();
        let input = BuildInput::from_centers(PrimitiveKind::Triangle, &centers(1 << 16));
        let serial = GeometryAccel::build(
            &device,
            input.clone(),
            &AccelBuildOptions::default().with_build_workers(1),
        );
        let wide = GeometryAccel::build(
            &device,
            input,
            &AccelBuildOptions::default().with_build_workers(8),
        );
        assert!(
            wide.metrics().simulated_time_s < serial.metrics().simulated_time_s,
            "8 build queues must beat 1"
        );
        // The emitted structure is identical at every width.
        assert_eq!(serial.bvh().nodes, wide.bvh().nodes);
        assert_eq!(serial.bvh().prim_indices, wide.bvh().prim_indices);
    }

    #[test]
    fn async_build_matches_synchronous_build() {
        let device = Device::default_eval();
        let input = BuildInput::from_centers(PrimitiveKind::Triangle, &centers(2048));
        let pending =
            GeometryAccel::build_async(&device, input.clone(), &AccelBuildOptions::default());
        let sync = GeometryAccel::build(&device, input, &AccelBuildOptions::default());
        let gas = pending.wait();
        assert_eq!(gas.bvh().nodes, sync.bvh().nodes);
        assert_eq!(gas.bvh().prim_indices, sync.bvh().prim_indices);
        gas.bvh().validate().expect("valid async build");
    }
}
