//! # rtx-durable
//!
//! WAL + snapshot persistence with crash-consistent recovery for the
//! dynamic RTIndeX backends.
//!
//! Every index in the reproduction is memory-only: a process crash loses
//! the delta layer's acknowledged updates. This crate adds the canonical
//! database answer — a redo [`WriteAheadLog`] (append-only checksummed
//! segments, one record per update batch and per reorganisation point) in
//! front of any [`UpdatableIndex`], plus [`Snapshot`]s of the compacted
//! base at checkpoint time so the log stays short. Reopening the directory
//! replays snapshot + WAL and lands, batch for batch, on the exact
//! pre-crash state — rowIDs included, torn final records cut off by the
//! frame CRCs.
//!
//! Two wrappers share the machinery:
//!
//! * [`DurableIndex`] — one WAL + snapshot chain around one backend;
//! * [`ShardedDurableIndex`] — per-shard WALs plus a root commit journal
//!   around a [`ShardedIndex`](rtx_shard::ShardedIndex); shards recover in
//!   parallel on the worker pool and a crash between a shard append and
//!   the root commit rolls the whole batch back.
//!
//! [`install_durability`] hooks both into a [`Registry`], after which the
//! trailing `"+wal:<path>"` name production builds them:
//!
//! ```text
//! "RXD+wal:/data/ix"            one durable RXD
//! "RXD:sah@4:hash+wal:/data/ix" four durable hash-routed shards
//! ```
//!
//! The same name *creates* state on first use (non-empty build columns)
//! and *reopens* it afterwards (empty build columns — the snapshot + WAL
//! are the truth; building over existing state is refused). A `META`
//! manifest in the directory records which wrapper owns it, the base
//! backend name, and — sharded — the router, whose range partition bounds
//! cannot be re-derived once the original build column is gone.

pub mod config;
pub mod durable;
pub mod record;
pub mod sharded;
pub mod snapshot;
pub mod wal;

use std::fs::{self, File};
use std::io::{self, Read as _, Write as _};
use std::path::Path;

use rtx_query::{IndexError, IndexSpec, Registry, SecondaryIndex, ShardSpec, UpdatableIndex};
use rtx_shard::RouterConfig;

pub use config::{DurableConfig, FsyncPolicy};
pub use durable::DurableIndex;
pub use record::{crc32, decode_stream, LogicalReplay, WalPayload, WalRecord};
pub use sharded::ShardedDurableIndex;
pub use snapshot::{read_latest_snapshot, write_snapshot, Snapshot};
pub use wal::{log_bytes, read_log, write_log_bytes, WriteAheadLog};

use record::{put_u32, Reader};

/// Converts an I/O failure into the backend error of the durable wrapper.
pub(crate) fn io_err(label: &str, e: io::Error) -> IndexError {
    IndexError::Backend {
        backend: label.to_string().into(),
        message: format!("I/O error: {e}"),
    }
}

/// Installs the durable-index factory into `registry` with the default
/// [`DurableConfig`]: afterwards any `"<base>+wal:<path>"` name builds (or
/// reopens) a WAL-backed persistent index through the same
/// `registry.build_updatable(..)` call every experiment already uses.
pub fn install_durability(registry: &mut Registry) {
    install_durability_with(registry, DurableConfig::default());
}

/// [`install_durability`] with an explicit configuration (fsync policy,
/// segment size, checkpoint threshold) applied to every durable index the
/// registry builds.
pub fn install_durability_with(registry: &mut Registry, config: DurableConfig) {
    registry.set_durable_builder(Box::new(move |registry, base, spec| {
        open_or_create(registry, base, spec, config)
    }));
}

/// The create-vs-open dispatch behind the `"+wal:"` name production (also
/// callable directly with an explicit config). The directory's `META`
/// manifest decides: absent → create fresh state from the spec's columns;
/// present → reopen, requiring *empty* build columns (rebuilding over
/// existing durable state is refused, never silent).
pub fn open_or_create(
    registry: &Registry,
    base: &str,
    spec: &IndexSpec<'_>,
    config: DurableConfig,
) -> Result<Box<dyn UpdatableIndex>, IndexError> {
    let label = durable::durable_label(base);
    let dir = spec
        .durability
        .as_ref()
        .ok_or_else(|| IndexError::Backend {
            backend: label.clone().into(),
            message: "the spec carries no durability path (use the \"+wal:<path>\" name \
                      production or IndexSpec::with_durability)"
                .to_string(),
        })?
        .path
        .clone();

    match read_meta(&dir).map_err(|e| io_err(&label, e))? {
        Some(meta) => {
            if !spec.keys.is_empty() {
                return Err(IndexError::Backend {
                    backend: label.into(),
                    message: format!(
                        "refusing to rebuild over existing durable state at {}; reopen with \
                         empty build columns (the snapshot + WAL are the truth) or point the \
                         path at a fresh directory",
                        dir.display()
                    ),
                });
            }
            if meta.base != base {
                return Err(IndexError::Backend {
                    backend: label.into(),
                    message: format!(
                        "durable state at {} belongs to backend {:?}, not {:?}",
                        dir.display(),
                        meta.base,
                        base
                    ),
                });
            }
            match meta.router {
                Some(router) => ShardedDurableIndex::open(
                    registry,
                    base,
                    spec,
                    &dir,
                    config,
                    router,
                    meta.has_values,
                )
                .map(|ix| Box::new(ix) as Box<dyn UpdatableIndex>),
                None => DurableIndex::open(registry, base, spec, &dir, config)
                    .map(|ix| Box::new(ix) as Box<dyn UpdatableIndex>),
            }
        }
        None => {
            let verbatim = registry.updatable_backends().contains(&base);
            let sharded =
                !verbatim && registry.supports_sharding() && ShardSpec::parse(base).is_some();
            if sharded {
                let ix = ShardedDurableIndex::create(registry, base, spec, &dir, config)?;
                let meta = Meta {
                    base: base.to_string(),
                    has_values: ix.has_value_column(),
                    router: Some(ix.inner().router_config().clone()),
                };
                write_meta(&dir, &meta).map_err(|e| io_err(&label, e))?;
                Ok(Box::new(ix))
            } else {
                let ix = DurableIndex::create(registry, base, spec, &dir, config)?;
                let meta = Meta {
                    base: base.to_string(),
                    has_values: ix.has_value_column(),
                    router: None,
                };
                write_meta(&dir, &meta).map_err(|e| io_err(&label, e))?;
                Ok(Box::new(ix))
            }
        }
    }
}

// --- the META manifest ---------------------------------------------------

const META_MAGIC: u32 = 0x5258_444D; // "RXDM"
const META_FILE: &str = "META";

/// What the manifest records: which wrapper owns the directory (`router`
/// present → sharded), the base backend name, and whether a value column
/// exists.
struct Meta {
    base: String,
    has_values: bool,
    router: Option<RouterConfig>,
}

impl Meta {
    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.push(self.router.is_some() as u8);
        body.push(self.has_values as u8);
        put_u32(&mut body, self.base.len() as u32);
        body.extend_from_slice(self.base.as_bytes());
        match &self.router {
            None => {}
            Some(RouterConfig::Hash { shards }) => {
                body.push(0);
                record::put_u64(&mut body, *shards as u64);
            }
            Some(RouterConfig::Range { bounds }) => {
                body.push(1);
                record::put_u64(&mut body, bounds.len() as u64);
                for &b in bounds {
                    record::put_u64(&mut body, b);
                }
            }
            Some(RouterConfig::WeightedHash { shards, slots }) => {
                body.push(2);
                record::put_u64(&mut body, *shards as u64);
                record::put_u64(&mut body, slots.len() as u64);
                for &slot in slots {
                    record::put_u64(&mut body, slot as u64);
                }
            }
        }
        let mut file = Vec::with_capacity(body.len() + 16);
        put_u32(&mut file, META_MAGIC);
        put_u32(&mut file, crc32(&body));
        put_u32(&mut file, body.len() as u32);
        file.extend_from_slice(&body);
        file
    }

    fn decode(buf: &[u8]) -> Option<Meta> {
        let mut r = Reader { buf, pos: 0 };
        if r.u32()? != META_MAGIC {
            return None;
        }
        let crc = r.u32()?;
        let len = r.u32()? as usize;
        let body = r.bytes(len)?;
        if crc32(body) != crc {
            return None;
        }
        let mut b = Reader { buf: body, pos: 0 };
        let sharded = b.u8()? != 0;
        let has_values = b.u8()? != 0;
        let base_len = b.u32()? as usize;
        let base = String::from_utf8(b.bytes(base_len)?.to_vec()).ok()?;
        let router = if sharded {
            Some(match b.u8()? {
                0 => RouterConfig::Hash {
                    shards: b.u64()? as usize,
                },
                1 => {
                    let n = b.u64()? as usize;
                    RouterConfig::Range { bounds: b.u64s(n)? }
                }
                2 => {
                    let shards = b.u64()? as usize;
                    let n = b.u64()? as usize;
                    let slots: Vec<u32> = b
                        .u64s(n)?
                        .into_iter()
                        .map(u32::try_from)
                        .collect::<Result<_, _>>()
                        .ok()?;
                    if slots.iter().any(|&s| s as usize >= shards.max(1)) {
                        return None;
                    }
                    RouterConfig::WeightedHash { shards, slots }
                }
                _ => return None,
            })
        } else {
            None
        };
        if b.pos != b.buf.len() {
            return None;
        }
        Some(Meta {
            base,
            has_values,
            router,
        })
    }
}

/// Writes the manifest durably (temp + fsync + rename — the manifest is
/// the commit point of index creation).
fn write_meta(dir: &Path, meta: &Meta) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let tmp = dir.join("META.tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(&meta.encode())?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, dir.join(META_FILE))?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Reads the manifest: `Ok(None)` when the directory holds none (fresh
/// create), an *error* when a manifest exists but does not decode — a
/// corrupt manifest must never silently trigger a rebuild over state.
fn read_meta(dir: &Path) -> io::Result<Option<Meta>> {
    let path = dir.join(META_FILE);
    let mut buf = Vec::new();
    match File::open(&path) {
        Ok(mut file) => file.read_to_end(&mut buf).map(|_| ())?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    Meta::decode(&buf).map(Some).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("corrupt durable manifest at {}", path.display()),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trips_for_both_wrapper_kinds() {
        for router in [
            None,
            Some(RouterConfig::Hash { shards: 4 }),
            Some(RouterConfig::Range {
                bounds: vec![100, 200, 300],
            }),
            Some(RouterConfig::WeightedHash {
                shards: 3,
                slots: (0..rtx_shard::WEIGHTED_HASH_SLOTS as u32)
                    .map(|i| i % 3)
                    .collect(),
            }),
        ] {
            let meta = Meta {
                base: "RXD:sah@4:hash".to_string(),
                has_values: true,
                router: router.clone(),
            };
            let decoded = Meta::decode(&meta.encode()).expect("round trip");
            assert_eq!(decoded.base, meta.base);
            assert_eq!(decoded.has_values, meta.has_values);
            assert_eq!(decoded.router, router);
        }
    }

    #[test]
    fn corrupt_meta_reads_as_an_error_not_as_absent() {
        let dir = std::env::temp_dir().join(format!("rtx-durable-meta-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        assert!(read_meta(&dir).unwrap().is_none(), "no manifest yet");

        let meta = Meta {
            base: "RXD".to_string(),
            has_values: false,
            router: None,
        };
        write_meta(&dir, &meta).unwrap();
        assert_eq!(read_meta(&dir).unwrap().unwrap().base, "RXD");

        let mut bytes = meta.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(dir.join(META_FILE), &bytes).unwrap();
        assert!(
            read_meta(&dir).is_err(),
            "corrupt manifest must not look fresh"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
