//! Point-lookup benchmarks along the paper's workload dimensions: batch
//! size (Figures 10a, 13), sortedness (Figure 12), hit rate (Figure 14) and
//! skew (Figure 16).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtx_bench::BenchFixture;
use rtx_workloads as wl;

fn bench_batch_sizes(c: &mut Criterion) {
    let fixture = BenchFixture::default_size();
    let mut group = c.benchmark_group("rx_point_lookup_batch_size");
    for exp in [10u32, 13, 16] {
        let queries = wl::point_lookups(&fixture.keys, 1 << exp, 7);
        group.throughput(Throughput::Elements(queries.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(exp), &queries, |b, q| {
            b.iter(|| {
                fixture
                    .rx
                    .point_lookup_batch(q, Some(&fixture.values))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_sorted_vs_unsorted(c: &mut Criterion) {
    let fixture = BenchFixture::default_size();
    let sorted = wl::lookups::sorted_lookups(&fixture.point_queries);
    let mut group = c.benchmark_group("rx_point_lookup_order");
    group.throughput(Throughput::Elements(fixture.point_queries.len() as u64));
    group.bench_function("unsorted", |b| {
        b.iter(|| {
            fixture
                .rx
                .point_lookup_batch(&fixture.point_queries, Some(&fixture.values))
                .unwrap()
        })
    });
    group.bench_function("sorted", |b| {
        b.iter(|| {
            fixture
                .rx
                .point_lookup_batch(&sorted, Some(&fixture.values))
                .unwrap()
        })
    });
    group.finish();
}

fn bench_hit_rate(c: &mut Criterion) {
    let fixture = BenchFixture::default_size();
    let mut group = c.benchmark_group("rx_point_lookup_hit_rate");
    for h in [1.0f64, 0.5, 0.0] {
        let queries =
            wl::point_lookups_with_hit_rate(&fixture.keys, fixture.point_queries.len(), h, 9);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("h{h}")),
            &queries,
            |b, q| {
                b.iter(|| {
                    fixture
                        .rx
                        .point_lookup_batch(q, Some(&fixture.values))
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_skew(c: &mut Criterion) {
    let fixture = BenchFixture::default_size();
    let mut group = c.benchmark_group("rx_point_lookup_skew");
    for theta in [0.0f64, 1.0, 2.0] {
        let queries = wl::point_lookups_zipf(&fixture.keys, fixture.point_queries.len(), theta, 11);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("zipf{theta}")),
            &queries,
            |b, q| {
                b.iter(|| {
                    fixture
                        .rx
                        .point_lookup_batch(q, Some(&fixture.values))
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

/// Shared Criterion configuration: small sample counts and short measurement
/// windows keep `cargo bench --workspace` runnable in CI while still
/// producing stable medians for the simulated workloads.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_batch_sizes, bench_sorted_vs_unsorted, bench_hit_rate, bench_skew
}
criterion_main!(benches);
