//! # rtindex
//!
//! A Rust reproduction of *"RTIndeX: Exploiting Hardware-Accelerated GPU
//! Raytracing for Database Indexing"* (PVLDB 16, 2023).
//!
//! RTIndeX (RX) answers point and range lookups on a GPU-resident column by
//! turning every key into a 3-D scene primitive and every lookup into a ray:
//! the bounding volume hierarchy the raytracing driver builds over the scene
//! *is* the index, and intersection tests — executed by dedicated raytracing
//! cores on real hardware — are the lookups.
//!
//! No RTX GPU is required (or used) here: the raytracing pipeline, the BVH
//! and the GPU itself are simulated in software by the crates this facade
//! re-exports. See `DESIGN.md` for the substitution argument and
//! `EXPERIMENTS.md` for how the paper's evaluation is reproduced.
//!
//! ## Quick start
//!
//! Every backend — RX, the three GPU baselines and the dynamic delta index —
//! is built by name from the [`Registry`] and queried through the
//! [`SecondaryIndex`] trait with mixed [`QueryBatch`]es:
//!
//! ```
//! use rtindex::{registry, Device, IndexSpec, QueryBatch};
//!
//! // The simulated GPU (an RTX 4090 by default).
//! let device = Device::default_eval();
//!
//! // A secondary index over a (key, value) column pair; the position of a
//! // key is its rowID.
//! let category = vec![26u64, 25, 29, 23, 29, 27];
//! let prices = vec![10u64, 20, 30, 40, 50, 60];
//! let index = registry()
//!     .build("RX", &IndexSpec::with_values(&device, &category, &prices))
//!     .unwrap();
//!
//! // One submission mixing a range lookup, point lookups and a value fetch.
//! let out = index
//!     .execute(&QueryBatch::new().range(23, 25).point(29).fetch_values(true))
//!     .unwrap();
//! assert_eq!(out.results[0].hit_count, 2); // rowIDs 3 and 1 (Figure 1)
//! assert_eq!(out.results[1].value_sum, 30 + 50); // both rows holding 29
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`rtx_math`] | float32 geometry, intersection tests, order-preserving key encodings |
//! | [`gpu_device`] | the simulated GPU: specs, memory accounting, counters, cost model |
//! | [`rtx_bvh`] | BVH builders, compaction, refitting, traversal |
//! | [`optix_sim`] | the OptiX-shaped pipeline API (accel build, ray-gen / any-hit programs) |
//! | [`rtx_query`] | the backend-agnostic query API: `SecondaryIndex`, `QueryBatch`, registry |
//! | [`rtindex_core`] | the RX index itself (key modes, primitives, ray strategies, lookups, updates) |
//! | [`rtx_delta`] | dynamic updates: delta buffer, tombstones, auto-compaction |
//! | [`gpu_baselines`] | the HT / B+ / SA baselines and the radix sort |
//! | [`rtx_workloads`] | workload generators and ground-truth oracles |
//! | [`rtx_shard`] | the sharded execution layer: partition any backend, scatter/gather batches |
//! | [`rtx_serve`] | the concurrent query service: cross-client coalescing, admission control, fenced writes |
//! | [`rtx_table`] | the multi-index table layer: SoA row store, transactional CDC ingest, cost-based planner |
//! | [`rtx_harness`] | the experiment harness reproducing every table and figure |
//!
//! ## Sharding
//!
//! Append `@N` (optionally `:hash` / `:range`) to any backend name and the
//! registry builds it partitioned over `N` shards, with mixed batches
//! scattered across the worker pool and gathered back in submission order —
//! same results, parallel execution:
//!
//! ```
//! use rtindex::{registry, Device, IndexSpec, QueryBatch};
//!
//! let device = Device::default_eval();
//! let keys: Vec<u64> = (0..4096).collect();
//! let sharded = registry()
//!     .build("RX@4", &IndexSpec::keys_only(&device, &keys))
//!     .unwrap();
//! let out = sharded
//!     .execute(&QueryBatch::new().point(77).range(1000, 1099))
//!     .unwrap();
//! assert_eq!(out.results[0].first_row, 77);
//! assert_eq!(out.results[1].hit_count, 100);
//! ```
//!
//! ## Serving concurrent clients
//!
//! [`QueryService`] puts a concurrent front-end on any backend: clients
//! submit small batches from many threads, a coalescer thread fuses them
//! into large backend submissions (recovering the paper's batch-size
//! advantage), and admission control turns overload into backpressure:
//!
//! ```
//! use rtindex::{registry, Device, IndexSpec, QueryBatch, QueryService, ServiceConfig};
//!
//! let device = Device::default_eval();
//! let keys: Vec<u64> = (0..4096).collect();
//! let backend = registry()
//!     .build("RX@2", &IndexSpec::keys_only(&device, &keys))
//!     .unwrap();
//! let service = QueryService::start(backend, ServiceConfig::default());
//! std::thread::scope(|scope| {
//!     for client in 0..8u64 {
//!         let handle = service.handle();
//!         scope.spawn(move || {
//!             let out = handle.query(QueryBatch::new().point(client * 512)).unwrap();
//!             assert!(out.results[0].is_hit());
//!         });
//!     }
//! });
//! assert_eq!(service.stats().submitted_batches, 8);
//! ```
//!
//! ## Tables & planning
//!
//! A [`Table`] owns a multi-column row store plus any number of named
//! indexes built from per-column registry specs; CDC [`IngestBatch`]es
//! apply transactionally across all of them, and a cost-based planner
//! routes each [`TableQuery`] predicate to the cheapest eligible index
//! (recording its reasoning in an [`ExplainPlan`]):
//!
//! ```
//! use std::sync::Arc;
//! use rtindex::{registry, Device, IngestBatch, Table, TableQuery, TableSchema};
//!
//! let schema = TableSchema::new(["id", "ts", "amount"])
//!     .with_value_column("amount")
//!     .with_index("id_ht", "id", "HT")     // points → hash table
//!     .with_index("ts_rx", "ts", "RX");    // ranges → raytracing index
//! let records: Vec<Vec<u64>> = (0..512).map(|k| vec![k, k * 3, k * 7]).collect();
//! let mut table =
//!     Table::load(schema, &Device::default_eval(), Arc::new(registry()), &records).unwrap();
//!
//! table
//!     .ingest(&IngestBatch::new().upsert(vec![7, 9999, 70]).delete(8))
//!     .unwrap();
//! let out = table
//!     .query(&TableQuery::new().point("id", 7).range("ts", 0, 300).fetch_values(true))
//!     .unwrap();
//! assert_eq!(out.plan.routed_index(0), Some("id_ht"));
//! assert_eq!(out.plan.routed_index(1), Some("ts_rx"));
//! assert_eq!(out.results[0].value_sum, 70);
//! ```
//!
//! ## Dynamic updates
//!
//! The `"RXD"` backend layers a mutable delta (GPU hash buffer + tombstones)
//! over the immutable BVH and compacts automatically; the registry builds it
//! as an [`UpdatableIndex`]:
//!
//! ```
//! use rtindex::{registry, Device, IndexSpec, QueryBatch};
//!
//! let device = Device::default_eval();
//! let mut index = registry()
//!     .build_updatable(
//!         "RXD",
//!         &IndexSpec::with_values(&device, &[26, 25, 29], &[0, 1, 2]),
//!     )
//!     .unwrap();
//! index.insert(&[23], &[3]).unwrap();
//! index.delete(&[29]).unwrap();
//! let out = index.execute(&QueryBatch::of_points(&[23, 29])).unwrap();
//! assert!(out.results[0].is_hit() && !out.results[1].is_hit());
//! ```

pub use gpu_baselines;
pub use gpu_device;
pub use optix_sim;
pub use rtindex_core;
pub use rtx_bvh;
pub use rtx_delta;
pub use rtx_durable;
pub use rtx_harness;
pub use rtx_math;
pub use rtx_query;
pub use rtx_serve;
pub use rtx_shard;
pub use rtx_table;
pub use rtx_workloads;

// The most commonly used items, flattened for convenience.
pub use gpu_baselines::{BPlusTree, GpuIndex, SortedArray, WarpHashTable};
pub use gpu_device::{Device, DeviceSpec};
pub use rtindex_core::{
    Decomposition, KeyMode, PointRayStrategy, PrimitiveKind, RangeRayStrategy, RtIndex,
    RtIndexConfig, RtIndexError, TypedRtIndex,
};
pub use rtx_delta::{
    CompactionEvent, CompactionPolicy, CompactionTrigger, DynamicRtConfig, DynamicRtIndex,
};
pub use rtx_durable::{DurableConfig, DurableIndex, FsyncPolicy};
pub use rtx_harness::registry;
pub use rtx_query::{
    BatchOutcome, Capabilities, ColumnType, CompositeIndex, DurableStats, ExecArena, ExplainPlan,
    FusedBatch, IndexDef, IndexError, IndexSpec, IngestBatch, IngestOp, KeyBound, KeySchema,
    KeyTuple, KeyValue, LookupResult, MemoryUsage, Partitioning, Predicate, QueryBatch, QueryOps,
    QueryOutcome, RebalanceReport, Record, Registry, Route, SecondaryIndex, ShardLoad, ShardSpec,
    SharedOutcome, SpecName, TableQuery, TableSchema, TypedBatch, TypedOp, UpdatableIndex, MISS,
};
pub use rtx_serve::{
    AdaptiveLingerConfig, ClientHandle, PendingQuery, PendingTableQuery, QueryService,
    RebalanceConfig, RetryPolicy, ServeError, ServiceConfig, ServiceStats, TableClient,
    TableService,
};
pub use rtx_shard::{
    install_sharding, HashPartitioner, RangePartitioner, ShardedIndex, WeightedHashPartitioner,
};
pub use rtx_table::{IngestReport, Planner, Table, TableOutcome, TableStats};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_are_usable() {
        let device = Device::default_eval();
        let index = RtIndex::build(&device, &[5, 1, 9], RtIndexConfig::default()).unwrap();
        let out = index.point_lookup_batch(&[1, 2], None).unwrap();
        assert_eq!(out.results[0].first_row, 1);
        assert_eq!(out.results[1].first_row, MISS);
    }

    #[test]
    fn registry_facade_builds_every_backend() {
        let device = Device::default_eval();
        let registry = registry();
        assert_eq!(registry.backends().len(), 5);
        let keys = vec![3u64, 1, 4, 1, 5];
        for name in registry.backends() {
            match registry.build(name, &IndexSpec::keys_only(&device, &keys)) {
                Ok(ix) => {
                    let out = ix.execute(&QueryBatch::of_points(&[1, 9])).unwrap();
                    assert_eq!(out.results[0].hit_count, 2, "{name}");
                    assert!(!out.results[1].is_hit(), "{name}");
                }
                // B+ rejects the duplicate key 1.
                Err(err) => assert!(err.is_unsupported_key_set(), "{name}: {err}"),
            }
        }
    }
}
