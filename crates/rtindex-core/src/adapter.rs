//! [`SecondaryIndex`] adapter for the RX index.
//!
//! [`RtIndex`] itself takes the value column per lookup call (the paper's
//! methodology re-uses one index across value configurations); the unified
//! API binds the column at build time instead, so the adapter owns an
//! optional copy and threads it into every batch.

use rtx_query::{
    BatchOutcome, Capabilities, IndexBuildMetrics, IndexError, IndexSpec, Registry, SecondaryIndex,
};

use crate::config::RtIndexConfig;
use crate::index::RtIndex;

/// The RX backend behind the unified query API.
#[derive(Debug)]
pub struct RxAdapter {
    index: RtIndex,
    values: Option<std::sync::Arc<[u64]>>,
}

impl RxAdapter {
    /// Builds an RX index over the spec's columns with `config`. The value
    /// column is shared with the spec (and every other backend built from
    /// it), not copied. A builder selection in the spec (set by the
    /// `"RX:sah"` / `"RX:lbvh"` registry grammar or
    /// [`IndexSpec::with_builder`]) overrides the configured BVH builder.
    pub fn build(spec: &IndexSpec<'_>, mut config: RtIndexConfig) -> Result<Self, IndexError> {
        if let Some(builder) = spec.builder {
            config.builder = builder;
        }
        let index = RtIndex::build(spec.device, spec.keys, config)?;
        Ok(RxAdapter {
            index,
            values: spec.values.clone(),
        })
    }

    /// The wrapped index.
    pub fn inner(&self) -> &RtIndex {
        &self.index
    }

    fn values(&self, fetch: bool) -> Option<&[u64]> {
        if fetch {
            self.values.as_deref()
        } else {
            None
        }
    }
}

impl SecondaryIndex for RxAdapter {
    fn name(&self) -> &str {
        "RX"
    }

    fn key_count(&self) -> usize {
        self.index.key_count()
    }

    fn memory_bytes(&self) -> u64 {
        self.index.index_memory_bytes()
    }

    fn build_metrics(&self) -> IndexBuildMetrics {
        let m = self.index.build_metrics();
        IndexBuildMetrics {
            simulated_time_s: m.simulated_time_s,
            host_time: m.host_build_time,
            scratch_bytes: m.scratch_bytes,
        }
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::read_only()
    }

    fn has_value_column(&self) -> bool {
        self.values.is_some()
    }

    fn point_chunk(&self, queries: &[u64], fetch: bool) -> Result<BatchOutcome, IndexError> {
        Ok(self.index.point_lookup_batch(queries, self.values(fetch))?)
    }

    fn range_chunk(&self, ranges: &[(u64, u64)], fetch: bool) -> Result<BatchOutcome, IndexError> {
        Ok(self.index.range_lookup_batch(ranges, self.values(fetch))?)
    }
}

/// Registers the RX backend (name `"RX"`) with the given configuration.
pub fn register_rx(registry: &mut Registry, config: RtIndexConfig) {
    registry.register("RX", move |spec| {
        RxAdapter::build(spec, config).map(|ix| Box::new(ix) as Box<dyn SecondaryIndex>)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_device::Device;
    use rtx_query::{QueryBatch, MISS};

    fn spec_registry() -> Registry {
        let mut registry = Registry::new();
        register_rx(&mut registry, RtIndexConfig::default());
        registry
    }

    #[test]
    fn registry_builds_rx_and_mixed_batches_answer() {
        let device = Device::default_eval();
        let keys = vec![26u64, 25, 29, 23, 29, 27];
        let values = vec![1u64, 2, 3, 4, 5, 6];
        let registry = spec_registry();
        let ix = registry
            .build("RX", &IndexSpec::with_values(&device, &keys, &values))
            .unwrap();
        assert_eq!(ix.name(), "RX");
        assert_eq!(ix.key_count(), 6);
        assert!(ix.memory_bytes() > 0);
        assert!(ix.build_metrics().simulated_time_s > 0.0);
        assert!(ix.capabilities().range_lookups);
        assert!(ix.has_value_column());

        let out = ix
            .execute(
                &QueryBatch::new()
                    .point(29)
                    .range(23, 25)
                    .point(99)
                    .fetch_values(true),
            )
            .unwrap();
        assert_eq!(out.results[0].hit_count, 2);
        assert_eq!(out.results[0].value_sum, 3 + 5);
        assert_eq!(out.results[1].hit_count, 2);
        assert_eq!(out.results[1].value_sum, 2 + 4);
        assert_eq!(out.results[2].first_row, MISS);
        assert!(out.metrics.simulated_time_s > 0.0);
    }

    #[test]
    fn narrow_key_mode_reports_unsupported_key_set() {
        let device = Device::default_eval();
        let mut registry = Registry::new();
        register_rx(
            &mut registry,
            RtIndexConfig::default().with_key_mode(crate::KeyMode::Naive),
        );
        let big = vec![1u64 << 40];
        let err = registry
            .build("RX", &IndexSpec::keys_only(&device, &big))
            .map(|_| ())
            .unwrap_err();
        assert!(err.is_unsupported_key_set(), "{err}");
    }

    #[test]
    fn value_fetch_toggle_controls_sums() {
        let device = Device::default_eval();
        let keys = vec![1u64, 2, 3];
        let values = vec![10u64, 20, 30];
        let registry = spec_registry();
        let ix = registry
            .build("RX", &IndexSpec::with_values(&device, &keys, &values))
            .unwrap();
        let fetched = ix
            .execute(&QueryBatch::of_points(&keys).fetch_values(true))
            .unwrap();
        assert_eq!(fetched.total_value_sum(), 60);
        let unfetched = ix.execute(&QueryBatch::of_points(&keys)).unwrap();
        assert_eq!(unfetched.total_value_sum(), 0);
        assert_eq!(unfetched.hit_count(), 3);
    }
}
