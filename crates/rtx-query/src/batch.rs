//! [`QueryBatch`]: one submission mixing point lookups, range lookups and
//! an optional value-column fetch.
//!
//! The paper's methodology submits homogeneous batches (all points or all
//! ranges); real secondary-index traffic mixes both. A [`QueryBatch`]
//! preserves the submission order of a mixed stream while the executor
//! regroups the operations into homogeneous kernel launches — and, for
//! large submissions, splits every launch into bounded chunks
//! ([`QueryBatch::with_chunk_size`]) the way a real system bounds its
//! launch width and result-buffer footprint.

/// One operation of a [`QueryBatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOp {
    /// Point lookup of a key.
    Point(u64),
    /// Inclusive range lookup `[lower, upper]`.
    Range(u64, u64),
}

/// A batch of mixed lookups, built incrementally and executed through
/// [`SecondaryIndex::execute`](crate::index::SecondaryIndex::execute).
///
/// ```
/// use rtx_query::{QueryBatch, QueryOp};
///
/// let batch = QueryBatch::new()
///     .point(7)
///     .range(10, 19)
///     .points([1, 2])
///     .fetch_values(true)
///     .with_chunk_size(1024);
/// assert_eq!(batch.len(), 4);
/// assert_eq!(batch.point_count(), 3);
/// assert_eq!(batch.range_count(), 1);
/// assert_eq!(batch.ops()[1], QueryOp::Range(10, 19));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryBatch {
    ops: Vec<QueryOp>,
    fetch_values: bool,
    chunk_size: Option<usize>,
}

impl QueryBatch {
    /// An empty batch.
    pub fn new() -> Self {
        QueryBatch::default()
    }

    /// A batch of point lookups, one per query key.
    pub fn of_points(queries: &[u64]) -> Self {
        QueryBatch::new().points(queries.iter().copied())
    }

    /// A batch of inclusive range lookups.
    pub fn of_ranges(ranges: &[(u64, u64)]) -> Self {
        QueryBatch::new().ranges(ranges.iter().copied())
    }

    /// Appends one point lookup.
    pub fn point(mut self, key: u64) -> Self {
        self.ops.push(QueryOp::Point(key));
        self
    }

    /// Appends point lookups for every key of `queries`.
    pub fn points<I: IntoIterator<Item = u64>>(mut self, queries: I) -> Self {
        self.ops.extend(queries.into_iter().map(QueryOp::Point));
        self
    }

    /// Appends one inclusive range lookup `[lower, upper]`.
    pub fn range(mut self, lower: u64, upper: u64) -> Self {
        self.ops.push(QueryOp::Range(lower, upper));
        self
    }

    /// Appends an inclusive range lookup per `(lower, upper)` pair.
    pub fn ranges<I: IntoIterator<Item = (u64, u64)>>(mut self, ranges: I) -> Self {
        self.ops
            .extend(ranges.into_iter().map(|(l, u)| QueryOp::Range(l, u)));
        self
    }

    /// Appends every operation of `other`, preserving its order. This is the
    /// fuse primitive of cross-client batch coalescing
    /// ([`FusedBatch`](crate::fuse::FusedBatch)): many small submissions
    /// concatenate into one large one. Only the operations are taken —
    /// `other`'s value-fetch and chunk-size settings are the caller's to
    /// reconcile.
    pub fn append_ops(&mut self, other: &QueryBatch) {
        self.ops.extend_from_slice(other.ops());
    }

    /// Requests that every qualifying row's value be fetched and summed per
    /// operation (the paper's secondary-index methodology). Requires the
    /// index to have been built with a value column.
    pub fn fetch_values(mut self, fetch: bool) -> Self {
        self.fetch_values = fetch;
        self
    }

    /// Bounds the number of operations per kernel launch: each homogeneous
    /// run (points, ranges) is split into chunks of at most `chunk_size`
    /// operations, executed back to back with their metrics merged. Results
    /// are identical to unchunked execution. A chunk size of 0 means
    /// unbounded (the default).
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = (chunk_size > 0).then_some(chunk_size);
        self
    }

    /// The operations in submission order.
    pub fn ops(&self) -> &[QueryOp] {
        &self.ops
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the batch holds no operation.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of point lookups in the batch.
    pub fn point_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, QueryOp::Point(_)))
            .count()
    }

    /// Number of range lookups in the batch.
    pub fn range_count(&self) -> usize {
        self.len() - self.point_count()
    }

    /// Whether a value fetch was requested.
    pub fn fetches_values(&self) -> bool {
        self.fetch_values
    }

    /// The configured chunk size, or `None` for unbounded launches.
    pub fn chunk_size(&self) -> Option<usize> {
        self.chunk_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_mixed_ops_in_order() {
        let batch = QueryBatch::new()
            .range(5, 9)
            .point(1)
            .ranges([(0, 0), (2, 4)])
            .points([8, 9]);
        assert_eq!(batch.len(), 6);
        assert_eq!(batch.point_count(), 3);
        assert_eq!(batch.range_count(), 3);
        assert_eq!(batch.ops()[0], QueryOp::Range(5, 9));
        assert_eq!(batch.ops()[1], QueryOp::Point(1));
        assert_eq!(batch.ops()[5], QueryOp::Point(9));
        assert!(!batch.fetches_values());
        assert!(batch.chunk_size().is_none());
    }

    #[test]
    fn convenience_constructors() {
        let p = QueryBatch::of_points(&[1, 2, 3]);
        assert_eq!(p.point_count(), 3);
        assert_eq!(p.range_count(), 0);
        let r = QueryBatch::of_ranges(&[(1, 2)]);
        assert_eq!(r.range_count(), 1);
        assert!(QueryBatch::new().is_empty());
    }

    #[test]
    fn append_ops_concatenates_preserving_order_and_settings() {
        let mut fused = QueryBatch::new().point(1).fetch_values(true);
        fused.append_ops(&QueryBatch::new().range(2, 5).point(9).with_chunk_size(3));
        assert_eq!(
            fused.ops(),
            &[QueryOp::Point(1), QueryOp::Range(2, 5), QueryOp::Point(9)]
        );
        // Only the operations transfer; the target's own settings stay.
        assert!(fused.fetches_values());
        assert_eq!(fused.chunk_size(), None);
    }

    #[test]
    fn chunk_size_zero_means_unbounded() {
        assert_eq!(QueryBatch::new().with_chunk_size(0).chunk_size(), None);
        assert_eq!(QueryBatch::new().with_chunk_size(7).chunk_size(), Some(7));
    }
}
