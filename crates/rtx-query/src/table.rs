//! Table vocabulary: multi-column schemas, CDC ingest batches,
//! multi-predicate queries and planner explain output.
//!
//! A *table* owns one row store (one `u64` column per named column, dense
//! rowIDs) plus any number of named secondary indexes, each built over one
//! column from a backend spec in the full registry
//! [name grammar](crate::registry) — `"HT"`, `"RX:sah@4:hash"` and
//! `"RXD+wal:<path>"` are all valid per-column specs. This module holds
//! only the *vocabulary* shared by every layer (workloads generate
//! [`IngestBatch`]es, the service surfaces [`ExplainPlan`]s); the table
//! mechanics — row store, index fan-out, rollback, the planner itself —
//! live in the `rtx-table` crate, which cannot host the types because
//! `rtx-workloads` must not depend on it.
//!
//! Row identity follows the global-rowID scheme of the dynamic backends:
//! an initial bulk load of `n` records occupies rowIDs `0..n`, every
//! subsequent insert takes the next fresh rowID, and deletes leave holes
//! (no implicit renumbering). Deletes and upserts key on the table's
//! *primary column* — always the first column of the schema.

use crate::batch::QueryOp;
use crate::composite::parse_schema_name;
use crate::error::IndexError;
use crate::keys::{KeyBound, KeyValue, TypedOp};

/// One named secondary index of a table: an index `name`, the ordered
/// schema `columns` it keys on, and the backend `spec` string it is built
/// from (full [registry grammar](crate::registry)).
///
/// A single-column definition behaves exactly as before; a multi-column
/// definition builds a *composite* index whose key is the order-preserving
/// encoding of the column tuple (see [`KeySchema`](crate::keys::KeySchema)).
/// The spec may carry an explicit brace schema (`"HT{u32,u32}"`); without
/// one every key column defaults to `u64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Unique index name within the table (used by plans and reports).
    pub name: String,
    /// The schema columns the index keys on, leading column first.
    pub columns: Vec<String>,
    /// Backend spec in the registry name grammar (`"HT"`,
    /// `"RX:sah@4:hash"`, `"RXD+wal:/data/ix"`, `"B+{u32,u32}"`, …).
    pub spec: String,
}

impl IndexDef {
    /// The leading key column (the full key for single-column indexes).
    pub fn column(&self) -> &str {
        &self.columns[0]
    }

    /// True when the index keys on more than one column or its spec
    /// carries an explicit brace schema — either way the backend is built
    /// through the composite (typed) path.
    pub fn is_composite(&self) -> bool {
        self.columns.len() > 1 || self.spec.contains('{')
    }
}

/// The shape of a table: named `u64` columns, an optional designated value
/// column, and any number of named indexes.
///
/// The first column is the *primary* column: [`IngestOp::Delete`] and
/// [`IngestOp::Upsert`] key on it. Several indexes may share a column
/// (e.g. an `"HT"` and an `"RX"` over the same column, letting the
/// planner pick per predicate), and columns may have no index at all
/// (predicates on them fall back to a row-store scan).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Column names, in record order; `columns[0]` is the primary column.
    pub columns: Vec<String>,
    /// The column whose values every index serves for value-fetching
    /// queries; `None` builds keys-only indexes.
    pub value_column: Option<String>,
    /// The table's indexes.
    pub indexes: Vec<IndexDef>,
}

impl TableSchema {
    /// A schema over the named columns with no value column and no
    /// indexes yet.
    pub fn new<I, S>(columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TableSchema {
            columns: columns.into_iter().map(Into::into).collect(),
            value_column: None,
            indexes: Vec::new(),
        }
    }

    /// Designates the column whose values indexes serve to value-fetching
    /// queries.
    pub fn with_value_column(mut self, column: impl Into<String>) -> Self {
        self.value_column = Some(column.into());
        self
    }

    /// Adds a named single-column index over `column` built from `spec`.
    pub fn with_index(
        mut self,
        name: impl Into<String>,
        column: impl Into<String>,
        spec: impl Into<String>,
    ) -> Self {
        self.indexes.push(IndexDef {
            name: name.into(),
            columns: vec![column.into()],
            spec: spec.into(),
        });
        self
    }

    /// Adds a named composite index over the ordered `columns`, built from
    /// `spec` (which may carry an explicit `{...}` key schema; without one
    /// every column defaults to `u64`).
    pub fn with_composite_index<I, S>(
        mut self,
        name: impl Into<String>,
        columns: I,
        spec: impl Into<String>,
    ) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.indexes.push(IndexDef {
            name: name.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            spec: spec.into(),
        });
        self
    }

    /// The primary column's name (the delete/upsert key).
    pub fn primary_column(&self) -> &str {
        &self.columns[0]
    }

    /// Position of `column` in a record, or `None` for unknown names.
    pub fn column_position(&self, column: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == column)
    }

    /// The indexes whose *leading* key column is `column`, in definition
    /// order (composite indexes serve predicates on their leading column).
    pub fn indexes_on<'a>(&'a self, column: &'a str) -> impl Iterator<Item = &'a IndexDef> {
        self.indexes.iter().filter(move |ix| ix.column() == column)
    }

    /// Checks structural consistency: at least one column, unique
    /// non-empty column and index names, and every referenced column
    /// (index targets, the value column) declared.
    pub fn validate(&self) -> Result<(), IndexError> {
        let fail = |message: String| {
            Err(IndexError::Backend {
                backend: "table".to_string().into(),
                message,
            })
        };
        if self.columns.is_empty() {
            return fail("a table needs at least one column".to_string());
        }
        for (i, column) in self.columns.iter().enumerate() {
            if column.is_empty() {
                return fail("column names must be non-empty".to_string());
            }
            if self.columns[..i].contains(column) {
                return fail(format!("duplicate column name {column:?}"));
            }
        }
        if let Some(value) = &self.value_column {
            if self.column_position(value).is_none() {
                return fail(format!("value column {value:?} is not a schema column"));
            }
        }
        for (i, ix) in self.indexes.iter().enumerate() {
            if ix.name.is_empty() {
                return fail("index names must be non-empty".to_string());
            }
            if self.indexes[..i].iter().any(|other| other.name == ix.name) {
                return fail(format!("duplicate index name {:?}", ix.name));
            }
            if ix.columns.is_empty() {
                return fail(format!("index {:?} keys on no columns", ix.name));
            }
            for (j, column) in ix.columns.iter().enumerate() {
                if self.column_position(column).is_none() {
                    return fail(format!(
                        "index {:?} keys on unknown column {column:?}",
                        ix.name
                    ));
                }
                if ix.columns[..j].contains(column) {
                    return fail(format!("index {:?} repeats key column {column:?}", ix.name));
                }
            }
            if ix.spec.is_empty() {
                return fail(format!("index {:?} has an empty backend spec", ix.name));
            }
            // A brace schema in the spec must cover the key columns one for
            // one (the registry would reject the arity mismatch anyway, but
            // failing at schema validation is friendlier).
            match parse_schema_name(&ix.spec) {
                Ok(Some((_, schema))) if schema.columns().len() != ix.columns.len() => {
                    return fail(format!(
                        "index {:?} keys on {} column(s) but its spec schema {schema} has {}",
                        ix.name,
                        ix.columns.len(),
                        schema.columns().len()
                    ));
                }
                Ok(_) => {}
                Err(err) => {
                    return fail(format!("index {:?} has a malformed spec: {err}", ix.name));
                }
            }
        }
        Ok(())
    }
}

/// One CDC record: a `u64` per schema column, in schema order.
pub type Record = Vec<u64>;

/// One change-data-capture operation of an [`IngestBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestOp {
    /// Append a fresh record (takes the next rowID).
    Insert(Record),
    /// Delete every live record whose *primary* column holds the key.
    Delete(u64),
    /// Delete every record with the record's primary key, then insert the
    /// record fresh.
    Upsert(Record),
}

impl IngestOp {
    /// The record's primary-column key (`record[0]`), or the delete key.
    pub fn primary_key(&self) -> u64 {
        match self {
            IngestOp::Insert(record) | IngestOp::Upsert(record) => record[0],
            IngestOp::Delete(key) => *key,
        }
    }

    /// Short display name of the operation kind.
    pub fn kind(&self) -> &'static str {
        match self {
            IngestOp::Insert(_) => "insert",
            IngestOp::Delete(_) => "delete",
            IngestOp::Upsert(_) => "upsert",
        }
    }
}

/// An ordered batch of CDC operations, applied to a table and fanned out
/// to every index atomically: either the whole batch lands or none of it
/// does.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestBatch {
    ops: Vec<IngestOp>,
}

impl IngestBatch {
    /// An empty batch.
    pub fn new() -> Self {
        IngestBatch::default()
    }

    /// Appends an insert of `record`.
    pub fn insert(mut self, record: Record) -> Self {
        self.ops.push(IngestOp::Insert(record));
        self
    }

    /// Appends a delete of every record whose primary key is `key`.
    pub fn delete(mut self, key: u64) -> Self {
        self.ops.push(IngestOp::Delete(key));
        self
    }

    /// Appends an upsert of `record` (keyed on its primary column).
    pub fn upsert(mut self, record: Record) -> Self {
        self.ops.push(IngestOp::Upsert(record));
        self
    }

    /// Appends an already-built operation.
    pub fn push(mut self, op: IngestOp) -> Self {
        self.ops.push(op);
        self
    }

    /// The operations in application order.
    pub fn ops(&self) -> &[IngestOp] {
        &self.ops
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// One predicate of a [`TableQuery`], over a named column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Rows whose column equals `key`.
    Point {
        /// The predicated column.
        column: String,
        /// The key to match.
        key: u64,
    },
    /// Rows whose column lies in `lower..=upper`.
    Range {
        /// The predicated column.
        column: String,
        /// Inclusive lower bound.
        lower: u64,
        /// Inclusive upper bound.
        upper: u64,
    },
    /// Rows whose column's high bits equal `prefix` — i.e. all keys `k`
    /// with `k >> low_bits == prefix`. Compiles to the contiguous range
    /// `[prefix << low_bits, (prefix << low_bits) + 2^low_bits - 1]`; a
    /// prefix too large for the key width matches nothing.
    Prefix {
        /// The predicated column.
        column: String,
        /// The fixed high bits.
        prefix: u64,
        /// Number of free low bits (0 makes this a point lookup).
        low_bits: u32,
    },
    /// A tuple prefix-range over several columns: the first `prefix.len()`
    /// columns are bound to exact values, and — when `range` is set — the
    /// next column to an inclusive range ("all rows where a=5, b∈\[10,20\]").
    /// `columns.len()` must equal `prefix.len()` plus one when `range` is
    /// set; a composite index whose leading key columns match serves this
    /// as one encoded prefix-range lookup.
    Composite {
        /// The predicated columns, in index key order.
        columns: Vec<String>,
        /// Exact values of the leading `prefix.len()` columns.
        prefix: Vec<u64>,
        /// Inclusive bounds on the column after the prefix, if any.
        range: Option<(u64, u64)>,
    },
}

impl Predicate {
    /// The predicated (leading) column's name.
    pub fn column(&self) -> &str {
        match self {
            Predicate::Point { column, .. }
            | Predicate::Range { column, .. }
            | Predicate::Prefix { column, .. } => column,
            Predicate::Composite { columns, .. } => &columns[0],
        }
    }

    /// Every predicated column, leading column first.
    pub fn columns(&self) -> Vec<&str> {
        match self {
            Predicate::Composite { columns, .. } => columns.iter().map(String::as_str).collect(),
            other => vec![other.column()],
        }
    }

    /// Checks the predicate's internal shape (composite arity bookkeeping);
    /// scalar predicates are always well-formed.
    pub fn validate(&self) -> Result<(), IndexError> {
        let Predicate::Composite {
            columns,
            prefix,
            range,
        } = self
        else {
            return Ok(());
        };
        let fail = |message: String| {
            Err(IndexError::Backend {
                backend: "table".to_string().into(),
                message,
            })
        };
        if columns.is_empty() {
            return fail("a composite predicate needs at least one column".to_string());
        }
        let expected = prefix.len() + usize::from(range.is_some());
        if columns.len() != expected {
            return fail(format!(
                "composite predicate names {} column(s) but binds {expected} \
                 ({} equality value(s){})",
                columns.len(),
                prefix.len(),
                if range.is_some() {
                    " plus one range"
                } else {
                    ""
                },
            ));
        }
        Ok(())
    }

    /// Compiles the predicate to the single-column [`QueryOp`] an index on
    /// its column executes, or `None` when no single-column operation is
    /// equivalent (multi-column composite predicates). Prefixes with no
    /// free bits compile to points; a prefix that overflows the key width
    /// compiles to the canonical empty range `(1, 0)` (inverted ranges
    /// answer empty on every backend). Single-column composite predicates
    /// compile to the obvious point or range.
    pub fn as_op(&self) -> Option<QueryOp> {
        match self {
            Predicate::Point { key, .. } => Some(QueryOp::Point(*key)),
            Predicate::Range { lower, upper, .. } => Some(QueryOp::Range(*lower, *upper)),
            Predicate::Prefix {
                prefix, low_bits, ..
            } => {
                let (prefix, low_bits) = (*prefix, *low_bits);
                if low_bits == 0 {
                    return Some(QueryOp::Point(prefix));
                }
                if low_bits >= 64 {
                    return Some(if prefix == 0 {
                        QueryOp::Range(0, u64::MAX)
                    } else {
                        QueryOp::Range(1, 0)
                    });
                }
                Some(match prefix.checked_shl(low_bits) {
                    Some(lower) if prefix >> (64 - low_bits) == 0 => {
                        QueryOp::Range(lower, lower | ((1u64 << low_bits) - 1))
                    }
                    _ => QueryOp::Range(1, 0),
                })
            }
            Predicate::Composite { prefix, range, .. } => match (prefix.as_slice(), range) {
                ([key], None) => Some(QueryOp::Point(*key)),
                ([], Some((lower, upper))) => Some(QueryOp::Range(*lower, *upper)),
                _ => None,
            },
        }
    }

    /// Compiles the predicate to the [`TypedOp`] an index keyed on the
    /// ordered `index_columns` executes, or `None` when the predicate's
    /// column sequence is not a prefix of the index's key columns. Scalar
    /// predicates bind the index's *leading* column (equality or bounds,
    /// remaining columns unconstrained); composite predicates bind the
    /// leading `columns.len()` columns.
    pub fn as_typed_op(&self, index_columns: &[String]) -> Option<TypedOp> {
        let leading = index_columns.first()?;
        match self {
            Predicate::Point { column, key } => (column == leading).then(|| TypedOp::Prefix {
                prefix: vec![KeyValue::U64(*key)],
                lower: KeyBound::Unbounded,
                upper: KeyBound::Unbounded,
            }),
            Predicate::Range { column, .. } | Predicate::Prefix { column, .. } => {
                if column != leading {
                    return None;
                }
                // `as_op` canonicalizes bit-prefixes; inverted (empty)
                // ranges survive compilation as encoded empties.
                Some(match self.as_op().expect("scalar predicates compile") {
                    QueryOp::Point(key) => TypedOp::Prefix {
                        prefix: vec![KeyValue::U64(key)],
                        lower: KeyBound::Unbounded,
                        upper: KeyBound::Unbounded,
                    },
                    QueryOp::Range(lower, upper) => TypedOp::Prefix {
                        prefix: Vec::new(),
                        lower: KeyBound::Included(KeyValue::U64(lower)),
                        upper: KeyBound::Included(KeyValue::U64(upper)),
                    },
                })
            }
            Predicate::Composite {
                columns,
                prefix,
                range,
            } => {
                if columns.len() > index_columns.len()
                    || columns.iter().zip(index_columns).any(|(p, ix)| p != ix)
                {
                    return None;
                }
                let (lower, upper) = match range {
                    Some((lower, upper)) => (
                        KeyBound::Included(KeyValue::U64(*lower)),
                        KeyBound::Included(KeyValue::U64(*upper)),
                    ),
                    None => (KeyBound::Unbounded, KeyBound::Unbounded),
                };
                Some(TypedOp::Prefix {
                    prefix: prefix.iter().map(|&v| KeyValue::U64(v)).collect(),
                    lower,
                    upper,
                })
            }
        }
    }

    /// True when the compiled single-column operation is a range lookup
    /// (and the serving index therefore needs
    /// [`Capabilities::range_lookups`]). Only meaningful where [`as_op`]
    /// applies — for multi-column composite predicates the planner decides
    /// against the index's key schema instead.
    ///
    /// [`as_op`]: Predicate::as_op
    /// [`Capabilities::range_lookups`]: crate::types::Capabilities
    pub fn needs_ranges(&self) -> bool {
        matches!(self.as_op(), Some(QueryOp::Range(..)))
    }

    /// The largest key the compiled single-column operation touches
    /// (planner input: backends without [`Capabilities::full_64bit_keys`]
    /// cannot serve keys above `u32::MAX`). Conservatively `u64::MAX` for
    /// multi-column composite predicates, whose encoded width the planner
    /// judges from the index's key schema.
    ///
    /// [`Capabilities::full_64bit_keys`]: crate::types::Capabilities
    pub fn max_key(&self) -> u64 {
        match self.as_op() {
            Some(QueryOp::Point(key)) => key,
            Some(QueryOp::Range(lower, upper)) => upper.max(lower),
            None => u64::MAX,
        }
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Predicate::Point { column, key } => write!(f, "{column} = {key}"),
            Predicate::Range {
                column,
                lower,
                upper,
            } => write!(f, "{column} in [{lower}, {upper}]"),
            Predicate::Prefix {
                column,
                prefix,
                low_bits,
            } => write!(f, "{column} >> {low_bits} = {prefix}"),
            Predicate::Composite {
                columns,
                prefix,
                range,
            } => {
                for (i, (column, value)) in columns.iter().zip(prefix).enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{column} = {value}")?;
                }
                if let Some((lower, upper)) = range {
                    if !prefix.is_empty() {
                        write!(f, ", ")?;
                    }
                    write!(
                        f,
                        "{} in [{lower}, {upper}]",
                        columns.last().expect("validated composite")
                    )?;
                }
                Ok(())
            }
        }
    }
}

/// A multi-predicate query over a table: each predicate is answered
/// independently (one [`LookupResult`] per predicate, `first_row` being
/// the smallest matching table rowID), optionally fetching value sums
/// from the schema's value column.
///
/// [`LookupResult`]: crate::types::LookupResult
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableQuery {
    predicates: Vec<Predicate>,
    fetch_values: bool,
}

impl TableQuery {
    /// An empty query.
    pub fn new() -> Self {
        TableQuery::default()
    }

    /// Adds a point predicate on `column`.
    pub fn point(mut self, column: impl Into<String>, key: u64) -> Self {
        self.predicates.push(Predicate::Point {
            column: column.into(),
            key,
        });
        self
    }

    /// Adds an inclusive range predicate on `column`.
    pub fn range(mut self, column: impl Into<String>, lower: u64, upper: u64) -> Self {
        self.predicates.push(Predicate::Range {
            column: column.into(),
            lower,
            upper,
        });
        self
    }

    /// Adds a high-bits prefix predicate on `column`.
    pub fn prefix(mut self, column: impl Into<String>, prefix: u64, low_bits: u32) -> Self {
        self.predicates.push(Predicate::Prefix {
            column: column.into(),
            prefix,
            low_bits,
        });
        self
    }

    /// Adds a composite equality predicate: the named columns (in index
    /// key order) each bound to the matching value of `prefix`. With every
    /// key column of a composite index named, this is a tuple point
    /// lookup; with a strict leading subset it matches every row sharing
    /// the prefix.
    pub fn prefix_tuple<I, S>(mut self, columns: I, prefix: Vec<u64>) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.predicates.push(Predicate::Composite {
            columns: columns.into_iter().map(Into::into).collect(),
            prefix,
            range: None,
        });
        self
    }

    /// Adds a composite prefix-range predicate: all but the last named
    /// column bound to the matching value of `prefix` (which must hold one
    /// value fewer than `columns`), the last column to `lower..=upper` —
    /// "all rows where a=5, b∈\[10,20\]".
    pub fn prefix_range<I, S>(
        mut self,
        columns: I,
        prefix: Vec<u64>,
        lower: u64,
        upper: u64,
    ) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.predicates.push(Predicate::Composite {
            columns: columns.into_iter().map(Into::into).collect(),
            prefix,
            range: Some((lower, upper)),
        });
        self
    }

    /// Adds an already-built predicate.
    pub fn predicate(mut self, predicate: Predicate) -> Self {
        self.predicates.push(predicate);
        self
    }

    /// Requests (or clears) value-sum fetching from the value column.
    pub fn fetch_values(mut self, fetch: bool) -> Self {
        self.fetch_values = fetch;
        self
    }

    /// The predicates in submission order.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// True when the query holds no predicates.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Whether the query fetches value sums.
    pub fn fetches_values(&self) -> bool {
        self.fetch_values
    }
}

/// Where the planner routed one predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Route {
    /// Served by the named index.
    Index {
        /// The chosen index's name (from the schema).
        index: String,
        /// The backend spec the index was built from.
        spec: String,
    },
    /// No index qualified: served by a full row-store scan.
    Scan,
}

impl Route {
    /// The chosen index name, or `None` for a scan.
    pub fn index_name(&self) -> Option<&str> {
        match self {
            Route::Index { index, .. } => Some(index),
            Route::Scan => None,
        }
    }
}

/// One index the planner considered for a predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The index's name.
    pub index: String,
    /// The backend spec the index was built from.
    pub spec: String,
    /// Whether the index can serve the predicate at all.
    pub eligible: bool,
    /// Estimated cost of serving the predicate there (simulated seconds
    /// per operation, plus the memory tiebreak); infinite when ineligible.
    pub cost: f64,
    /// Why the index is (in)eligible or how its cost was derived.
    pub detail: String,
}

/// The planner's decision for one predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanChoice {
    /// The predicate being routed.
    pub predicate: Predicate,
    /// Every index on the predicate's column, scored.
    pub candidates: Vec<Candidate>,
    /// Where the predicate was routed.
    pub route: Route,
    /// One-line justification of the route.
    pub reason: String,
}

/// The planner's decisions for a whole [`TableQuery`], one
/// [`PlanChoice`] per predicate in submission order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExplainPlan {
    /// Per-predicate decisions.
    pub choices: Vec<PlanChoice>,
}

impl ExplainPlan {
    /// The index name predicate `i` was routed to, or `None` for a scan.
    pub fn routed_index(&self, i: usize) -> Option<&str> {
        self.choices[i].route.index_name()
    }

    /// Number of predicates that fell back to a row-store scan.
    pub fn scan_fallbacks(&self) -> usize {
        self.choices
            .iter()
            .filter(|c| c.route == Route::Scan)
            .count()
    }
}

impl std::fmt::Display for ExplainPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, choice) in self.choices.iter().enumerate() {
            let route = match &choice.route {
                Route::Index { index, spec } => format!("index {index} ({spec})"),
                Route::Scan => "row-store scan".to_string(),
            };
            writeln!(f, "#{i} {} -> {route}: {}", choice.predicate, choice.reason)?;
            for c in &choice.candidates {
                writeln!(
                    f,
                    "    {} ({}): {} — {}",
                    c.index,
                    c.spec,
                    if c.eligible {
                        format!("cost {:.3e}", c.cost)
                    } else {
                        "ineligible".to_string()
                    },
                    c.detail
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(["id", "ts", "val"])
            .with_value_column("val")
            .with_index("id_ht", "id", "HT")
            .with_index("ts_rx", "ts", "RX")
    }

    #[test]
    fn schema_validates_and_navigates() {
        let s = schema();
        s.validate().unwrap();
        assert_eq!(s.primary_column(), "id");
        assert_eq!(s.column_position("ts"), Some(1));
        assert_eq!(s.column_position("nope"), None);
        assert_eq!(s.indexes_on("id").count(), 1);
        assert_eq!(s.indexes_on("val").count(), 0);
    }

    #[test]
    fn schema_rejects_structural_mistakes() {
        let broken: Vec<TableSchema> = vec![
            TableSchema::new(Vec::<String>::new()),
            TableSchema::new(["a", "a"]),
            TableSchema::new(["a", ""]),
            TableSchema::new(["a"]).with_value_column("b"),
            TableSchema::new(["a"]).with_index("i", "b", "HT"),
            TableSchema::new(["a"])
                .with_index("i", "a", "HT")
                .with_index("i", "a", "RX"),
            TableSchema::new(["a"]).with_index("", "a", "HT"),
            TableSchema::new(["a"]).with_index("i", "a", ""),
        ];
        for s in broken {
            assert!(s.validate().is_err(), "accepted {s:?}");
        }
        // Two indexes on one column are fine — that is the planner's job.
        TableSchema::new(["a"])
            .with_index("fast", "a", "HT")
            .with_index("wide", "a", "RX")
            .validate()
            .unwrap();
    }

    #[test]
    fn ingest_batches_build_and_report() {
        let batch = IngestBatch::new()
            .insert(vec![1, 2, 3])
            .delete(1)
            .upsert(vec![4, 5, 6])
            .push(IngestOp::Delete(9));
        assert_eq!(batch.len(), 4);
        assert!(!batch.is_empty());
        assert_eq!(batch.ops()[0].primary_key(), 1);
        assert_eq!(batch.ops()[2].primary_key(), 4);
        assert_eq!(batch.ops()[3].kind(), "delete");
        assert!(IngestBatch::new().is_empty());
    }

    #[test]
    fn predicates_compile_to_query_ops() {
        let p = Predicate::Point {
            column: "id".into(),
            key: 7,
        };
        assert_eq!(p.as_op(), Some(QueryOp::Point(7)));
        assert!(!p.needs_ranges());
        assert_eq!(p.max_key(), 7);

        let r = Predicate::Range {
            column: "ts".into(),
            lower: 10,
            upper: 20,
        };
        assert_eq!(r.as_op(), Some(QueryOp::Range(10, 20)));
        assert!(r.needs_ranges());
        assert_eq!(r.max_key(), 20);
    }

    #[test]
    fn prefix_predicates_compile_to_contiguous_ranges() {
        let prefix = |prefix, low_bits| Predicate::Prefix {
            column: "k".into(),
            prefix,
            low_bits,
        };
        assert_eq!(prefix(5, 4).as_op(), Some(QueryOp::Range(80, 95)));
        assert_eq!(prefix(3, 0).as_op(), Some(QueryOp::Point(3)));
        assert_eq!(prefix(0, 64).as_op(), Some(QueryOp::Range(0, u64::MAX)));
        // Prefixes past the key width match nothing: the canonical empty
        // (inverted) range.
        assert_eq!(prefix(1, 64).as_op(), Some(QueryOp::Range(1, 0)));
        assert_eq!(prefix(u64::MAX, 8).as_op(), Some(QueryOp::Range(1, 0)));
        assert_eq!(
            prefix(1, 63).as_op(),
            Some(QueryOp::Range(1 << 63, u64::MAX))
        );
        assert!(prefix(5, 4).needs_ranges());
        assert!(!prefix(5, 0).needs_ranges());
    }

    #[test]
    fn queries_build_and_expose_predicates() {
        let q = TableQuery::new()
            .point("id", 3)
            .range("ts", 0, 9)
            .prefix("ts", 2, 3)
            .fetch_values(true);
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
        assert!(q.fetches_values());
        assert_eq!(q.predicates()[0].column(), "id");
        assert_eq!(q.predicates()[1].as_op(), Some(QueryOp::Range(0, 9)));
        assert!(TableQuery::new().is_empty());
    }

    #[test]
    fn composite_schemas_validate_key_columns() {
        TableSchema::new(["a", "b", "c"])
            .with_composite_index("ab", ["a", "b"], "HT")
            .with_composite_index("abc", ["a", "b", "c"], "B+{u32,u32,u32}")
            .validate()
            .unwrap();
        let broken = [
            TableSchema::new(["a"]).with_composite_index("i", Vec::<String>::new(), "HT"),
            TableSchema::new(["a", "b"]).with_composite_index("i", ["a", "nope"], "HT"),
            TableSchema::new(["a", "b"]).with_composite_index("i", ["a", "a"], "HT"),
            // Spec schema arity must match the key-column count.
            TableSchema::new(["a", "b"]).with_composite_index("i", ["a", "b"], "HT{u32}"),
            TableSchema::new(["a", "b"]).with_composite_index("i", ["a", "b"], "HT{u32,u32"),
        ];
        for s in broken {
            assert!(s.validate().is_err(), "accepted {s:?}");
        }
    }

    #[test]
    fn composite_predicates_validate_and_compile() {
        let index_columns: Vec<String> = vec!["a".into(), "b".into(), "c".into()];

        let tuple = Predicate::Composite {
            columns: vec!["a".into(), "b".into()],
            prefix: vec![5, 10],
            range: None,
        };
        tuple.validate().unwrap();
        assert_eq!(tuple.column(), "a");
        assert_eq!(tuple.columns(), vec!["a", "b"]);
        assert_eq!(tuple.as_op(), None);
        assert_eq!(tuple.max_key(), u64::MAX);
        assert_eq!(tuple.to_string(), "a = 5, b = 10");
        match tuple.as_typed_op(&index_columns) {
            Some(TypedOp::Prefix { prefix, .. }) => {
                assert_eq!(prefix, vec![KeyValue::U64(5), KeyValue::U64(10)]);
            }
            other => panic!("expected a prefix op, got {other:?}"),
        }

        let ranged = Predicate::Composite {
            columns: vec!["a".into(), "b".into()],
            prefix: vec![5],
            range: Some((10, 20)),
        };
        ranged.validate().unwrap();
        assert_eq!(ranged.to_string(), "a = 5, b in [10, 20]");
        match ranged.as_typed_op(&index_columns) {
            Some(TypedOp::Prefix {
                prefix,
                lower,
                upper,
            }) => {
                assert_eq!(prefix, vec![KeyValue::U64(5)]);
                assert_eq!(lower, KeyBound::Included(KeyValue::U64(10)));
                assert_eq!(upper, KeyBound::Included(KeyValue::U64(20)));
            }
            other => panic!("expected a prefix op, got {other:?}"),
        }
        // Column sequences that are not a leading prefix of the index: no op.
        assert!(ranged
            .as_typed_op(&["b".to_string(), "a".to_string()])
            .is_none());
        assert!(ranged.as_typed_op(&["a".to_string()]).is_none());

        // Single-column composites degrade to scalar ops.
        let single = Predicate::Composite {
            columns: vec!["a".into()],
            prefix: vec![7],
            range: None,
        };
        assert_eq!(single.as_op(), Some(QueryOp::Point(7)));

        // Arity mismatches are rejected.
        let broken = Predicate::Composite {
            columns: vec!["a".into(), "b".into()],
            prefix: vec![5],
            range: None,
        };
        assert!(broken.validate().is_err());
        assert!(Predicate::Composite {
            columns: Vec::new(),
            prefix: Vec::new(),
            range: None,
        }
        .validate()
        .is_err());
    }

    #[test]
    fn scalar_predicates_compile_to_typed_leading_column_ops() {
        let index_columns: Vec<String> = vec!["a".into(), "b".into()];
        let point = Predicate::Point {
            column: "a".into(),
            key: 9,
        };
        match point.as_typed_op(&index_columns) {
            Some(TypedOp::Prefix {
                prefix,
                lower: KeyBound::Unbounded,
                upper: KeyBound::Unbounded,
            }) => assert_eq!(prefix, vec![KeyValue::U64(9)]),
            other => panic!("expected an unbounded prefix, got {other:?}"),
        }
        let range = Predicate::Range {
            column: "a".into(),
            lower: 3,
            upper: 8,
        };
        match range.as_typed_op(&index_columns) {
            Some(TypedOp::Prefix {
                prefix,
                lower,
                upper,
            }) => {
                assert!(prefix.is_empty());
                assert_eq!(lower, KeyBound::Included(KeyValue::U64(3)));
                assert_eq!(upper, KeyBound::Included(KeyValue::U64(8)));
            }
            other => panic!("expected a bounded prefix, got {other:?}"),
        }
        // Wrong leading column: no typed op.
        let off = Predicate::Point {
            column: "b".into(),
            key: 1,
        };
        assert!(off.as_typed_op(&index_columns).is_none());
    }

    #[test]
    fn query_builders_cover_composite_forms() {
        let q = TableQuery::new()
            .prefix_tuple(["a", "b"], vec![1, 2])
            .prefix_range(["a", "b"], vec![1], 5, 9);
        assert_eq!(q.len(), 2);
        assert_eq!(
            q.predicates()[0],
            Predicate::Composite {
                columns: vec!["a".into(), "b".into()],
                prefix: vec![1, 2],
                range: None,
            }
        );
        assert_eq!(
            q.predicates()[1],
            Predicate::Composite {
                columns: vec!["a".into(), "b".into()],
                prefix: vec![1],
                range: Some((5, 9)),
            }
        );
    }

    #[test]
    fn explain_plans_summarise_routes() {
        let plan = ExplainPlan {
            choices: vec![
                PlanChoice {
                    predicate: Predicate::Point {
                        column: "id".into(),
                        key: 1,
                    },
                    candidates: vec![Candidate {
                        index: "id_ht".into(),
                        spec: "HT".into(),
                        eligible: true,
                        cost: 1e-6,
                        detail: "probe".into(),
                    }],
                    route: Route::Index {
                        index: "id_ht".into(),
                        spec: "HT".into(),
                    },
                    reason: "cheapest eligible index".into(),
                },
                PlanChoice {
                    predicate: Predicate::Range {
                        column: "val".into(),
                        lower: 0,
                        upper: 9,
                    },
                    candidates: vec![],
                    route: Route::Scan,
                    reason: "no index on column".into(),
                },
            ],
        };
        assert_eq!(plan.routed_index(0), Some("id_ht"));
        assert_eq!(plan.routed_index(1), None);
        assert_eq!(plan.scan_fallbacks(), 1);
        let rendered = plan.to_string();
        assert!(rendered.contains("id_ht"), "{rendered}");
        assert!(rendered.contains("row-store scan"), "{rendered}");
    }
}
