//! Order-preserving encodings from native column types onto `u64` keys.
//!
//! The paper notes ("Handling other data types", Section 3.2) that RTIndeX
//! indexes unsigned 64-bit integers, and that *all native C data types can be
//! mapped to a uint64 while preserving their relative order* — the same trick
//! radix sorts use. Composite types with lexicographic ordering (e.g. strings)
//! can have their first components densely packed into 64 bits, giving
//! hardware-accelerated lookups on that prefix with software post-filtering.
//!
//! This module provides those mappings plus their inverses (where the mapping
//! is bijective) so that examples and tests can verify round trips.

/// Types that can be converted into an order-preserving `u64` index key.
///
/// The contract is: `a <= b` (in the type's natural order) if and only if
/// `a.to_index_key() <= b.to_index_key()`. Floating-point types order NaN
/// above +inf (total order), matching the IEEE-754 `totalOrder` predicate for
/// non-negative NaN payloads.
pub trait IndexableKey {
    /// Converts the value into its order-preserving `u64` key.
    fn to_index_key(&self) -> u64;
}

/// Encodes an unsigned 64-bit integer (identity).
#[inline]
pub fn encode_u64(v: u64) -> u64 {
    v
}

/// Encodes an unsigned 32-bit integer by zero-extension.
#[inline]
pub fn encode_u32(v: u32) -> u64 {
    v as u64
}

/// Encodes a signed 64-bit integer by flipping the sign bit, which maps
/// `i64::MIN..=i64::MAX` monotonically onto `0..=u64::MAX`.
#[inline]
pub fn encode_i64(v: i64) -> u64 {
    (v as u64) ^ (1u64 << 63)
}

/// Inverse of [`encode_i64`].
#[inline]
pub fn decode_i64(k: u64) -> i64 {
    (k ^ (1u64 << 63)) as i64
}

/// Encodes a signed 32-bit integer.
#[inline]
pub fn encode_i32(v: i32) -> u64 {
    ((v as u32) ^ (1u32 << 31)) as u64
}

/// Inverse of [`encode_i32`].
#[inline]
pub fn decode_i32(k: u64) -> i32 {
    ((k as u32) ^ (1u32 << 31)) as i32
}

/// Encodes an `f64` into an order-preserving `u64` (the classic radix-sort
/// transform): positive floats get their sign bit set, negative floats are
/// fully inverted.
///
/// The paper explicitly recommends indexing floats through this mapping
/// rather than using their value directly as a coordinate, because a large
/// ratio between the largest and smallest value destroys BVH performance
/// (reproduced by the `fig3b` stride experiment).
#[inline]
pub fn encode_f64(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits & (1u64 << 63) == 0 {
        bits | (1u64 << 63)
    } else {
        !bits
    }
}

/// Inverse of [`encode_f64`] (for non-NaN inputs the round trip is exact).
#[inline]
pub fn decode_f64(k: u64) -> f64 {
    let bits = if k & (1u64 << 63) != 0 {
        k & !(1u64 << 63)
    } else {
        !k
    };
    f64::from_bits(bits)
}

/// Encodes an `f32` into an order-preserving `u64` (via the 32-bit variant of
/// the same transform, zero-extended).
#[inline]
pub fn encode_f32(v: f32) -> u64 {
    let bits = v.to_bits();
    let mapped = if bits & (1u32 << 31) == 0 {
        bits | (1u32 << 31)
    } else {
        !bits
    };
    mapped as u64
}

/// Inverse of [`encode_f32`].
#[inline]
pub fn decode_f32(k: u64) -> f32 {
    let bits = k as u32;
    let orig = if bits & (1u32 << 31) != 0 {
        bits & !(1u32 << 31)
    } else {
        !bits
    };
    f32::from_bits(orig)
}

/// Encodes a boolean (false < true).
#[inline]
pub fn encode_bool(v: bool) -> u64 {
    v as u64
}

/// Packs the first eight bytes of a string (big-endian) into a `u64`,
/// padding with zeros. Lexicographic comparison of the original strings
/// agrees with integer comparison of the keys **on the first eight bytes**;
/// ties beyond eight bytes must be resolved by software post-filtering, as
/// the paper describes.
#[inline]
pub fn encode_str_prefix(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut buf = [0u8; 8];
    let n = bytes.len().min(8);
    buf[..n].copy_from_slice(&bytes[..n]);
    u64::from_be_bytes(buf)
}

/// Packs the first eight bytes of an arbitrary byte slice into a `u64`
/// (big-endian, zero padded). Same prefix-ordering caveat as
/// [`encode_str_prefix`].
#[inline]
pub fn encode_bytes_prefix(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = bytes.len().min(8);
    buf[..n].copy_from_slice(&bytes[..n]);
    u64::from_be_bytes(buf)
}

/// Packs up to eight small component values (each at most 8 bits) into a
/// `u64` in lexicographic order — the "densely pack them into a single 64-bit
/// integer" path the paper sketches for composite data types.
///
/// # Panics
/// Panics when more than eight components are supplied.
#[inline]
pub fn encode_composite_u8(components: &[u8]) -> u64 {
    assert!(
        components.len() <= 8,
        "at most 8 one-byte components fit into a u64 key"
    );
    let mut buf = [0u8; 8];
    buf[..components.len()].copy_from_slice(components);
    u64::from_be_bytes(buf)
}

impl IndexableKey for u64 {
    fn to_index_key(&self) -> u64 {
        encode_u64(*self)
    }
}
impl IndexableKey for u32 {
    fn to_index_key(&self) -> u64 {
        encode_u32(*self)
    }
}
impl IndexableKey for u16 {
    fn to_index_key(&self) -> u64 {
        *self as u64
    }
}
impl IndexableKey for u8 {
    fn to_index_key(&self) -> u64 {
        *self as u64
    }
}
impl IndexableKey for i64 {
    fn to_index_key(&self) -> u64 {
        encode_i64(*self)
    }
}
impl IndexableKey for i32 {
    fn to_index_key(&self) -> u64 {
        encode_i32(*self)
    }
}
impl IndexableKey for f64 {
    fn to_index_key(&self) -> u64 {
        encode_f64(*self)
    }
}
impl IndexableKey for f32 {
    fn to_index_key(&self) -> u64 {
        encode_f32(*self)
    }
}
impl IndexableKey for bool {
    fn to_index_key(&self) -> u64 {
        encode_bool(*self)
    }
}
impl IndexableKey for &str {
    fn to_index_key(&self) -> u64 {
        encode_str_prefix(self)
    }
}
impl IndexableKey for String {
    fn to_index_key(&self) -> u64 {
        encode_str_prefix(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn signed_integers_preserve_order() {
        let values = [i64::MIN, -1_000_000, -1, 0, 1, 42, i64::MAX];
        for w in values.windows(2) {
            assert!(encode_i64(w[0]) < encode_i64(w[1]));
        }
        for &v in &values {
            assert_eq!(decode_i64(encode_i64(v)), v);
        }
    }

    #[test]
    fn signed_32bit_round_trip() {
        for v in [i32::MIN, -7, 0, 7, i32::MAX] {
            assert_eq!(decode_i32(encode_i32(v)), v);
        }
        assert!(encode_i32(-5) < encode_i32(5));
    }

    #[test]
    fn floats_preserve_order() {
        let values = [
            f64::NEG_INFINITY,
            -1e300,
            -1.5,
            -0.0,
            0.0,
            1e-300,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for w in values.windows(2) {
            assert!(
                encode_f64(w[0]) <= encode_f64(w[1]),
                "{} should encode <= {}",
                w[0],
                w[1]
            );
        }
        for &v in &values {
            if v != 0.0 {
                assert_eq!(decode_f64(encode_f64(v)), v);
            }
        }
        // -0.0 and 0.0 may encode adjacently but must not invert order.
        assert!(encode_f64(-0.0) <= encode_f64(0.0));
    }

    #[test]
    fn f32_round_trip_and_order() {
        let values = [f32::NEG_INFINITY, -3.5, 0.0, 1.25, f32::MAX];
        for w in values.windows(2) {
            assert!(encode_f32(w[0]) < encode_f32(w[1]));
        }
        for &v in &values {
            assert_eq!(decode_f32(encode_f32(v)), v);
        }
    }

    #[test]
    fn string_prefix_order() {
        assert!(encode_str_prefix("apple") < encode_str_prefix("banana"));
        assert!(encode_str_prefix("app") < encode_str_prefix("apple"));
        assert!(encode_str_prefix("") < encode_str_prefix("a"));
        // Only the first 8 bytes participate.
        assert_eq!(
            encode_str_prefix("abcdefghXYZ"),
            encode_str_prefix("abcdefghAAA")
        );
    }

    #[test]
    fn bytes_prefix_matches_str_prefix() {
        assert_eq!(encode_bytes_prefix(b"coffee"), encode_str_prefix("coffee"));
    }

    #[test]
    fn composite_packing_is_lexicographic() {
        let a = encode_composite_u8(&[1, 2, 3]);
        let b = encode_composite_u8(&[1, 2, 4]);
        let c = encode_composite_u8(&[1, 3, 0]);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    #[should_panic]
    fn composite_packing_rejects_long_input() {
        let _ = encode_composite_u8(&[0; 9]);
    }

    #[test]
    fn trait_impls_agree_with_free_functions() {
        assert_eq!(42u64.to_index_key(), 42);
        assert_eq!(7u32.to_index_key(), 7);
        assert_eq!((-3i64).to_index_key(), encode_i64(-3));
        assert_eq!((-3i32).to_index_key(), encode_i32(-3));
        assert_eq!(1.5f64.to_index_key(), encode_f64(1.5));
        assert_eq!(1.5f32.to_index_key(), encode_f32(1.5));
        assert_eq!(true.to_index_key(), 1);
        assert_eq!("wine".to_index_key(), encode_str_prefix("wine"));
        assert_eq!("wine".to_string().to_index_key(), encode_str_prefix("wine"));
        assert_eq!(3u8.to_index_key(), 3);
        assert_eq!(3u16.to_index_key(), 3);
    }

    proptest! {
        #[test]
        fn prop_i64_order_preserved(a in any::<i64>(), b in any::<i64>()) {
            prop_assert_eq!(a <= b, encode_i64(a) <= encode_i64(b));
        }

        #[test]
        fn prop_i64_round_trip(v in any::<i64>()) {
            prop_assert_eq!(decode_i64(encode_i64(v)), v);
        }

        #[test]
        fn prop_f64_order_preserved(a in prop::num::f64::NORMAL, b in prop::num::f64::NORMAL) {
            prop_assert_eq!(a <= b, encode_f64(a) <= encode_f64(b));
        }

        #[test]
        fn prop_f64_round_trip(v in prop::num::f64::ANY.prop_filter("not nan", |x| !x.is_nan())) {
            prop_assert_eq!(decode_f64(encode_f64(v)).to_bits(), v.to_bits());
        }

        #[test]
        fn prop_f32_order_preserved(a in prop::num::f32::NORMAL, b in prop::num::f32::NORMAL) {
            prop_assert_eq!(a <= b, encode_f32(a) <= encode_f32(b));
        }

        #[test]
        fn prop_str_prefix_order(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            // Agreement is only guaranteed when the order is decided within
            // the first 8 bytes.
            let pa: &str = &a[..a.len().min(8)];
            let pb: &str = &b[..b.len().min(8)];
            if pa != pb {
                prop_assert_eq!(pa < pb, encode_str_prefix(&a) < encode_str_prefix(&b));
            }
        }
    }
}
