//! Figure 6: parallel vs. perpendicular rays for point lookups.
//!
//! The paper finds that perpendicular rays consistently beat parallel rays
//! because they miss most bounding boxes outright instead of relying on
//! `tmin`/`tmax` clipping.

use rtindex_core::{KeyMode, PointRayStrategy, RtIndex, RtIndexConfig};
use rtx_workloads as wl;

use crate::report::{fmt_ms, Table};
use crate::scale::ExperimentScale;

/// Runs the point-lookup ray-strategy comparison.
pub fn run(scale: &ExperimentScale) -> Vec<Table> {
    let device = crate::scaled_device(scale);
    let mut table = Table::new(
        "Figure 6: point-lookup ray strategy, cumulative lookup time [ms]",
        &["keys [2^n]", "mode", "parallel from zero", "perpendicular"],
    );
    for exp in scale.key_exponent_sweep(4) {
        let n = 1usize << exp;
        let keys = wl::dense_shuffled(n, scale.seed);
        let lookups = wl::point_lookups(&keys, scale.default_lookups(), scale.seed + 1);
        for mode in KeyMode::all() {
            if !mode.supports_key((n - 1) as u64) {
                table.push_row(vec![
                    exp.to_string(),
                    mode.name().to_string(),
                    "N/A".to_string(),
                    "N/A".to_string(),
                ]);
                continue;
            }
            let mut row = vec![exp.to_string(), mode.name().to_string()];
            for strategy in [
                PointRayStrategy::ParallelFromZero,
                PointRayStrategy::Perpendicular,
            ] {
                let config = RtIndexConfig::default()
                    .with_key_mode(mode)
                    .with_point_ray(strategy);
                let index = RtIndex::build(&device, &keys, config).expect("build");
                let out = index.point_lookup_batch(&lookups, None).expect("lookup");
                row.push(fmt_ms(out.metrics.simulated_time_s * 1e3));
            }
            table.push_row(row);
        }
    }
    vec![table]
}

/// Measures both strategies once and returns (parallel_ms, perpendicular_ms,
/// parallel_boxtests, perpendicular_boxtests); shared by the test below and
/// the benchmark crate.
pub fn measure_strategies(keys_exp: u32, lookups: usize, seed: u64) -> (f64, f64, u64, u64) {
    let device = crate::default_device();
    let keys = wl::dense_shuffled(1 << keys_exp, seed);
    let queries = wl::point_lookups(&keys, lookups, seed + 1);
    let mut results = Vec::new();
    for strategy in [
        PointRayStrategy::ParallelFromZero,
        PointRayStrategy::Perpendicular,
    ] {
        let config = RtIndexConfig::default().with_point_ray(strategy);
        let index = RtIndex::build(&device, &keys, config).expect("build");
        let out = index.point_lookup_batch(&queries, None).expect("lookup");
        results.push((
            out.metrics.simulated_time_s * 1e3,
            out.metrics.kernel.rt_box_tests,
        ));
    }
    (results[0].0, results[1].0, results[0].1, results[1].1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perpendicular_rays_never_do_more_traversal_work_than_parallel_rays() {
        let (par_ms, perp_ms, par_boxes, perp_boxes) = measure_strategies(13, 1 << 12, 11);
        // The mechanism behind Figure 6: the parallel ray overlaps bounding
        // boxes all along the key line and relies on tmin/tmax clipping,
        // while the perpendicular ray misses most boxes outright. Our
        // traversal applies the t-interval during the slab test (which real
        // hardware appears not to benefit from as much), so the reproduction
        // shows parity rather than a perpendicular win — see EXPERIMENTS.md.
        assert!(
            perp_boxes <= par_boxes,
            "perpendicular rays must not test more boxes ({perp_boxes} vs {par_boxes})"
        );
        assert!(
            perp_ms <= par_ms * 1.05,
            "perpendicular rays must not be slower ({perp_ms:.3} vs {par_ms:.3})"
        );
    }

    #[test]
    fn smoke_table_has_three_modes_per_size() {
        let tables = run(&ExperimentScale::tiny());
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].headers.len(), 4);
        assert_eq!(tables[0].rows.len() % 3, 0);
    }
}
