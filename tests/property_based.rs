//! Property-based integration tests: random key sets and lookup batches
//! against the scan oracle, across the public API.

use proptest::prelude::*;
use rtindex::gpu_baselines::register_baselines;
use rtindex::rtindex_core::register_rx;
use rtindex::rtx_delta::{register_dynamic, CompactionPolicy};
use rtindex::{
    install_sharding, Device, DynamicRtConfig, DynamicRtIndex, IndexSpec, KeyMode, QueryBatch,
    Registry, RtIndex, RtIndexConfig, MISS,
};
use rtx_workloads::truth::DynamicOracle;
use rtx_workloads::GroundTruth;

/// Builds a dynamic index (auto-compaction off unless stated) plus its
/// oracle over the same initial columns.
fn dynamic_pair(device: &Device, keys: &[u64], values: &[u64]) -> (DynamicRtIndex, DynamicOracle) {
    let config = DynamicRtConfig::default().with_policy(CompactionPolicy::never());
    let index = DynamicRtIndex::build(device, keys, values, config).unwrap();
    let oracle = DynamicOracle::new(keys, values);
    (index, oracle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Point lookups over arbitrary (possibly duplicated) small key sets
    /// return exactly the oracle's hit counts and row sets.
    #[test]
    fn prop_point_lookups_match_oracle(
        keys in prop::collection::vec(0u64..500, 1..200),
        queries in prop::collection::vec(0u64..600, 1..100),
    ) {
        let device = Device::default_eval();
        let truth = GroundTruth::new(&keys, None);
        let index = RtIndex::build(&device, &keys, RtIndexConfig::default()).unwrap();
        let out = index.point_lookup_batch(&queries, None).unwrap();
        for (q, r) in queries.iter().zip(&out.results) {
            prop_assert_eq!(r.hit_count, truth.point_hit_count(*q), "key {}", q);
            if r.hit_count > 0 {
                prop_assert_eq!(r.first_row, truth.point_first_row(*q));
            } else {
                prop_assert_eq!(r.first_row, MISS);
            }
        }
    }

    /// Range lookups return exactly the oracle's per-range counts and sums.
    #[test]
    fn prop_range_lookups_match_oracle(
        keys in prop::collection::vec(0u64..2000, 1..300),
        ranges in prop::collection::vec((0u64..2200, 0u64..300), 1..40),
    ) {
        let device = Device::default_eval();
        let values: Vec<u64> = (0..keys.len() as u64).map(|i| i + 1).collect();
        let truth = GroundTruth::new(&keys, Some(&values));
        let index = RtIndex::build(&device, &keys, RtIndexConfig::default()).unwrap();
        let ranges: Vec<(u64, u64)> = ranges.into_iter().map(|(l, w)| (l, l + w)).collect();
        let out = index.range_lookup_batch(&ranges, Some(&values)).unwrap();
        for (&(l, u), r) in ranges.iter().zip(&out.results) {
            prop_assert_eq!(r.hit_count, truth.range_hit_count(l, u), "range [{}, {}]", l, u);
            prop_assert_eq!(r.value_sum, truth.range_value_sum(l, u));
        }
    }

    /// All three key modes agree on hit/miss classification for keys within
    /// the Naive range.
    #[test]
    fn prop_key_modes_agree(
        keys in prop::collection::vec(0u64..(1 << 20), 1..150),
        queries in prop::collection::vec(0u64..(1 << 21), 1..80),
    ) {
        let device = Device::default_eval();
        let mut answers: Vec<Vec<bool>> = Vec::new();
        for mode in KeyMode::all() {
            let config = RtIndexConfig::default().with_key_mode(mode);
            let index = RtIndex::build(&device, &keys, config).unwrap();
            let out = index.point_lookup_batch(&queries, None).unwrap();
            answers.push(out.results.iter().map(|r| r.is_hit()).collect());
        }
        prop_assert_eq!(&answers[0], &answers[1]);
        prop_assert_eq!(&answers[1], &answers[2]);
    }

    /// Rebuilding with a new key column fully replaces the old one.
    #[test]
    fn prop_rebuild_replaces_keys(
        first in prop::collection::vec(0u64..1000, 1..100),
        second in prop::collection::vec(2000u64..3000, 1..100),
    ) {
        let device = Device::default_eval();
        let mut index = RtIndex::build(&device, &first, RtIndexConfig::default()).unwrap();
        index.rebuild(&second).unwrap();
        let out_old = index.point_lookup_batch(&first, None).unwrap();
        prop_assert_eq!(out_old.hit_count(), 0, "old keys must be gone");
        let out_new = index.point_lookup_batch(&second, None).unwrap();
        prop_assert_eq!(out_new.hit_count(), second.len());
    }

    /// Duplicate keys split across base and delta aggregate exactly like
    /// the oracle: counts add, the first row is the global minimum, and
    /// per-row values sum.
    #[test]
    fn prop_duplicates_split_across_base_and_delta(
        base_keys in prop::collection::vec(0u64..64, 1..120),
        delta_keys in prop::collection::vec(0u64..64, 1..120),
    ) {
        let device = Device::default_eval();
        let base_values: Vec<u64> = (0..base_keys.len() as u64).map(|i| i + 1).collect();
        let delta_values: Vec<u64> = (0..delta_keys.len() as u64).map(|i| 1000 + i).collect();
        let (mut index, mut oracle) = dynamic_pair(&device, &base_keys, &base_values);
        index.insert_batch(&delta_keys, &delta_values).unwrap();
        oracle.insert_batch(&delta_keys, &delta_values);

        let queries: Vec<u64> = (0..80).collect();
        let out = index.point_lookup_batch(&queries).unwrap();
        for (q, r) in queries.iter().zip(&out.results) {
            let truth = oracle.point(*q);
            prop_assert_eq!(r.hit_count, truth.hit_count, "key {}", q);
            prop_assert_eq!(r.first_row, truth.first_row, "key {}", q);
            prop_assert_eq!(r.value_sum, truth.value_sum, "key {}", q);
        }
    }

    /// Delete-then-reinsert of the same keys resurrects only the fresh
    /// rows: tombstoned base copies stay invisible, reinserted delta rows
    /// answer with their new rowIDs and values.
    #[test]
    fn prop_delete_then_reinsert_same_keys(
        keys in prop::collection::vec(0u64..48, 1..100),
        churn in prop::collection::vec(0u64..48, 1..40),
    ) {
        let device = Device::default_eval();
        let values: Vec<u64> = (0..keys.len() as u64).map(|i| i + 1).collect();
        let (mut index, mut oracle) = dynamic_pair(&device, &keys, &values);

        index.delete_batch(&churn).unwrap();
        oracle.delete_batch(&churn);
        let new_values: Vec<u64> = (0..churn.len() as u64).map(|i| 5000 + i).collect();
        index.insert_batch(&churn, &new_values).unwrap();
        oracle.insert_batch(&churn, &new_values);

        let queries: Vec<u64> = (0..48).collect();
        let out = index.point_lookup_batch(&queries).unwrap();
        for (q, r) in queries.iter().zip(&out.results) {
            let truth = oracle.point(*q);
            prop_assert_eq!(r.hit_count, truth.hit_count, "key {}", q);
            prop_assert_eq!(r.first_row, truth.first_row, "key {}", q);
            prop_assert_eq!(r.value_sum, truth.value_sum, "key {}", q);
        }
    }

    /// Range lookups spanning tombstoned runs skip exactly the dead rows —
    /// even when whole contiguous key runs are deleted and partially
    /// re-covered by the delta.
    #[test]
    fn prop_ranges_span_tombstoned_runs(
        n in 32usize..200,
        run_start in 0u64..100,
        run_len in 1u64..64,
        reinsert in prop::collection::vec(0u64..200, 0..30),
        ranges in prop::collection::vec((0u64..220, 0u64..80), 1..20),
    ) {
        let device = Device::default_eval();
        let keys: Vec<u64> = (0..n as u64).collect();
        let values: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
        let (mut index, mut oracle) = dynamic_pair(&device, &keys, &values);

        // Tombstone a contiguous key run, then scatter fresh rows over it.
        let doomed: Vec<u64> = (run_start..run_start + run_len).collect();
        index.delete_batch(&doomed).unwrap();
        oracle.delete_batch(&doomed);
        let reinsert_values: Vec<u64> = (0..reinsert.len() as u64).map(|i| 9000 + i).collect();
        index.insert_batch(&reinsert, &reinsert_values).unwrap();
        oracle.insert_batch(&reinsert, &reinsert_values);

        for &(l, w) in &ranges {
            let (lower, upper) = (l, l + w);
            let out = index.range_lookup_batch(&[(lower, upper)]).unwrap();
            let truth = oracle.range(lower, upper);
            prop_assert_eq!(out.results[0].hit_count, truth.hit_count, "[{}, {}]", lower, upper);
            prop_assert_eq!(out.results[0].first_row, truth.first_row, "[{}, {}]", lower, upper);
            prop_assert_eq!(out.results[0].value_sum, truth.value_sum, "[{}, {}]", lower, upper);
        }
    }

    /// Compaction equivalence: after a compaction, the index is
    /// indistinguishable from a from-scratch `RtIndex::build` over the live
    /// key sequence.
    #[test]
    fn prop_compaction_equals_fresh_build(
        keys in prop::collection::vec(0u64..128, 1..150),
        inserts in prop::collection::vec(200u64..300, 0..60),
        deletes in prop::collection::vec(0u64..300, 0..60),
    ) {
        let device = Device::default_eval();
        let values: Vec<u64> = (0..keys.len() as u64).map(|i| i + 1).collect();
        let (mut index, mut oracle) = dynamic_pair(&device, &keys, &values);
        let insert_values: Vec<u64> = (0..inserts.len() as u64).map(|i| 7000 + i).collect();
        index.insert_batch(&inserts, &insert_values).unwrap();
        oracle.insert_batch(&inserts, &insert_values);
        index.delete_batch(&deletes).unwrap();
        oracle.delete_batch(&deletes);

        index.compact_now();
        oracle.compact();
        prop_assert_eq!(index.delta_len(), 0);
        prop_assert_eq!(index.dead_base_rows(), 0);

        // The merged column is the oracle's live sequence...
        let live_keys: Vec<u64> = oracle.live_entries().iter().map(|&(_, k, _)| k).collect();
        let live_values: Vec<u64> = oracle.live_entries().iter().map(|&(_, _, v)| v).collect();
        // ... and lookups answer exactly like a fresh static build over it.
        let fresh = RtIndex::build(&device, &live_keys, RtIndexConfig::default()).unwrap();
        let queries: Vec<u64> = (0..310).collect();
        let dynamic_out = index.point_lookup_batch(&queries).unwrap();
        let fresh_out = fresh.point_lookup_batch(&queries, Some(&live_values)).unwrap();
        prop_assert_eq!(&dynamic_out.results, &fresh_out.results);
    }
}

/// Every backend plus the sharding layer, with the dynamic backend's
/// auto-compaction off: a compaction renumbers the monolithic backend's
/// rowIDs globally while sharded wrappers keep their stable numbering, so
/// exact result identity is defined on the compaction-free schedule (counts
/// and sums stay identical regardless — `rtx-shard`'s own tests cover the
/// compacting case against the oracle).
fn sharding_registry() -> Registry {
    let mut registry = Registry::new();
    register_baselines(&mut registry);
    register_rx(&mut registry, RtIndexConfig::default());
    register_dynamic(
        &mut registry,
        DynamicRtConfig::default().with_policy(CompactionPolicy::never()),
    );
    install_sharding(&mut registry);
    registry
}

/// The partitioner/shard-count grid of the sharded-equivalence properties.
const SHARD_GRID: [&str; 6] = ["1", "2", "7", "1:range", "2:range", "7:range"];

/// A mixed batch (points, ranges, an inverted range, value fetch) over the
/// generated workload.
fn sharded_probe_batch(points: &[u64], ranges: &[(u64, u64)]) -> QueryBatch {
    QueryBatch::new()
        .points(points.iter().copied())
        .ranges(ranges.iter().copied())
        .range(500, 100) // inverted: empty on every backend
        .fetch_values(true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A sharded backend answers random mixed batches exactly like its
    /// unsharded counterpart — both partitioners, shard counts 1, 2 and 7,
    /// global rowIDs included.
    #[test]
    fn prop_sharded_equals_unsharded_on_mixed_batches(
        keys in prop::collection::vec(0u64..800, 1..150),
        points in prop::collection::vec(0u64..900, 1..80),
        ranges in prop::collection::vec((0u64..900, 0u64..60), 1..25),
    ) {
        let device = Device::default_eval();
        let registry = sharding_registry();
        let values: Vec<u64> = (0..keys.len() as u64).map(|i| i * 7 + 1).collect();
        let spec = IndexSpec::with_values(&device, &keys, &values);
        let ranges: Vec<(u64, u64)> = ranges.into_iter().map(|(l, w)| (l, l + w)).collect();
        let batch = sharded_probe_batch(&points, &ranges);

        let baseline = registry.build("SA", &spec).unwrap();
        let expected = baseline.execute(&batch).unwrap();
        for grid in SHARD_GRID {
            let name = format!("SA@{grid}");
            let sharded = registry.build(&name, &spec).unwrap();
            let out = sharded.execute(&batch).unwrap();
            prop_assert_eq!(&out.results, &expected.results, "{}", name);
        }
    }

    /// The same equivalence holds for the updatable backend *after* routed
    /// insert/delete/upsert batches: the sharded RXD and the monolithic RXD
    /// stay result-identical (compaction disabled; see `sharding_registry`).
    #[test]
    fn prop_sharded_rxd_updates_match_unsharded(
        keys in prop::collection::vec(0u64..400, 1..100),
        inserts in prop::collection::vec(400u64..600, 0..50),
        deletes in prop::collection::vec(0u64..620, 0..50),
        upserts in prop::collection::vec(0u64..650, 0..40),
        points in prop::collection::vec(0u64..700, 1..60),
        ranges in prop::collection::vec((0u64..700, 0u64..50), 1..15),
    ) {
        let device = Device::default_eval();
        let registry = sharding_registry();
        let values: Vec<u64> = (0..keys.len() as u64).map(|i| i + 1).collect();
        let spec = IndexSpec::with_values(&device, &keys, &values);
        let insert_values: Vec<u64> = (0..inserts.len() as u64).map(|i| 7000 + i).collect();
        let upsert_values: Vec<u64> = (0..upserts.len() as u64).map(|i| 9000 + i).collect();
        let ranges: Vec<(u64, u64)> = ranges.into_iter().map(|(l, w)| (l, l + w)).collect();
        let batch = sharded_probe_batch(&points, &ranges);

        let mut baseline = registry.build_updatable("RXD", &spec).unwrap();
        baseline.insert(&inserts, &insert_values).unwrap();
        baseline.delete(&deletes).unwrap();
        baseline.upsert(&upserts, &upsert_values).unwrap();
        let expected = baseline.execute(&batch).unwrap();

        for grid in SHARD_GRID {
            let name = format!("RXD@{grid}");
            let mut sharded = registry.build_updatable(&name, &spec).unwrap();
            let ins = sharded.insert(&inserts, &insert_values).unwrap();
            prop_assert_eq!(ins.inserted_rows, inserts.len(), "{}", &name);
            sharded.delete(&deletes).unwrap();
            sharded.upsert(&upserts, &upsert_values).unwrap();
            let out = sharded.execute(&batch).unwrap();
            prop_assert_eq!(&out.results, &expected.results, "{}", &name);
        }
    }
}
