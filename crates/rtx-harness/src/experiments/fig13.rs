//! Figure 13: impact of splitting the lookups into many smaller batches.
//!
//! Few large batches keep the GPU saturated; many small batches underutilise
//! it and accumulate kernel-launch overhead, degrading every index.

use rtindex_core::RtIndexConfig;
use rtx_workloads as wl;

use crate::indexes::{build_all_indexes, measure_points};
use crate::report::{fmt_ms, Table};
use crate::scale::ExperimentScale;

/// Batch-count exponents evaluated (the paper splits 2^27 lookups into up to
/// 2^20 batches; we scale with the lookup count).
pub fn batch_exponents(scale: &ExperimentScale) -> Vec<u32> {
    let max = scale.lookups_exp.saturating_sub(4);
    (0..=max).step_by(4).collect()
}

/// Runs the batch-size experiment (unsorted lookups).
pub fn run(scale: &ExperimentScale) -> Vec<Table> {
    let device = crate::scaled_device(scale);
    let keys = wl::dense_shuffled(scale.default_keys(), scale.seed);
    let values = wl::value_column(keys.len(), scale.seed + 7);
    let lookups = wl::point_lookups(&keys, scale.default_lookups(), scale.seed + 1);
    let indexes = build_all_indexes(&device, &keys, Some(&values), RtIndexConfig::default());

    let mut table = Table::new(
        "Figure 13: cumulative lookup time [ms] vs. number of batches",
        &["batches [2^n]", "lookups per batch", "HT", "B+", "SA", "RX"],
    );
    for exp in batch_exponents(scale) {
        let batch_count = 1usize << exp;
        let batches = wl::split_batches(&lookups, batch_count);
        let per_batch = batches.first().map(|b| b.len()).unwrap_or(0);
        let mut row = vec![exp.to_string(), per_batch.to_string()];
        for name in ["HT", "B+", "SA", "RX"] {
            let cell = match indexes.iter().find(|ix| ix.name() == name) {
                Some(ix) => {
                    let mut total_ms = 0.0;
                    for batch in &batches {
                        total_ms += measure_points(ix.as_ref(), batch, true).sim_ms;
                    }
                    fmt_ms(total_ms)
                }
                None => "N/A".to_string(),
            };
            row.push(cell);
        }
        table.push_row(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn many_small_batches_are_slower_than_one_large_batch() {
        let device = crate::default_device();
        let keys = wl::dense_shuffled(1 << 12, 1);
        let lookups = wl::point_lookups(&keys, 1 << 13, 2);
        let index = rtindex_core::RtIndex::build(&device, &keys, RtIndexConfig::default()).unwrap();

        let single = index
            .point_lookup_batch(&lookups, None)
            .unwrap()
            .metrics
            .simulated_time_s;
        let mut many = 0.0;
        for batch in wl::split_batches(&lookups, 1 << 7) {
            many += index
                .point_lookup_batch(&batch, None)
                .unwrap()
                .metrics
                .simulated_time_s;
        }
        assert!(
            many > single * 1.5,
            "128 batches must be noticeably slower than one batch ({many} vs {single})"
        );
    }

    #[test]
    fn smoke_rows_follow_batch_exponents() {
        let scale = ExperimentScale::tiny();
        let tables = run(&scale);
        assert_eq!(tables[0].rows.len(), batch_exponents(&scale).len());
        // RX column must be monotically non-decreasing in the tail (more
        // batches => more total time). Allow the first rows to be flat.
        let rx: Vec<f64> = tables[0]
            .column("RX")
            .unwrap()
            .iter()
            .map(|v| v.parse().unwrap())
            .collect();
        assert!(rx.last().unwrap() >= rx.first().unwrap());
    }
}
