//! Composite keys: typed multi-column schemas, order-preserving encoding and
//! prefix-range queries on every backend — the `{...}` brace clause of the
//! registry grammar end to end.
//!
//! Run with: `cargo run --release --example composite_keys`

use std::sync::Arc;

use rtindex::{
    registry, Device, IndexSpec, KeySchema, KeyValue, Route, Table, TableQuery, TableSchema,
    TypedBatch,
};
use KeyValue::{Str, I64, U64};

fn main() {
    let device = Device::default_eval();
    let registry = Arc::new(registry());

    // ------------------------------------------------------------------
    // 1. A direct schema: (region u32, day u32) fits one u64 limb, so the
    //    encoded tuple IS the backend key — every backend serves it.
    // ------------------------------------------------------------------
    let schema = KeySchema::parse("{u32,u32}").unwrap();
    let orders: Vec<Vec<KeyValue>> = (0..5_000u64)
        .map(|i| vec![U64(i % 8), U64(i % 365)])
        .collect();
    let revenue: Vec<u64> = (0..5_000u64).map(|i| i % 97 + 1).collect();

    // One typed batch: full-tuple equality, a whole-prefix scan, and a
    // prefix range (region fixed, day within bounds).
    let batch = TypedBatch::new()
        .point(vec![U64(3), U64(120)])
        .prefix(vec![U64(3)])
        .prefix_range(vec![U64(3)], U64(100)..U64(200))
        .fetch_values(true);

    println!(
        "== direct schema {{u32,u32}} over {} orders ==",
        orders.len()
    );
    for backend in ["RX", "SA", "B+", "HT", "RXD"] {
        let name = format!("{backend}{{u32,u32}}");
        let spec = IndexSpec::typed_with_values(&device, schema.clone(), &orders, &revenue);
        let index = match registry.build(&name, &spec) {
            Ok(index) => index,
            Err(err) => {
                println!("{name}: rejected ({err})");
                continue;
            }
        };
        match index.execute_typed(&batch) {
            Ok(out) => {
                let hits: Vec<String> = out
                    .results
                    .iter()
                    .map(|r| format!("{} rows (sum {})", r.hit_count, r.value_sum))
                    .collect();
                println!(
                    "{name}: point {}, prefix {}, prefix-range {}",
                    hits[0], hits[1], hits[2]
                );
            }
            // The hash table answers typed points but fences everything that
            // compiles to a range — same honesty as the raw API.
            Err(err) => println!("{name}: fenced ({err})"),
        }
    }

    // ------------------------------------------------------------------
    // 2. A wide schema: (tenant u32, balance i64, name str16) needs 32
    //    encoded bytes, so it runs through the order-preserving key
    //    dictionary — and still takes typed updates on RXD.
    // ------------------------------------------------------------------
    let wide = KeySchema::parse("{u32,i64,str16}").unwrap();
    let accounts: Vec<Vec<KeyValue>> = (0..1_000i64)
        .map(|i| {
            vec![
                U64((i % 5) as u64),
                I64(i * 13 - 6_000),
                Str(format!("acct-{i:04}")),
            ]
        })
        .collect();
    let balances: Vec<u64> = (0..1_000u64).map(|i| i + 1).collect();

    let mut index = registry
        .build_updatable(
            "RXD{u32,i64,str16}",
            &IndexSpec::typed_with_values(&device, wide, &accounts, &balances),
        )
        .unwrap();
    index
        .insert_rows(&[vec![U64(2), I64(-123), Str("acct-new".into())]], &[5_000])
        .unwrap();
    index
        .delete_rows(&[vec![U64(2), I64(-6_000 + 13 * 2), Str("acct-0002".into())]])
        .unwrap();

    let out = index
        .execute_typed(
            &TypedBatch::new()
                .point(vec![U64(2), I64(-123), Str("acct-new".into())])
                .prefix(vec![U64(2)])
                // Negative balances of tenant 2 only — the i64 sign-flip
                // keeps them ordered below zero.
                .prefix_range(vec![U64(2)], I64(i64::MIN)..I64(0))
                .fetch_values(true),
        )
        .unwrap();
    println!("\n== dictionary schema {{u32,i64,str16}} on RXD, after updates ==");
    println!(
        "inserted tuple: {} row(s), tenant-2 prefix: {} rows, tenant-2 negative balances: {} rows",
        out.results[0].hit_count, out.results[1].hit_count, out.results[2].hit_count,
    );

    // ------------------------------------------------------------------
    // 3. Tables: a composite index over a column tuple, routed by the
    //    planner whenever the leading columns of a predicate match.
    // ------------------------------------------------------------------
    let table_schema = TableSchema::new(["id", "region", "ts", "amount"])
        .with_value_column("amount")
        .with_index("id_ht", "id", "HT")
        .with_composite_index("region_ts", ["region", "ts"], "RX{u32,u32}");
    let rows: Vec<Vec<u64>> = (0..4_000u64)
        .map(|k| vec![k, k % 8, (k * 37) % 512, k % 100])
        .collect();
    let table = Table::load(table_schema, &device, registry, &rows).unwrap();

    let out = table
        .query(
            &TableQuery::new()
                .point("id", 1_234)
                .prefix_tuple(["region", "ts"], vec![5, 185])
                .prefix_range(["region", "ts"], vec![5], 100, 300)
                .fetch_values(true),
        )
        .unwrap();
    println!("\n== table with composite index (region, ts) ==");
    for (i, choice) in out.plan.choices.iter().enumerate() {
        let route = match &choice.route {
            Route::Index { index, .. } => format!("index {index}"),
            Route::Scan => "scan".into(),
        };
        println!(
            "predicate {i}: routed to {route}, {} rows (sum {})",
            out.results[i].hit_count, out.results[i].value_sum,
        );
    }
    println!("\n{}", out.plan);
}
