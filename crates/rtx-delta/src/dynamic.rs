//! The dynamic index: an immutable RX base + the mutable delta layer.
//!
//! Reads fan out to both sides and reconcile:
//!
//! * the **base** is an ordinary [`RtIndex`] (BVH over the scene) queried
//!   through its masked-lookup hooks, so tombstoned rows never surface;
//! * the **delta** is queried by a hash-probe kernel (point lookups) or a
//!   scan kernel (range lookups) over the [`DeltaBuffer`];
//! * per query, the two partial results merge: hit counts and value sums
//!   add, and the first row is the minimum qualifying rowID (base rows are
//!   always smaller than delta rows, because delta rows are assigned after
//!   the base was built).
//!
//! Writes never touch the BVH: inserts append to the delta, deletes clear
//! validity bits (base) or tombstone slots (delta). Once the configured
//! [`CompactionPolicy`](crate::config::CompactionPolicy) trips, the live
//! key set is merged and the base is
//! rebuilt through the ordinary `optixAccelBuild` path — the same cost the
//! paper charges for its "rebuild" update strategy — after which the delta
//! and every tombstone are gone.

use gpu_baselines::{kernel as baseline_kernel, GROUP_SIZE};
use gpu_device::{Device, DeviceBuffer};
use optix_sim::LaunchMetrics;
use rtindex_core::{BatchOutcome, LookupResult, RtIndex, RtIndexError, MISS};

use crate::config::{CompactionTrigger, DynamicRtConfig};
use crate::delta_buffer::{DeltaBuffer, DELTA_SLOT_BYTES};

/// Summary of one completed compaction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionEvent {
    /// Why the compaction ran.
    pub trigger: CompactionTrigger,
    /// Live rows in the rebuilt base.
    pub live_rows: usize,
    /// Delta entries merged into the new base.
    pub merged_delta_entries: usize,
    /// Tombstoned base rows dropped by the merge.
    pub dropped_base_tombstones: usize,
    /// Simulated device seconds of the BVH rebuild.
    pub simulated_build_s: f64,
}

/// Result of one update batch (insert, delete or upsert).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UpdateOutcome {
    /// Rows inserted by the batch.
    pub inserted_rows: usize,
    /// Rows deleted by the batch (base tombstones + delta removals).
    pub deleted_rows: usize,
    /// Simulated device seconds spent applying the batch (kernels plus a
    /// compaction rebuild, when one triggered).
    pub simulated_time_s: f64,
    /// The compaction this batch triggered, if any.
    pub compaction: Option<CompactionEvent>,
}

/// Lifetime counters of a [`DynamicRtIndex`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UpdateStats {
    /// Rows inserted since construction.
    pub inserted_rows: u64,
    /// Rows deleted since construction.
    pub deleted_rows: u64,
    /// Update batches applied.
    pub update_batches: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Simulated device seconds spent in update kernels and rebuilds.
    pub simulated_update_s: f64,
}

/// A dynamically updatable RT index: immutable [`RtIndex`] base, mutable
/// delta buffer, tombstone mask and automatic compaction.
///
/// Unlike the static index, the dynamic index owns its value column: every
/// row carries a `u64` value supplied at insert time, and lookups aggregate
/// those values (the paper's secondary-index methodology) without the caller
/// passing a column around — rows move between delta and base during
/// compaction, so only the index knows where a row's value lives.
#[derive(Debug)]
pub struct DynamicRtIndex {
    device: Device,
    config: DynamicRtConfig,
    base: RtIndex,
    /// Value column of the base rows (device copy).
    base_values: DeviceBuffer<u64>,
    /// Validity of each base row; cleared by deletes.
    live: Vec<bool>,
    /// Device allocation standing in for the packed validity bitmap.
    live_bitmap: DeviceBuffer<u8>,
    dead_rows: usize,
    delta: DeltaBuffer,
    next_row: u32,
    stats: UpdateStats,
    last_compaction: Option<CompactionEvent>,
}

impl DynamicRtIndex {
    /// Builds the dynamic index over an initial `(keys, values)` column pair
    /// (either may be empty; both must have equal length).
    pub fn build(
        device: &Device,
        keys: &[u64],
        values: &[u64],
        config: DynamicRtConfig,
    ) -> Result<Self, RtIndexError> {
        if keys.len() != values.len() {
            return Err(RtIndexError::ValueColumnLengthMismatch {
                expected: keys.len(),
                actual: values.len(),
            });
        }
        let base = RtIndex::build(device, keys, config.rx)?;
        let n = keys.len();
        Ok(DynamicRtIndex {
            device: device.clone(),
            config,
            base,
            base_values: device.upload(values),
            live: vec![true; n],
            live_bitmap: device.alloc::<u8>(n.div_ceil(8)),
            dead_rows: 0,
            delta: DeltaBuffer::new(device),
            next_row: u32::try_from(n).expect("base exceeds the rowID space"),
            stats: UpdateStats::default(),
            last_compaction: None,
        })
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &DynamicRtConfig {
        &self.config
    }

    /// The device the index lives on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Live entries (base rows not tombstoned + delta entries).
    pub fn len(&self) -> usize {
        self.base.key_count() - self.dead_rows + self.delta.len()
    }

    /// True when no live entry is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rows in the immutable base (live and tombstoned).
    pub fn base_rows(&self) -> usize {
        self.base.key_count()
    }

    /// Tombstoned base rows awaiting compaction.
    pub fn dead_base_rows(&self) -> usize {
        self.dead_rows
    }

    /// Live entries buffered in the delta.
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Lifetime update counters.
    pub fn stats(&self) -> &UpdateStats {
        &self.stats
    }

    /// Build metrics of the current base index (the most recent initial
    /// build or compaction rebuild).
    pub fn base_build_metrics(&self) -> &optix_sim::BuildMetrics {
        self.base.build_metrics()
    }

    /// RowIDs allocated so far (the next insert starts here). Unlike
    /// [`DynamicRtIndex::len`] this only ever grows between compactions —
    /// deletes free no rowIDs — so it is the quantity to check against the
    /// rowID space before inserting.
    pub fn allocated_rows(&self) -> u32 {
        self.next_row
    }

    /// Number of compactions performed so far.
    pub fn compaction_count(&self) -> u64 {
        self.stats.compactions
    }

    /// The most recent compaction, if any.
    pub fn last_compaction(&self) -> Option<&CompactionEvent> {
        self.last_compaction.as_ref()
    }

    /// Device memory occupied by the whole dynamic index: base (BVH +
    /// primitive buffer + key column), value column, validity bitmap and the
    /// delta table.
    pub fn memory_bytes(&self) -> u64 {
        self.base.total_memory_bytes()
            + self.base_values.size_bytes()
            + self.live_bitmap.size_bytes()
            + self.delta.memory_bytes()
    }

    /// All live `(row, key, value)` entries in ascending row order — the
    /// exact column a compaction (or an oracle) materialises.
    pub fn live_entries(&self) -> Vec<(u32, u64, u64)> {
        let keys = self.base.keys();
        let values = self.base_values.as_slice();
        let mut entries: Vec<(u32, u64, u64)> = (0..keys.len())
            .filter(|&row| self.live[row])
            .map(|row| (row as u32, keys[row], values[row]))
            .collect();
        entries.extend(
            self.delta
                .entries_sorted_by_row()
                .iter()
                .map(|e| (e.row, e.key, e.value)),
        );
        entries
    }

    fn validate_keys(&self, keys: &[u64]) -> Result<(), RtIndexError> {
        let mode = self.config.rx.key_mode;
        let max_key = mode.max_key();
        if let Some(&bad) = keys.iter().find(|&&k| k > max_key) {
            return Err(RtIndexError::KeyOutOfRange {
                key: bad,
                mode,
                max_key,
            });
        }
        Ok(())
    }

    /// Rejects a batch that would allocate rowIDs at or beyond the reserved
    /// [`MISS`] sentinel. Checked before any state mutates, so a failed
    /// insert/upsert leaves the index untouched.
    fn validate_row_space(&self, new_rows: usize) -> Result<(), RtIndexError> {
        if self.next_row as u64 + new_rows as u64 >= MISS as u64 {
            return Err(RtIndexError::RowIdSpaceExhausted {
                allocated: self.next_row as u64,
                requested: new_rows as u64,
                limit: MISS as u64 - 1,
            });
        }
        Ok(())
    }

    /// Buffers the inserts in the delta; no compaction check (the public
    /// batch methods run it once, at the batch boundary). Returns the
    /// simulated seconds of the insert kernels.
    fn apply_insert(&mut self, keys: &[u64], values: &[u64]) -> f64 {
        debug_assert!(
            (self.next_row as u64 + keys.len() as u64) < MISS as u64,
            "row space validated by the public batch methods"
        );
        let entries: Vec<(u64, u32, u64)> = keys
            .iter()
            .zip(values)
            .enumerate()
            .map(|(i, (&k, &v))| (k, self.next_row + i as u32, v))
            .collect();
        let simulated = self.delta.insert_batch(&entries);
        self.next_row += keys.len() as u32;
        self.stats.inserted_rows += keys.len() as u64;
        simulated
    }

    /// Tombstones every live entry holding one of `keys`; no compaction
    /// check. Returns the deleted row count and the simulated seconds.
    fn apply_delete(&mut self, keys: &[u64]) -> Result<(usize, f64), RtIndexError> {
        let mut simulated = 0.0;
        let mut deleted = 0usize;

        if self.base.key_count() > 0 && !keys.is_empty() {
            let (rows_per_key, metrics) = self.base.collect_point_rows(keys, Some(&self.live))?;
            simulated += metrics.simulated_time_s;
            for row in rows_per_key.into_iter().flatten() {
                if self.live[row as usize] {
                    self.live[row as usize] = false;
                    self.dead_rows += 1;
                    deleted += 1;
                }
            }
        }

        let (removed, delta_sim) = self.delta.delete_batch(keys);
        simulated += delta_sim;
        deleted += removed.len();
        self.stats.deleted_rows += deleted as u64;
        Ok((deleted, simulated))
    }

    /// Runs the policy once at the end of a public update batch, folding a
    /// triggered compaction into the outcome.
    fn finish_batch(
        &mut self,
        inserted_rows: usize,
        deleted_rows: usize,
        mut simulated: f64,
    ) -> UpdateOutcome {
        self.stats.update_batches += 1;
        let compaction = self.maybe_compact();
        if let Some(event) = compaction {
            simulated += event.simulated_build_s;
        }
        self.stats.simulated_update_s += simulated;
        UpdateOutcome {
            inserted_rows,
            deleted_rows,
            simulated_time_s: simulated,
            compaction,
        }
    }

    /// Inserts a batch of `(key, value)` rows. Every key is validated
    /// against the configured key mode up front, so a later compaction
    /// rebuild can never fail. Returns what the batch did, including the
    /// compaction it may have triggered.
    ///
    /// Compaction runs at most once, after the whole batch is applied, so
    /// callers observing [`DynamicRtIndex::compaction_count`] between
    /// batches see every row renumbering.
    pub fn insert_batch(
        &mut self,
        keys: &[u64],
        values: &[u64],
    ) -> Result<UpdateOutcome, RtIndexError> {
        if keys.len() != values.len() {
            return Err(RtIndexError::ValueColumnLengthMismatch {
                expected: keys.len(),
                actual: values.len(),
            });
        }
        self.validate_keys(keys)?;
        self.validate_row_space(keys.len())?;
        let simulated = self.apply_insert(keys, values);
        Ok(self.finish_batch(keys.len(), 0, simulated))
    }

    /// Deletes every live entry whose key appears in `keys` (all duplicates,
    /// wherever they live). Base hits are found by rays — a delete *is* a
    /// lookup — and tombstoned via the validity mask; delta hits are
    /// tombstoned in the hash table. Unknown keys are ignored.
    pub fn delete_batch(&mut self, keys: &[u64]) -> Result<UpdateOutcome, RtIndexError> {
        let (deleted, simulated) = self.apply_delete(keys)?;
        Ok(self.finish_batch(0, deleted, simulated))
    }

    /// Upserts a batch: every key's existing entries (base and delta) are
    /// deleted, then one fresh `(key, value)` row is inserted per pair. Like
    /// every update batch, compaction runs at most once, at the end.
    pub fn upsert_batch(
        &mut self,
        keys: &[u64],
        values: &[u64],
    ) -> Result<UpdateOutcome, RtIndexError> {
        if keys.len() != values.len() {
            return Err(RtIndexError::ValueColumnLengthMismatch {
                expected: keys.len(),
                actual: values.len(),
            });
        }
        self.validate_keys(keys)?;
        self.validate_row_space(keys.len())?;
        let (deleted, delete_sim) = self.apply_delete(keys)?;
        let insert_sim = self.apply_insert(keys, values);
        Ok(self.finish_batch(keys.len(), deleted, delete_sim + insert_sim))
    }

    /// Answers a batch of point lookups against the merged base + delta
    /// view. Results carry the hit counts and value sums of all live
    /// entries; `first_row` is the smallest qualifying rowID.
    pub fn point_lookup_batch(&self, queries: &[u64]) -> Result<BatchOutcome, RtIndexError> {
        let mut outcome = self.base.point_lookup_batch_masked(
            queries,
            Some(self.base_values.as_slice()),
            Some(&self.live),
        )?;

        // Delta side: one hash-probe kernel over the same queries. An empty
        // delta (e.g. right after a compaction) skips the kernel entirely —
        // the host knows the entry count, so a real system would not launch.
        if self.delta.is_empty() {
            return Ok(outcome);
        }
        let working_set = self.delta.memory_bytes();
        let delta = &self.delta;
        let batch = baseline_kernel::run_lookup_kernel(&self.device, queries.len(), working_set, {
            |ctx, classifier, idx| {
                let key = queries[idx];
                ctx.add_instructions(12); // hash + loop setup
                let mut first_row = MISS;
                let mut hit_count = 0u32;
                let mut sum = 0u64;
                let probed = delta.probe(key, |e| {
                    if first_row == MISS || e.row < first_row {
                        first_row = e.row;
                    }
                    hit_count += 1;
                    sum = sum.wrapping_add(e.value);
                });
                classifier.access(
                    ctx,
                    delta.group_token(key),
                    probed * GROUP_SIZE as u64 * DELTA_SLOT_BYTES,
                );
                ctx.add_instructions(probed * GROUP_SIZE as u64);
                gpu_baselines::BaselineLookupResult {
                    first_row,
                    hit_count,
                    value_sum: sum,
                }
            }
        });

        merge_delta_results(&mut outcome, &batch);
        Ok(outcome)
    }

    /// Answers a batch of inclusive range lookups `[lower, upper]` against
    /// the merged base + delta view. The base side traces range rays; the
    /// delta side scans its (small, unordered) table per query.
    pub fn range_lookup_batch(&self, ranges: &[(u64, u64)]) -> Result<BatchOutcome, RtIndexError> {
        let mut outcome = self.base.range_lookup_batch_masked(
            ranges,
            Some(self.base_values.as_slice()),
            Some(&self.live),
        )?;

        // As for point lookups, an empty delta skips its kernel.
        if self.delta.is_empty() {
            return Ok(outcome);
        }
        let working_set = self.delta.memory_bytes();
        let slot_bytes = self.delta.capacity() as u64 * DELTA_SLOT_BYTES;
        let delta = &self.delta;
        let batch = baseline_kernel::run_lookup_kernel(&self.device, ranges.len(), working_set, {
            |ctx, classifier, idx| {
                let (lower, upper) = ranges[idx];
                ctx.add_instructions(8);
                let mut first_row = MISS;
                let mut hit_count = 0u32;
                let mut sum = 0u64;
                delta.scan_range(lower, upper, |e| {
                    if first_row == MISS || e.row < first_row {
                        first_row = e.row;
                    }
                    hit_count += 1;
                    sum = sum.wrapping_add(e.value);
                });
                // The scan streams the whole table once.
                classifier.access(ctx, u64::MAX, slot_bytes);
                ctx.add_instructions(delta.capacity() as u64);
                gpu_baselines::BaselineLookupResult {
                    first_row,
                    hit_count,
                    value_sum: sum,
                }
            }
        });

        merge_delta_results(&mut outcome, &batch);
        Ok(outcome)
    }

    /// Compacts if the policy says so.
    fn maybe_compact(&mut self) -> Option<CompactionEvent> {
        let trigger =
            self.config
                .policy
                .trigger(self.delta.len(), self.base.key_count(), self.dead_rows)?;
        Some(self.compact(trigger))
    }

    /// Unconditionally merges the delta into a rebuilt base.
    pub fn compact_now(&mut self) -> CompactionEvent {
        self.compact(CompactionTrigger::Manual)
    }

    fn compact(&mut self, trigger: CompactionTrigger) -> CompactionEvent {
        let merged_delta_entries = self.delta.len();
        let dropped_base_tombstones = self.dead_rows;

        // The merged column is exactly the live entry sequence in ascending
        // row order — [`live_entries`](Self::live_entries) is the single
        // definition of that order, shared with the verification oracle.
        let mut keys = Vec::with_capacity(self.len());
        let mut values = Vec::with_capacity(self.len());
        for (_, key, value) in self.live_entries() {
            keys.push(key);
            values.push(value);
        }

        // Every key was validated at insert/build time, so the rebuild
        // cannot fail on key range; any failure here is a logic error.
        let rebuilt =
            RtIndex::build(&self.device, &keys, self.config.rx).expect("compaction rebuild");
        let simulated_build_s = rebuilt.build_metrics().simulated_time_s;

        self.base = rebuilt;
        self.base_values = self.device.upload(&values);
        self.live = vec![true; keys.len()];
        self.live_bitmap = self.device.alloc::<u8>(keys.len().div_ceil(8));
        self.dead_rows = 0;
        self.delta = DeltaBuffer::new(&self.device);
        self.next_row = keys.len() as u32;

        let event = CompactionEvent {
            trigger,
            live_rows: keys.len(),
            merged_delta_entries,
            dropped_base_tombstones,
            simulated_build_s,
        };
        self.stats.compactions += 1;
        self.last_compaction = Some(event);
        event
    }
}

/// Folds the delta-side partial results into the base outcome: counts and
/// sums add, the first row is the minimum, and the launch metrics merge so
/// callers see the cost of both kernels.
fn merge_delta_results(outcome: &mut BatchOutcome, delta: &gpu_baselines::BaselineBatch) {
    debug_assert_eq!(outcome.results.len(), delta.results.len());
    for (merged, partial) in outcome.results.iter_mut().zip(&delta.results) {
        if partial.hit_count == 0 {
            continue;
        }
        *merged = LookupResult {
            first_row: merged.first_row.min(partial.first_row),
            hit_count: merged.hit_count + partial.hit_count,
            value_sum: merged.value_sum.wrapping_add(partial.value_sum),
        };
    }
    outcome.metrics.merge(&LaunchMetrics {
        kernel: delta.kernel,
        simulated_time_s: delta.simulated_time_s,
        host_time: delta.host_time,
        ..Default::default()
    });
}
