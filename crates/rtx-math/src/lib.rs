//! # rtx-math
//!
//! Foundational float32 3-D geometry used by the RTIndeX reproduction.
//!
//! NVIDIA OptiX only supports single-precision floating-point coordinates, so
//! every type in this crate is deliberately `f32`-based: the precision
//! limitations that shape the paper's *Naive*, *Extended* and *3D* key modes
//! (Section 3.2 of the paper) all originate here.
//!
//! The crate provides:
//!
//! * [`Vec3f`] — a minimal 3-component float32 vector,
//! * [`Aabb`] — axis-aligned bounding boxes with slab-test ray intersection,
//! * [`Ray`] — origin/direction rays with `tmin`/`tmax` clipping,
//! * [`Triangle`] / [`Sphere`] — the scene primitives supported by OptiX,
//! * [`float_bits`] — order-preserving bit tricks on `f32` (`bit_cast`,
//!   `nextafter`, monotone integer↔float maps),
//! * [`key_encode`] — order-preserving mappings from native column types
//!   (signed integers, floats, strings, …) onto `u64` index keys, as described
//!   in the paper's "Handling other data types" paragraph,
//! * [`morton`] — Morton (Z-order) codes used by the LBVH builder.

pub mod aabb;
pub mod float_bits;
pub mod key_encode;
pub mod morton;
pub mod ray;
pub mod sphere;
pub mod triangle;
pub mod vec3;

pub use aabb::Aabb;
pub use ray::Ray;
pub use sphere::Sphere;
pub use triangle::Triangle;
pub use vec3::Vec3f;

/// A compact intersection record produced by the primitive intersection
/// routines.
///
/// `t` is the ray parameter of the hit (`point = origin + t * direction`);
/// the hit is only reported when `ray.tmin < t < ray.tmax`, mirroring the
/// OptiX convention that interval end points are *exclusive* (which is why
/// the index must leave gaps between primitives and ray end points).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Ray parameter at the intersection point.
    pub t: f32,
}

impl Hit {
    /// Creates a hit at ray parameter `t`.
    #[inline]
    pub fn new(t: f32) -> Self {
        Hit { t }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_stores_parameter() {
        let h = Hit::new(1.5);
        assert_eq!(h.t, 1.5);
    }
}
