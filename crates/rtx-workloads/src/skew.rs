//! Skewed traffic generators for heavy-traffic experiments.
//!
//! The static workloads in [`crate::lookups`] draw keys uniformly; real
//! services see the opposite: a handful of keys (or tenants) receiving most
//! of the traffic. This module generates such streams deterministically so
//! the sharding and service layers can be exercised — and gated — under
//! realistic hot-spot pressure:
//!
//! * [`SkewProfile`] — the key-popularity model shared by every generator:
//!   uniform, Zipf-by-rank (reusing [`ZipfSampler`]), or an explicit hot set
//!   (`hot_keys` ranks absorb `hot_weight` of the traffic);
//! * [`skewed_point_lookups`] — read batches whose queried keys follow a
//!   profile over an indexed key set;
//! * [`skewed_mixed_ops`] — interleaved insert/delete/upsert/lookup streams
//!   (the [`crate::mixed`] engine) with profile-driven key choice;
//! * [`multi_tenant_ops`] — per-tenant operation streams over disjoint key
//!   stripes, with Zipf-skewed traffic *across* tenants and an inner profile
//!   *within* each tenant's stripe.
//!
//! All generators are pure functions of their configuration (seed included).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mixed::{mixed_ops_with, MixedOp, MixedWorkloadConfig};
use crate::zipf::ZipfSampler;

/// Key-popularity model used by the skewed generators: how a *rank* in
/// `0..domain` is chosen (generators then map ranks onto keys).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SkewProfile {
    /// Every rank equally likely.
    Uniform,
    /// Zipf-distributed ranks: rank `i` drawn with probability proportional
    /// to `1 / (i + 1)^theta`.
    Zipfian {
        /// Skew parameter (0 = uniform, ~1 = classic web traffic).
        theta: f64,
    },
    /// An explicit hot set: the first `hot_keys` ranks jointly absorb
    /// `hot_weight` of the traffic (uniformly within the set); the remaining
    /// traffic spreads uniformly over the whole domain.
    HotSet {
        /// Number of hot ranks (clamped to the domain).
        hot_keys: usize,
        /// Fraction of draws taken from the hot set, in `[0, 1]`.
        hot_weight: f64,
    },
}

impl SkewProfile {
    /// Zipf profile with the given `theta`.
    pub fn zipfian(theta: f64) -> Self {
        assert!(theta >= 0.0, "zipf theta must be non-negative");
        SkewProfile::Zipfian { theta }
    }

    /// Hot-set profile: `hot_keys` ranks receive `hot_weight` of all draws.
    pub fn hot_set(hot_keys: usize, hot_weight: f64) -> Self {
        assert!(hot_keys > 0, "a hot set needs at least one key");
        assert!(
            (0.0..=1.0).contains(&hot_weight),
            "hot_weight must lie in [0, 1]"
        );
        SkewProfile::HotSet {
            hot_keys,
            hot_weight,
        }
    }

    /// Builds the stateful rank picker for a domain of `domain` ranks.
    fn picker(&self, domain: usize, seed: u64) -> RankPicker {
        assert!(domain > 0, "skewed draws need a non-empty domain");
        match *self {
            SkewProfile::Uniform => RankPicker::Uniform {
                domain: domain as u64,
            },
            SkewProfile::Zipfian { theta } if theta > 0.0 => {
                RankPicker::Zipf(Box::new(ZipfSampler::new(domain, theta, seed)))
            }
            SkewProfile::Zipfian { .. } => RankPicker::Uniform {
                domain: domain as u64,
            },
            SkewProfile::HotSet {
                hot_keys,
                hot_weight,
            } => RankPicker::Hot {
                hot: hot_keys.min(domain) as u64,
                domain: domain as u64,
                hot_weight,
            },
        }
    }
}

/// Stateful rank generator compiled from a [`SkewProfile`].
enum RankPicker {
    Uniform {
        domain: u64,
    },
    Zipf(Box<ZipfSampler>),
    Hot {
        hot: u64,
        domain: u64,
        hot_weight: f64,
    },
}

impl RankPicker {
    fn draw(&mut self, rng: &mut StdRng) -> u64 {
        match self {
            RankPicker::Uniform { domain } => rng.gen_range(0..*domain),
            RankPicker::Zipf(sampler) => sampler.sample() as u64,
            RankPicker::Hot {
                hot,
                domain,
                hot_weight,
            } => {
                if rng.gen_range(0.0..1.0) < *hot_weight {
                    rng.gen_range(0..*hot)
                } else {
                    rng.gen_range(0..*domain)
                }
            }
        }
    }
}

/// Point-lookup batch whose queried keys follow `profile` over `keys`
/// (rank 0 = `keys[0]`, so the front of the slice is the hot end).
pub fn skewed_point_lookups(
    keys: &[u64],
    count: usize,
    profile: &SkewProfile,
    seed: u64,
) -> Vec<u64> {
    assert!(!keys.is_empty(), "skewed lookups need a non-empty key set");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x534B_4557_5054_5353);
    let mut picker = profile.picker(keys.len(), seed);
    (0..count)
        .map(|_| keys[picker.draw(&mut rng) as usize])
        .collect()
}

/// Mixed insert/delete/upsert/lookup stream (the [`crate::mixed`] engine)
/// whose key choice follows `profile` over the config's `key_domain`; the
/// config's own `zipf_theta` is ignored.
pub fn skewed_mixed_ops(config: &MixedWorkloadConfig, profile: &SkewProfile) -> Vec<MixedOp> {
    let mut picker = profile.picker(config.key_domain as usize, config.seed);
    mixed_ops_with(config, move |rng| picker.draw(rng))
}

/// Shape of a multi-tenant operation stream: `tenants` disjoint key stripes
/// of `keys_per_tenant` keys each, traffic Zipf-skewed across tenants by
/// `tenant_theta`, keys within a stripe drawn by `within`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiTenantConfig {
    /// Number of tenants (key stripes).
    pub tenants: usize,
    /// Keys per tenant stripe; tenant `t` owns
    /// `[t * keys_per_tenant, (t + 1) * keys_per_tenant)`.
    pub keys_per_tenant: u64,
    /// Zipf skew of traffic across tenants (0 = uniform tenants).
    pub tenant_theta: f64,
    /// Key-popularity profile within each tenant's stripe.
    pub within: SkewProfile,
    /// Total primitive operations across all batches.
    pub total_ops: usize,
    /// Primitive operations per batch (each batch belongs to one tenant).
    pub batch_size: usize,
    /// Fraction of batches that are writes (inserts/deletes/upserts).
    pub write_fraction: f64,
    /// Span of generated range lookups (clamped inside the stripe).
    pub range_span: u64,
    /// Seed of the stream.
    pub seed: u64,
}

impl MultiTenantConfig {
    /// A read-heavy default: 20% writes, hot-set skew inside each stripe,
    /// moderate tenant skew.
    pub fn new(tenants: usize, keys_per_tenant: u64, total_ops: usize, seed: u64) -> Self {
        MultiTenantConfig {
            tenants,
            keys_per_tenant,
            tenant_theta: 0.9,
            within: SkewProfile::zipfian(1.1),
            total_ops,
            batch_size: (total_ops / 32).clamp(1, 512),
            write_fraction: 0.2,
            range_span: 8,
            seed,
        }
    }

    /// The key stripe `[start, end)` owned by tenant `t`.
    pub fn tenant_span(&self, tenant: usize) -> (u64, u64) {
        assert!(tenant < self.tenants, "tenant out of range");
        let start = tenant as u64 * self.keys_per_tenant;
        (start, start + self.keys_per_tenant)
    }

    /// The tenant owning `key`, or `None` outside every stripe.
    pub fn tenant_of_key(&self, key: u64) -> Option<usize> {
        let tenant = (key / self.keys_per_tenant) as usize;
        (tenant < self.tenants).then_some(tenant)
    }
}

/// One batch of a multi-tenant stream: the issuing tenant and its operation
/// (every key of `op` lies inside the tenant's stripe).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantOp {
    /// The tenant that issued the batch.
    pub tenant: usize,
    /// The batched operation, keys within the tenant's stripe.
    pub op: MixedOp,
}

/// Generates the multi-tenant stream described by `config`: each batch picks
/// a tenant (Zipf over tenants), a kind (write with `write_fraction`, else
/// 80/20 point/range lookups) and keys within the tenant's stripe.
pub fn multi_tenant_ops(config: &MultiTenantConfig) -> Vec<TenantOp> {
    assert!(config.tenants > 0, "need at least one tenant");
    assert!(
        config.keys_per_tenant > 0,
        "tenant stripes must be non-empty"
    );
    assert!(config.total_ops > 0, "need at least one operation");
    assert!(config.batch_size > 0, "batches must be non-empty");
    assert!(
        (0.0..=1.0).contains(&config.write_fraction),
        "write_fraction must lie in [0, 1]"
    );
    assert!(config.range_span >= 1, "ranges must span at least one key");

    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x4D54_454E_414E_5453);
    let mut tenant_picker = (config.tenant_theta > 0.0 && config.tenants > 1).then(|| {
        ZipfSampler::new(
            config.tenants,
            config.tenant_theta,
            config.seed ^ 0x7445_6E61,
        )
    });
    // Lazily built per-tenant rank pickers so each stripe gets its own
    // deterministic skew state.
    let mut pickers: Vec<Option<RankPicker>> = (0..config.tenants).map(|_| None).collect();

    let mut ops = Vec::new();
    let mut remaining = config.total_ops;
    while remaining > 0 {
        let batch = config.batch_size.min(remaining);
        remaining -= batch;

        let tenant = match &mut tenant_picker {
            Some(sampler) => sampler.sample(),
            None => rng.gen_range(0..config.tenants as u64) as usize,
        };
        let (start, end) = config.tenant_span(tenant);
        let span = end - start;
        let picker = pickers[tenant].get_or_insert_with(|| {
            config.within.picker(
                span as usize,
                config.seed ^ (tenant as u64).wrapping_mul(0x9E37),
            )
        });
        let mut draw = |rng: &mut StdRng| start + picker.draw(rng);

        let op = if rng.gen_range(0.0..1.0) < config.write_fraction {
            match rng.gen_range(0..3u32) {
                0 => MixedOp::Insert(
                    (0..batch)
                        .map(|_| (draw(&mut rng), rng.gen_range(0..1_000_000u64)))
                        .collect(),
                ),
                1 => MixedOp::Delete((0..batch).map(|_| draw(&mut rng)).collect()),
                _ => MixedOp::Upsert(
                    (0..batch)
                        .map(|_| (draw(&mut rng), rng.gen_range(0..1_000_000u64)))
                        .collect(),
                ),
            }
        } else if rng.gen_range(0.0..1.0) < 0.8 {
            MixedOp::PointLookups((0..batch).map(|_| draw(&mut rng)).collect())
        } else {
            MixedOp::RangeLookups(
                (0..batch)
                    .map(|_| {
                        let max_lower = end - 1 - (config.range_span - 1).min(span - 1);
                        let lower = draw(&mut rng).min(max_lower);
                        (lower, (lower + config.range_span - 1).min(end - 1))
                    })
                    .collect(),
            )
        };
        ops.push(TenantOp { tenant, op });
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn skewed_lookups_are_deterministic_and_in_domain() {
        let keys: Vec<u64> = (100..1100).collect();
        for profile in [
            SkewProfile::Uniform,
            SkewProfile::zipfian(1.2),
            SkewProfile::hot_set(10, 0.9),
        ] {
            let a = skewed_point_lookups(&keys, 5_000, &profile, 42);
            let b = skewed_point_lookups(&keys, 5_000, &profile, 42);
            assert_eq!(a, b, "{profile:?}");
            assert_ne!(a, skewed_point_lookups(&keys, 5_000, &profile, 43));
            assert!(a.iter().all(|k| (100..1100).contains(k)), "{profile:?}");
        }
    }

    #[test]
    fn hot_set_concentrates_traffic_on_the_front_ranks() {
        let keys: Vec<u64> = (0..10_000).collect();
        let profile = SkewProfile::hot_set(16, 0.9);
        let draws = skewed_point_lookups(&keys, 20_000, &profile, 7);
        let hot_hits = draws.iter().filter(|&&k| k < 16).count();
        // ~90% hot weight plus the uniform tail landing in the hot range.
        assert!(
            hot_hits as f64 > 0.85 * draws.len() as f64,
            "hot set received only {hot_hits}/{}",
            draws.len()
        );
    }

    #[test]
    fn zipf_profile_touches_fewer_distinct_keys_than_uniform() {
        let keys: Vec<u64> = (0..8_192).collect();
        let distinct = |profile: &SkewProfile| {
            skewed_point_lookups(&keys, 20_000, profile, 5)
                .into_iter()
                .collect::<HashSet<_>>()
                .len()
        };
        assert!(distinct(&SkewProfile::zipfian(1.5)) < distinct(&SkewProfile::Uniform) / 2);
    }

    #[test]
    fn skewed_mixed_ops_cover_the_requested_count_deterministically() {
        let config = MixedWorkloadConfig::uniform(8_000, 4_096, 11);
        let profile = SkewProfile::hot_set(64, 0.8);
        let ops = skewed_mixed_ops(&config, &profile);
        assert_eq!(ops.iter().map(MixedOp::len).sum::<usize>(), 8_000);
        assert_eq!(ops, skewed_mixed_ops(&config, &profile));

        // The hot set dominates key traffic.
        let mut hot = 0usize;
        let mut total = 0usize;
        for op in &ops {
            let keys: Vec<u64> = match op {
                MixedOp::Insert(b) | MixedOp::Upsert(b) => b.iter().map(|&(k, _)| k).collect(),
                MixedOp::Delete(b) | MixedOp::PointLookups(b) => b.clone(),
                MixedOp::RangeLookups(b) => b.iter().map(|&(l, _)| l).collect(),
            };
            total += keys.len();
            hot += keys.iter().filter(|&&k| k < 64).count();
        }
        assert!(
            hot as f64 > 0.7 * total as f64,
            "hot keys got {hot}/{total} draws"
        );
    }

    #[test]
    fn multi_tenant_streams_are_deterministic_and_skewed_across_tenants() {
        let config = MultiTenantConfig::new(8, 1_000, 20_000, 17);
        let ops = multi_tenant_ops(&config);
        assert_eq!(ops.iter().map(|t| t.op.len()).sum::<usize>(), 20_000);
        assert_eq!(ops, multi_tenant_ops(&config));

        let mut per_tenant: HashMap<usize, usize> = HashMap::new();
        for t in &ops {
            *per_tenant.entry(t.tenant).or_default() += t.op.len();
        }
        let hottest = *per_tenant.values().max().unwrap();
        let mean = 20_000 / config.tenants;
        assert!(
            hottest > 2 * mean,
            "tenant skew too weak: hottest {hottest}, mean {mean}"
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

        /// Every operation of a multi-tenant stream touches only keys owned
        /// by its issuing tenant, for arbitrary stream shapes.
        #[test]
        fn prop_multi_tenant_streams_partition_cleanly_by_tenant(
            tenants in 1usize..7,
            keys_per_tenant in 1u64..300,
            total_ops in 1usize..4_000,
            write_fraction in 0.0f64..1.0,
            seed in 0u64..10_000,
        ) {
            let config = MultiTenantConfig {
                write_fraction,
                ..MultiTenantConfig::new(tenants, keys_per_tenant, total_ops, seed)
            };
            for t in multi_tenant_ops(&config) {
                let (start, end) = config.tenant_span(t.tenant);
                let keys: Vec<u64> = match &t.op {
                    MixedOp::Insert(b) | MixedOp::Upsert(b) => {
                        b.iter().map(|&(k, _)| k).collect()
                    }
                    MixedOp::Delete(b) | MixedOp::PointLookups(b) => b.clone(),
                    MixedOp::RangeLookups(b) => {
                        b.iter().flat_map(|&(l, u)| [l, u]).collect()
                    }
                };
                for k in keys {
                    proptest::prop_assert!(
                        (start..end).contains(&k),
                        "tenant {} drew key {k} outside [{start}, {end})",
                        t.tenant
                    );
                    proptest::prop_assert_eq!(config.tenant_of_key(k), Some(t.tenant));
                }
            }
        }
    }

    #[test]
    fn multi_tenant_range_lookups_stay_inside_the_stripe() {
        let config = MultiTenantConfig {
            write_fraction: 0.0,
            range_span: 64,
            keys_per_tenant: 20, // span smaller than stripes: must clamp
            ..MultiTenantConfig::new(4, 20, 4_000, 23)
        };
        for t in multi_tenant_ops(&config) {
            let (start, end) = config.tenant_span(t.tenant);
            if let MixedOp::RangeLookups(b) = &t.op {
                for &(l, u) in b {
                    assert!(
                        l <= u && l >= start && u < end,
                        "[{l}, {u}] vs [{start}, {end})"
                    );
                }
            }
        }
    }
}
