//! Triangle primitives and ray/triangle intersection.
//!
//! Triangles are the primitive type RTIndeX ultimately selects (Section 3.5):
//! the ray-triangle intersection test is the only one implemented in the RT
//! cores themselves, which is the source of the primitive-type performance
//! gap reproduced by the `fig7` experiment.

use crate::aabb::Aabb;
use crate::ray::Ray;
use crate::vec3::Vec3f;
use crate::Hit;

/// A triangle described by its three vertices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// First vertex.
    pub v0: Vec3f,
    /// Second vertex.
    pub v1: Vec3f,
    /// Third vertex.
    pub v2: Vec3f,
}

impl Triangle {
    /// Creates a triangle from its vertices.
    #[inline]
    pub const fn new(v0: Vec3f, v1: Vec3f, v2: Vec3f) -> Self {
        Triangle { v0, v1, v2 }
    }

    /// The triangle arrangement used by RTIndeX for a key located at
    /// `center`.
    ///
    /// The paper (Section 2.1) offsets the three corners by ±0.5 in different
    /// directions. We use the same idea but choose offsets such that the key
    /// point `center` lies *strictly inside* the triangle and the triangle's
    /// plane is transversal to both the x axis (range-lookup rays) and the
    /// z axis (perpendicular point-lookup rays). With the paper's literal
    /// corner choice, the perpendicular ray of Table 2 grazes the triangle
    /// boundary exactly at `t = tmax`, which our (and OptiX') exclusive
    /// interval semantics would drop — the offsets below avoid that corner
    /// case while preserving every property the index relies on:
    ///
    /// * a ray along +x at the key's y/z coordinates intersects the triangle
    ///   exactly at `x = center.x`,
    /// * a ray along +z at the key's x/y coordinates intersects the triangle
    ///   exactly at `z = center.z`,
    /// * the triangle is confined to `center ± half` on every axis, so rays
    ///   belonging to neighbouring keys can never intersect it.
    #[inline]
    pub fn key_triangle(center: Vec3f, half: f32) -> Self {
        Triangle::key_triangle_anisotropic(center, Vec3f::splat(half))
    }

    /// [`Triangle::key_triangle`] with separate half-extents per axis.
    ///
    /// The Extended key mode needs this: along x, adjacent keys are only a
    /// couple of ULPs apart, so the x half-extent must be derived with
    /// `nextafter` while y/z keep absolute offsets.
    #[inline]
    pub fn key_triangle_anisotropic(center: Vec3f, half: Vec3f) -> Self {
        Triangle::new(
            Vec3f::new(
                center.x - half.x,
                center.y - half.y,
                center.z - half.z * 0.5,
            ),
            Vec3f::new(
                center.x + half.x,
                center.y - half.y,
                center.z + half.z * 0.5,
            ),
            Vec3f::new(center.x, center.y + half.y, center.z),
        )
    }

    /// Tight bounding box of the triangle.
    #[inline]
    pub fn bounds(&self) -> Aabb {
        Aabb::from_point(self.v0)
            .union_point(self.v1)
            .union_point(self.v2)
    }

    /// Centroid of the triangle.
    #[inline]
    pub fn centroid(&self) -> Vec3f {
        (self.v0 + self.v1 + self.v2) / 3.0
    }

    /// (Unnormalised) geometric normal.
    #[inline]
    pub fn normal(&self) -> Vec3f {
        (self.v1 - self.v0).cross(self.v2 - self.v0)
    }

    /// Twice the triangle's area; zero for degenerate triangles.
    #[inline]
    pub fn double_area(&self) -> f32 {
        self.normal().length()
    }

    /// Möller–Trumbore ray/triangle intersection.
    ///
    /// Returns the hit parameter `t` when the ray crosses the triangle within
    /// the open interval `(ray.tmin, ray.tmax)`. Back-face hits are reported
    /// (OptiX culling is disabled in RTIndeX because rays may approach the
    /// triangles from either side).
    #[inline]
    pub fn intersect(&self, ray: &Ray) -> Option<Hit> {
        const EPS: f32 = 1e-9;
        let e1 = self.v1 - self.v0;
        let e2 = self.v2 - self.v0;
        let pvec = ray.direction.cross(e2);
        let det = e1.dot(pvec);
        if det.abs() < EPS {
            // Ray is (nearly) parallel to the triangle plane.
            return None;
        }
        let inv_det = 1.0 / det;
        let tvec = ray.origin - self.v0;
        let u = tvec.dot(pvec) * inv_det;
        if !(-EPS..=1.0 + EPS).contains(&u) {
            return None;
        }
        let qvec = tvec.cross(e1);
        let v = ray.direction.dot(qvec) * inv_det;
        if v < -EPS || u + v > 1.0 + EPS {
            return None;
        }
        let t = e2.dot(qvec) * inv_det;
        if ray.contains(t) {
            Some(Hit::new(t))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xy_triangle() -> Triangle {
        // Unit right triangle in the z = 0 plane.
        Triangle::new(
            Vec3f::new(0.0, 0.0, 0.0),
            Vec3f::new(1.0, 0.0, 0.0),
            Vec3f::new(0.0, 1.0, 0.0),
        )
    }

    #[test]
    fn bounds_and_centroid() {
        let t = xy_triangle();
        let b = t.bounds();
        assert_eq!(b.min, Vec3f::ZERO);
        assert_eq!(b.max, Vec3f::new(1.0, 1.0, 0.0));
        let c = t.centroid();
        assert!((c.x - 1.0 / 3.0).abs() < 1e-6);
        assert!((c.y - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(c.z, 0.0);
    }

    #[test]
    fn perpendicular_ray_hits() {
        let t = xy_triangle();
        let r = Ray::unbounded(Vec3f::new(0.25, 0.25, -1.0), Vec3f::new(0.0, 0.0, 1.0));
        let hit = t.intersect(&r).expect("hit");
        assert!((hit.t - 1.0).abs() < 1e-6);
    }

    #[test]
    fn perpendicular_ray_from_behind_hits() {
        let t = xy_triangle();
        let r = Ray::unbounded(Vec3f::new(0.25, 0.25, 1.0), Vec3f::new(0.0, 0.0, -1.0));
        assert!(t.intersect(&r).is_some(), "back-face culling must be off");
    }

    #[test]
    fn ray_misses_outside_triangle() {
        let t = xy_triangle();
        let r = Ray::unbounded(Vec3f::new(0.9, 0.9, -1.0), Vec3f::new(0.0, 0.0, 1.0));
        assert!(t.intersect(&r).is_none());
    }

    #[test]
    fn parallel_ray_misses() {
        let t = xy_triangle();
        let r = Ray::unbounded(Vec3f::new(-1.0, 0.25, 0.0), Vec3f::new(1.0, 0.0, 0.0));
        // The ray lies exactly in the triangle plane: OptiX does not report
        // such hits and neither do we.
        assert!(t.intersect(&r).is_none());
    }

    #[test]
    fn interval_clipping_excludes_hit() {
        let t = xy_triangle();
        let r = Ray::new(
            Vec3f::new(0.25, 0.25, -1.0),
            Vec3f::new(0.0, 0.0, 1.0),
            0.0,
            1.0, // hit would be exactly at t = 1.0, which is excluded
        );
        assert!(t.intersect(&r).is_none());
        let r2 = Ray::new(
            Vec3f::new(0.25, 0.25, -1.0),
            Vec3f::new(0.0, 0.0, 1.0),
            0.0,
            1.01,
        );
        assert!(t.intersect(&r2).is_some());
    }

    #[test]
    fn key_triangle_contains_its_key_point() {
        let center = Vec3f::new(42.0, 0.0, 0.0);
        let t = Triangle::key_triangle(center, 0.4);
        // A range-style ray ([42, 42]) fired along +x must hit it strictly
        // inside its interval.
        let range_ray = Ray::new(
            Vec3f::new(41.5, 0.0, 0.0),
            Vec3f::new(1.0, 0.0, 0.0),
            0.0,
            1.0,
        );
        let hit = t.intersect(&range_ray).expect("range ray hit");
        assert!(
            (hit.t - 0.5).abs() < 1e-5,
            "hit exactly at the key coordinate"
        );
        // A perpendicular point-lookup ray must hit it strictly inside (0, 1).
        let perp_ray = Ray::new(
            Vec3f::new(42.0, 0.0, -0.5),
            Vec3f::new(0.0, 0.0, 1.0),
            0.0,
            1.0,
        );
        let hit = t.intersect(&perp_ray).expect("perpendicular ray hit");
        assert!((hit.t - 0.5).abs() < 1e-5);
        // Rays belonging to neighbouring keys must miss it.
        let miss_perp = Ray::new(
            Vec3f::new(43.0, 0.0, -0.5),
            Vec3f::new(0.0, 0.0, 1.0),
            0.0,
            1.0,
        );
        assert!(t.intersect(&miss_perp).is_none());
        let miss_range = Ray::new(
            Vec3f::new(42.5, 0.0, 0.0),
            Vec3f::new(1.0, 0.0, 0.0),
            0.0,
            3.0,
        );
        assert!(
            t.intersect(&miss_range).is_none(),
            "range [43, 44] must not hit key 42"
        );
    }

    #[test]
    fn key_triangle_anisotropic_extents_confine_triangle() {
        let center = Vec3f::new(10.0, 5.0, -3.0);
        let half = Vec3f::new(0.1, 0.4, 0.2);
        let t = Triangle::key_triangle_anisotropic(center, half);
        let b = t.bounds();
        assert!(b.min.x >= center.x - half.x - 1e-6);
        assert!(b.max.x <= center.x + half.x + 1e-6);
        assert!(b.min.y >= center.y - half.y - 1e-6);
        assert!(b.max.y <= center.y + half.y + 1e-6);
        assert!(b.min.z >= center.z - half.z - 1e-6);
        assert!(b.max.z <= center.z + half.z + 1e-6);
    }

    #[test]
    fn double_area_of_degenerate_triangle_is_zero() {
        let t = Triangle::new(Vec3f::ZERO, Vec3f::ZERO, Vec3f::new(1.0, 0.0, 0.0));
        assert_eq!(t.double_area(), 0.0);
        assert_eq!(xy_triangle().double_area(), 1.0);
    }
}
