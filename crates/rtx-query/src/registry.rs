//! The backend registry: build any index by name.
//!
//! `rtx-query` cannot depend on the backend crates (they depend on it), so
//! the registry is populated at runtime: each backend crate exposes a
//! `register_*` function that installs its builder closures, and the
//! harness composes them into the default registry holding all five
//! backends.
//!
//! # Name grammar
//!
//! A backend name resolves in four steps, each handling one production of
//! the grammar:
//!
//! ```text
//! name        := backend [builder] [shard] [schema] [durability]
//! backend     := "RX" | "HT" | "B+" | "SA" | "RXD" | <any registered name>
//! builder     := ":sah" | ":lbvh"
//! shard       := "@" <count> [":hash" | ":range"]
//! schema      := "{" column ("," column)* "}"
//! column      := "u8" | "u16" | "u32" | "u64" | "i64" | "str" <bytes>
//! durability  := "+wal:" <path>
//! ```
//!
//! −1. **key schema** — a brace-enclosed column list anywhere in the name
//!    (canonically after the shard production:
//!    `"RX:sah@4:hash{u32,u32,str16}"`) is stripped *first* and wraps the
//!    whole resolution in a typed composite-key layer (see
//!    [`crate::composite`] and [`KeySchema`]); the
//!    remaining productions resolve below it, so sharding and durability
//!    operate on the *encoded* key space. A schema set programmatically via
//!    [`IndexSpec::with_schema`] behaves identically;
//! 0. **durability** — a trailing `"+wal:<path>"` (the outermost
//!    production: `"RXD+wal:/data/ix"`, `"RXD:sah@4:hash+wal:/data/ix"`)
//!    strips the suffix, records the path in [`IndexSpec::durability`] and
//!    delegates the whole build to the installed durable factory (see
//!    [`Registry::set_durable_builder`]; `rtx-durable` provides the
//!    canonical factory via its `install_durability` function), which
//!    resolves the base name recursively and wraps it in a WAL-backed
//!    persistent index;
//! 1. **verbatim** — a name registered exactly always wins (`"RX"`);
//! 2. **sharding** — a name containing `@` parses as a
//!    [`ShardSpec`] (`"RX@8"`, `"SA@4:range"`) when a sharding layer is
//!    installed; the part before `@` resolves recursively, so builder
//!    suffixes compose with sharding (`"RX:sah@8:range"`);
//! 3. **builder selection** — a `:sah` / `:lbvh` suffix
//!    ([`parse_builder_name`]) selects the acceleration-structure builder
//!    and resolves the rest of the name recursively: `"RX:lbvh"`,
//!    `"RXD:sah"`. The selection rides in [`IndexSpec::builder`]; backends
//!    without a BVH (HT, B+, SA) ignore it.
//!
//! # Table specs
//!
//! The table layer reuses this grammar verbatim: every
//! [`IndexDef::spec`](crate::table::IndexDef) of a
//! [`TableSchema`](crate::table::TableSchema) is a name in the grammar
//! above, resolved through [`Registry::build`] /
//! [`Registry::build_updatable`] each time the table (re)builds that
//! index. One table can therefore mix `"HT"`, `"RX:sah@4:hash"` and
//! `"RXD+wal:<path>"` across its columns — anything the registry resolves
//! is a valid per-column index spec. Use [`Registry::names`] to enumerate
//! the candidate backends instead of hard-coding them.

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use gpu_device::Device;
use rtx_bvh::BuilderKind;

use crate::composite;
use crate::error::IndexError;
use crate::index::{SecondaryIndex, UpdatableIndex};
use crate::keys::{KeySchema, KeyTuple};
use crate::shard::{Partitioning, ShardSpec};

/// What to build an index over: the device and the column pair. The
/// position of a key in `keys` is its rowID; `values`, when present, must
/// have the same length and enables value-fetching batches.
///
/// The value column is held behind an [`Arc`] so that building several
/// backends from one spec (e.g. `Registry::build_supported`) shares a
/// single copy instead of duplicating the column per adapter.
#[derive(Debug, Clone)]
pub struct IndexSpec<'a> {
    /// The (simulated) GPU the index lives on.
    pub device: &'a Device,
    /// The indexed key column.
    pub keys: &'a [u64],
    /// The optional value column, shared across every backend built from
    /// this spec.
    pub values: Option<Arc<[u64]>>,
    /// Acceleration-structure builder override, set by a `:sah` / `:lbvh`
    /// name suffix (see the [module docs](self) for the grammar) or by
    /// [`IndexSpec::with_builder`]. `None` keeps the backend's configured
    /// default; backends without a BVH ignore it.
    pub builder: Option<BuilderKind>,
    /// Durability request, set by a trailing `"+wal:<path>"` name suffix
    /// (the outermost grammar production — see the [module docs](self)).
    /// The durable factory reads the path; backends that see it set prepare
    /// themselves for an external durability wrapper (e.g. RXD disables
    /// autonomous background-compaction swaps so the wrapper controls the
    /// exact swap points it logs).
    pub durability: Option<DurabilitySpec>,
    /// Typed key schema, set by a `"{u32,u32,str16}"` brace production in
    /// the name or by [`IndexSpec::with_schema`]. With a schema present the
    /// registry wraps the build in a composite-key layer (see the
    /// [module docs](self) grammar); without one the spec describes the
    /// legacy raw-`u64` key column.
    pub key_schema: Option<KeySchema>,
    /// Typed key tuples, one per row, for composite builds (the typed
    /// counterpart of `keys`; exactly one of the two may be non-empty).
    /// Required for wide multi-limb schemas, whose raw `u64` image is
    /// dictionary-assigned; optional for single-limb schemas, where raw
    /// `keys` are accepted as pre-encoded. Shared behind an [`Arc`] like
    /// the value column.
    pub rows: Option<Arc<[KeyTuple]>>,
}

/// The durability request riding in [`IndexSpec::durability`]: where the
/// WAL + snapshot directory lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilitySpec {
    /// Directory holding the WAL segments, snapshots and (for sharded
    /// indexes) the manifest. Created on first use.
    pub path: PathBuf,
}

impl DurabilitySpec {
    /// A durability request rooted at `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        DurabilitySpec { path: path.into() }
    }
}

impl<'a> IndexSpec<'a> {
    /// A spec over a key column without values.
    pub fn keys_only(device: &'a Device, keys: &'a [u64]) -> Self {
        IndexSpec {
            device,
            keys,
            values: None,
            builder: None,
            durability: None,
            key_schema: None,
            rows: None,
        }
    }

    /// A spec over a `(keys, values)` column pair. The value column is
    /// copied once, here; every backend built from this spec shares it.
    pub fn with_values(device: &'a Device, keys: &'a [u64], values: &[u64]) -> Self {
        IndexSpec {
            device,
            keys,
            values: Some(Arc::from(values)),
            builder: None,
            durability: None,
            key_schema: None,
            rows: None,
        }
    }

    /// A spec over typed key tuples without values: each row is one tuple
    /// matching `schema` column for column (the composite counterpart of
    /// [`keys_only`](IndexSpec::keys_only)).
    pub fn typed(device: &'a Device, schema: KeySchema, rows: &[KeyTuple]) -> Self {
        IndexSpec {
            device,
            keys: &[],
            values: None,
            builder: None,
            durability: None,
            key_schema: Some(schema),
            rows: Some(Arc::from(rows)),
        }
    }

    /// A spec over typed key tuples with a value column (the composite
    /// counterpart of [`with_values`](IndexSpec::with_values)).
    pub fn typed_with_values(
        device: &'a Device,
        schema: KeySchema,
        rows: &[KeyTuple],
        values: &[u64],
    ) -> Self {
        IndexSpec {
            device,
            keys: &[],
            values: Some(Arc::from(values)),
            builder: None,
            durability: None,
            key_schema: Some(schema),
            rows: Some(Arc::from(rows)),
        }
    }

    /// Returns the spec with a typed key schema attached (the programmatic
    /// equivalent of the `"{...}"` brace production in a name). When a name
    /// also carries a brace production the two must agree.
    pub fn with_schema(mut self, schema: KeySchema) -> Self {
        self.key_schema = Some(schema);
        self
    }

    /// Returns the spec with an explicit builder selection (the
    /// programmatic equivalent of the `:sah` / `:lbvh` name suffix).
    pub fn with_builder(mut self, builder: BuilderKind) -> Self {
        self.builder = Some(builder);
        self
    }

    /// Returns the spec with a durability request attached (how the
    /// `"+wal:<path>"` name production records its path). Building a
    /// backend directly from such a spec does *not* wrap it — name
    /// resolution through the `+wal:` suffix (or the `rtx-durable` API)
    /// does; a bare backend seeing the request merely prepares itself for
    /// an external durability wrapper.
    pub fn with_durability(mut self, durability: DurabilitySpec) -> Self {
        self.durability = Some(durability);
        self
    }

    /// The value column as a slice, if present.
    pub fn values(&self) -> Option<&[u64]> {
        self.values.as_deref()
    }

    /// Number of rows the spec describes: typed tuples when present,
    /// otherwise raw keys.
    pub fn row_count(&self) -> usize {
        match &self.rows {
            Some(rows) => rows.len(),
            None => self.keys.len(),
        }
    }

    fn validate(&self) -> Result<(), IndexError> {
        if self.rows.is_some() && !self.keys.is_empty() {
            return Err(IndexError::Backend {
                backend: "spec".into(),
                message: "a spec may carry raw keys or typed rows, not both".to_string(),
            });
        }
        if let Some(values) = &self.values {
            if values.len() != self.row_count() {
                return Err(IndexError::ValueColumnLengthMismatch {
                    expected: self.row_count(),
                    actual: values.len(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for IndexSpec<'_> {
    /// The grammar productions riding this spec — builder suffix, key
    /// schema, durability — in canonical order. Append to a backend name
    /// to reprint a full spec name for logs or `ExplainPlan` (or go
    /// through [`SpecName`] to round-trip shard counts too).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(builder) = self.builder {
            write!(f, ":{}", builder_suffix(builder))?;
        }
        if let Some(schema) = &self.key_schema {
            write!(f, "{schema}")?;
        }
        if let Some(durability) = &self.durability {
            write!(f, "+wal:{}", durability.path.display())?;
        }
        Ok(())
    }
}

/// The name suffix of a builder selection (inverse of
/// [`parse_builder_name`]).
fn builder_suffix(builder: BuilderKind) -> &'static str {
    match builder {
        BuilderKind::Sah => "sah",
        BuilderKind::Lbvh => "lbvh",
    }
}

/// A fully parsed spec name: every production of the registry grammar as a
/// structured value, with a [`Display`](fmt::Display) that reprints the
/// canonical name — so `SpecName::parse(s).to_string()` resolves to the
/// same index as `s` for every grammatical name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecName {
    /// The registered backend name (`"RX"`, `"HT"`, ...).
    pub backend: String,
    /// Builder selection (`":sah"` / `":lbvh"`), if any.
    pub builder: Option<BuilderKind>,
    /// Shard count and partitioning (`"@4:range"`), if sharded.
    pub shard: Option<(usize, Partitioning)>,
    /// Typed key schema (`"{u32,u32,str16}"`), if composite.
    pub schema: Option<KeySchema>,
    /// WAL directory (`"+wal:<path>"`), if durable.
    pub wal: Option<PathBuf>,
}

impl SpecName {
    /// Parses a name of the registry grammar into its productions. Accepts
    /// every order [`Registry::build`] accepts (builder before or after the
    /// shard production, schema anywhere); [`Display`](fmt::Display)
    /// reprints the canonical order.
    pub fn parse(name: &str) -> Result<SpecName, IndexError> {
        let (rest, wal) = match parse_durable_name(name) {
            Some((base, path)) => (base.to_string(), Some(PathBuf::from(path))),
            None => (name.to_string(), None),
        };
        let (rest, schema) = match composite::parse_schema_name(&rest)? {
            Some((rest, schema)) => (rest, Some(schema)),
            None => (rest, None),
        };
        let (rest, shard) = match ShardSpec::parse(&rest) {
            Some(spec) => (spec.backend.clone(), Some((spec.shards, spec.partitioning))),
            None => (rest, None),
        };
        let (backend, builder, shard) = match parse_builder_name(&rest) {
            // The builder suffix may follow the shard production
            // ("RX@4:sah"); in that case the shard spec hides inside the
            // builder's base.
            Some((base, kind)) => match (&shard, ShardSpec::parse(base)) {
                (None, Some(spec)) => (
                    spec.backend.clone(),
                    Some(kind),
                    Some((spec.shards, spec.partitioning)),
                ),
                _ => (base.to_string(), Some(kind), shard),
            },
            None => (rest, None, shard),
        };
        if backend.is_empty() {
            return Err(IndexError::Backend {
                backend: name.to_string().into(),
                message: "a spec name needs a backend before its suffix productions".to_string(),
            });
        }
        Ok(SpecName {
            backend,
            builder,
            shard,
            schema,
            wal,
        })
    }
}

impl fmt::Display for SpecName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.backend)?;
        if let Some(builder) = self.builder {
            write!(f, ":{}", builder_suffix(builder))?;
        }
        if let Some((count, partitioning)) = self.shard {
            write!(f, "@{count}")?;
            // Hash is the default and prints bare, matching `ShardSpec`.
            if partitioning == Partitioning::Range {
                write!(f, ":range")?;
            }
        }
        if let Some(schema) = &self.schema {
            write!(f, "{schema}")?;
        }
        if let Some(wal) = &self.wal {
            write!(f, "+wal:{}", wal.display())?;
        }
        Ok(())
    }
}

/// Builder of a read-only backend.
pub type IndexBuilder =
    Box<dyn Fn(&IndexSpec<'_>) -> Result<Box<dyn SecondaryIndex>, IndexError> + Send + Sync>;

/// Builder of an updatable backend.
pub type UpdatableBuilder =
    Box<dyn Fn(&IndexSpec<'_>) -> Result<Box<dyn UpdatableIndex>, IndexError> + Send + Sync>;

/// Factory resolving a parsed [`ShardSpec`] (e.g. `"RX@8"`) into a sharded
/// read-only backend. Receives the registry so it can build the inner
/// backends by name.
pub type ShardedBuilder = Box<
    dyn Fn(&Registry, &ShardSpec, &IndexSpec<'_>) -> Result<Box<dyn SecondaryIndex>, IndexError>
        + Send
        + Sync,
>;

/// Factory resolving a parsed [`ShardSpec`] into a sharded *updatable*
/// backend (every shard must be updatable).
pub type UpdatableShardedBuilder = Box<
    dyn Fn(&Registry, &ShardSpec, &IndexSpec<'_>) -> Result<Box<dyn UpdatableIndex>, IndexError>
        + Send
        + Sync,
>;

/// Factory resolving a `"+wal:<path>"`-suffixed name into a WAL-backed
/// durable index. Receives the registry, the *base* name (everything
/// before `+wal:`) and a spec whose [`IndexSpec::durability`] carries the
/// path; it resolves the base recursively and wraps it.
pub type DurableBuilder = Box<
    dyn Fn(&Registry, &str, &IndexSpec<'_>) -> Result<Box<dyn UpdatableIndex>, IndexError>
        + Send
        + Sync,
>;

/// Builds any registered backend by name.
#[derive(Default)]
pub struct Registry {
    builders: BTreeMap<String, IndexBuilder>,
    updatable: BTreeMap<String, UpdatableBuilder>,
    sharded: Option<ShardedBuilder>,
    sharded_updatable: Option<UpdatableShardedBuilder>,
    durable: Option<DurableBuilder>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or replaces) the builder for `name`.
    pub fn register<F>(&mut self, name: &str, builder: F)
    where
        F: Fn(&IndexSpec<'_>) -> Result<Box<dyn SecondaryIndex>, IndexError>
            + Send
            + Sync
            + 'static,
    {
        self.builders.insert(name.to_string(), Box::new(builder));
    }

    /// Registers (or replaces) the *updatable* builder for `name`, and a
    /// read-only builder alongside it (an updatable index is a secondary
    /// index, so `build` works on it too).
    pub fn register_updatable<F>(&mut self, name: &str, builder: F)
    where
        F: Fn(&IndexSpec<'_>) -> Result<Box<dyn UpdatableIndex>, IndexError>
            + Send
            + Sync
            + Clone
            + 'static,
    {
        let as_static = builder.clone();
        self.register(name, move |spec| {
            as_static(spec).map(|ix| ix as Box<dyn SecondaryIndex>)
        });
        self.updatable.insert(name.to_string(), Box::new(builder));
    }

    /// Installs the sharded-backend factories: with them in place, any name
    /// that is not registered verbatim but parses as a [`ShardSpec`]
    /// (`"RX@8"`, `"SA@4:range"`, …) builds a sharded backend over the
    /// registry's own inner builders. `rtx-shard` provides the canonical
    /// factories via its `install_sharding` function.
    pub fn set_sharded_builders(
        &mut self,
        read_only: ShardedBuilder,
        updatable: UpdatableShardedBuilder,
    ) {
        self.sharded = Some(read_only);
        self.sharded_updatable = Some(updatable);
    }

    /// True once [`set_sharded_builders`](Registry::set_sharded_builders)
    /// has installed a sharding layer.
    pub fn supports_sharding(&self) -> bool {
        self.sharded.is_some()
    }

    /// Installs the durable-index factory: with it in place, any name with
    /// a trailing `"+wal:<path>"` builds a WAL-backed persistent wrapper
    /// over the base name's backend. `rtx-durable` provides the canonical
    /// factory via its `install_durability` function.
    pub fn set_durable_builder(&mut self, durable: DurableBuilder) {
        self.durable = Some(durable);
    }

    /// True once [`set_durable_builder`](Registry::set_durable_builder)
    /// has installed a durability layer.
    pub fn supports_durability(&self) -> bool {
        self.durable.is_some()
    }

    /// Every registered backend name, sorted.
    pub fn backends(&self) -> Vec<&str> {
        self.builders.keys().map(String::as_str).collect()
    }

    /// Every registered updatable backend name, sorted.
    pub fn updatable_backends(&self) -> Vec<&str> {
        self.updatable.keys().map(String::as_str).collect()
    }

    /// Every registered backend name as an owned, sorted list — the
    /// enumeration planners and examples iterate instead of hard-coding
    /// backend names (the borrowing equivalent is
    /// [`backends`](Registry::backends)).
    pub fn names(&self) -> Vec<String> {
        self.builders.keys().cloned().collect()
    }

    /// Builds the backend registered under `name` over `spec`.
    ///
    /// A `"{...}"` key-schema production in the name (or a schema attached
    /// via [`IndexSpec::with_schema`]) wraps the whole build in a typed
    /// composite-key layer first (see the [module docs](self) grammar). A
    /// name the registry does not know verbatim is tried as a sharded spec
    /// (`"RX@8"`, see [`ShardSpec::parse`]) when a sharding layer is
    /// installed, then as a builder-suffixed name (`"RX:lbvh"`, see
    /// [`parse_builder_name`]). Truly unknown names fail with an error
    /// listing every registered backend.
    pub fn build(
        &self,
        name: &str,
        spec: &IndexSpec<'_>,
    ) -> Result<Box<dyn SecondaryIndex>, IndexError> {
        spec.validate()?;
        match self.extract_schema(name, spec)? {
            Some((rest, schema)) => composite::build_read_only(self, &rest, spec, schema),
            None => self.build_base(name, spec),
        }
    }

    /// The schema-free resolution core behind [`build`](Registry::build):
    /// durability, verbatim, sharding, then builder-suffix recursion. The
    /// composite layer calls this with a schema-stripped name and spec so
    /// the inner backends never re-wrap.
    pub(crate) fn build_base(
        &self,
        name: &str,
        spec: &IndexSpec<'_>,
    ) -> Result<Box<dyn SecondaryIndex>, IndexError> {
        if let Some((base, path)) = parse_durable_name(name) {
            return self
                .build_durable(base, path, spec)
                .map(|ix| ix as Box<dyn SecondaryIndex>);
        }
        if let Some(builder) = self.builders.get(name) {
            return builder(spec);
        }
        if let Some(shard_spec) = ShardSpec::parse(name) {
            let factory = self.sharded.as_ref().ok_or_else(|| self.unsharded(name))?;
            self.validate_shard_spec(&shard_spec)?;
            return factory(self, &shard_spec, spec);
        }
        // At most one builder suffix resolves: with a selection already in
        // the spec, a further suffix (e.g. "RX:lbvh:sah") falls through to
        // the unknown-backend error instead of silently picking one.
        if spec.builder.is_none() {
            if let Some((base, kind)) = parse_builder_name(name) {
                return self.build_base(base, &spec.clone().with_builder(kind));
            }
        }
        Err(self.unknown(name))
    }

    /// Builds the updatable backend registered under `name` over `spec`,
    /// resolving key schemas (`"RXD{u32,u32}"`), sharded specs (`"RXD@4"`)
    /// and builder suffixes (`"RXD:sah"`) like [`build`](Registry::build)
    /// does — every shard of an updatable sharded backend must itself be
    /// updatable.
    pub fn build_updatable(
        &self,
        name: &str,
        spec: &IndexSpec<'_>,
    ) -> Result<Box<dyn UpdatableIndex>, IndexError> {
        spec.validate()?;
        match self.extract_schema(name, spec)? {
            Some((rest, schema)) => composite::build_updatable(self, &rest, spec, schema),
            None => self.build_base_updatable(name, spec),
        }
    }

    /// Schema-free core behind [`build_updatable`](Registry::build_updatable)
    /// (see [`build_base`](Registry::build_base)).
    pub(crate) fn build_base_updatable(
        &self,
        name: &str,
        spec: &IndexSpec<'_>,
    ) -> Result<Box<dyn UpdatableIndex>, IndexError> {
        if let Some((base, path)) = parse_durable_name(name) {
            return self.build_durable(base, path, spec);
        }
        if let Some(builder) = self.updatable.get(name) {
            return builder(spec);
        }
        if !self.builders.contains_key(name) {
            if let Some(shard_spec) = ShardSpec::parse(name) {
                let factory = self
                    .sharded_updatable
                    .as_ref()
                    .ok_or_else(|| self.unsharded(name))?;
                self.validate_shard_spec(&shard_spec)?;
                return factory(self, &shard_spec, spec);
            }
            if spec.builder.is_none() {
                if let Some((base, kind)) = parse_builder_name(name) {
                    return self.build_base_updatable(base, &spec.clone().with_builder(kind));
                }
            }
        }
        Err(IndexError::UnknownBackend {
            name: name.to_string(),
            known: self
                .updatable_backends()
                .iter()
                .map(|s| s.to_string())
                .collect(),
        })
    }

    /// Resolves the key-schema production for a build: a brace production
    /// in the name wins (and must agree with any schema riding the spec);
    /// otherwise the spec's own schema applies to the whole name. Typed
    /// rows without any schema are an error — they cannot be interpreted.
    fn extract_schema(
        &self,
        name: &str,
        spec: &IndexSpec<'_>,
    ) -> Result<Option<(String, KeySchema)>, IndexError> {
        if let Some((rest, schema)) = composite::parse_schema_name(name)? {
            if let Some(attached) = &spec.key_schema {
                if *attached != schema {
                    return Err(IndexError::Backend {
                        backend: name.to_string().into(),
                        message: format!(
                            "the name carries schema {schema} but the spec carries {attached}; \
                             they must agree"
                        ),
                    });
                }
            }
            return Ok(Some((rest, schema)));
        }
        if let Some(schema) = &spec.key_schema {
            return Ok(Some((name.to_string(), schema.clone())));
        }
        if spec.rows.is_some() {
            return Err(IndexError::Backend {
                backend: name.to_string().into(),
                message: "typed rows need a key schema (a {...} name production or \
                          IndexSpec::with_schema)"
                    .to_string(),
            });
        }
        Ok(None)
    }

    /// Resolves a stripped `"+wal:"` production: records the path in the
    /// spec and delegates to the installed durable factory.
    fn build_durable(
        &self,
        base: &str,
        path: &str,
        spec: &IndexSpec<'_>,
    ) -> Result<Box<dyn UpdatableIndex>, IndexError> {
        let factory = self.durable.as_ref().ok_or_else(|| IndexError::Backend {
            backend: format!("{base}+wal:{path}").into(),
            message: format!(
                "{base:?} requests durability but no durability layer is installed in this \
                 registry (known backends: {})",
                self.backends().join(", ")
            ),
        })?;
        if base.is_empty() || path.is_empty() {
            return Err(IndexError::Backend {
                backend: format!("{base}+wal:{path}").into(),
                message: "a durable spec needs both a backend name and a path \
                          (\"<backend>+wal:<path>\")"
                    .to_string(),
            });
        }
        let spec = spec.clone().with_durability(DurabilitySpec::new(path));
        factory(self, base, &spec)
    }

    fn validate_shard_spec(&self, spec: &ShardSpec) -> Result<(), IndexError> {
        if spec.shards == 0 {
            return Err(IndexError::Backend {
                backend: spec.name().into(),
                message: "shard count must be at least 1".to_string(),
            });
        }
        Ok(())
    }

    fn unsharded(&self, name: &str) -> IndexError {
        IndexError::Backend {
            backend: name.to_string().into(),
            message: format!(
                "{name:?} is a sharded spec but no sharding layer is installed in this \
                 registry (known backends: {})",
                self.backends().join(", ")
            ),
        }
    }

    /// Builds every registered backend that supports the spec's key set, in
    /// name order. Backends reporting
    /// [`IndexError::UnsupportedKeySet`] are skipped (the way the paper
    /// omits the B+-tree from duplicate-key and 64-bit experiments); any
    /// other build failure propagates.
    pub fn build_supported(
        &self,
        spec: &IndexSpec<'_>,
    ) -> Result<Vec<Box<dyn SecondaryIndex>>, IndexError> {
        self.build_named(self.backends().as_slice(), spec)
    }

    /// Builds the named backends (in the given order) over `spec`, skipping
    /// those that report [`IndexError::UnsupportedKeySet`].
    pub fn build_named(
        &self,
        names: &[&str],
        spec: &IndexSpec<'_>,
    ) -> Result<Vec<Box<dyn SecondaryIndex>>, IndexError> {
        let mut built = Vec::with_capacity(names.len());
        for name in names {
            match self.build(name, spec) {
                Ok(ix) => built.push(ix),
                Err(err) if err.is_unsupported_key_set() => continue,
                Err(err) => return Err(err),
            }
        }
        Ok(built)
    }

    fn unknown(&self, name: &str) -> IndexError {
        IndexError::UnknownBackend {
            name: name.to_string(),
            known: self.backends().iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// Splits the durability suffix off a backend name: `"RXD+wal:/data/ix"` →
/// `("RXD", "/data/ix")`, `"RXD:sah@4:hash+wal:/p"` →
/// `("RXD:sah@4:hash", "/p")`. The *first* `"+wal:"` splits, so the base
/// name can never contain the marker. Returns `None` for names without it.
pub fn parse_durable_name(name: &str) -> Option<(&str, &str)> {
    name.split_once("+wal:")
}

/// Parses the builder-selection suffix of a backend name: `"RX:lbvh"` →
/// `("RX", BuilderKind::Lbvh)`, `"RX:sah@8:range"` → shard handling strips
/// nothing here, so the suffix must be last — see the [module docs](self)
/// grammar. Returns `None` for names without a recognised suffix.
pub fn parse_builder_name(name: &str) -> Option<(&str, BuilderKind)> {
    let (base, suffix) = name.rsplit_once(':')?;
    if base.is_empty() {
        return None;
    }
    match suffix {
        "sah" => Some((base, BuilderKind::Sah)),
        "lbvh" => Some((base, BuilderKind::Lbvh)),
        _ => None,
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("backends", &self.backends())
            .field("updatable_backends", &self.updatable_backends())
            .field("supports_sharding", &self.supports_sharding())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::QueryBatch;
    use crate::types::{BatchOutcome, Capabilities, IndexBuildMetrics, LookupResult};

    /// A stub backend whose lookups always miss.
    struct NullIndex {
        keys: usize,
    }

    impl SecondaryIndex for NullIndex {
        fn name(&self) -> &str {
            "NULL"
        }
        fn key_count(&self) -> usize {
            self.keys
        }
        fn memory_bytes(&self) -> u64 {
            0
        }
        fn build_metrics(&self) -> IndexBuildMetrics {
            IndexBuildMetrics::default()
        }
        fn capabilities(&self) -> Capabilities {
            Capabilities::read_only()
        }
        fn has_value_column(&self) -> bool {
            false
        }
        fn point_chunk(&self, q: &[u64], _f: bool) -> Result<BatchOutcome, IndexError> {
            Ok(BatchOutcome {
                results: vec![LookupResult::miss(); q.len()],
                ..Default::default()
            })
        }
        fn range_chunk(&self, r: &[(u64, u64)], _f: bool) -> Result<BatchOutcome, IndexError> {
            Ok(BatchOutcome {
                results: vec![LookupResult::miss(); r.len()],
                ..Default::default()
            })
        }
    }

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register("NULL", |spec| {
            Ok(Box::new(NullIndex {
                keys: spec.keys.len(),
            }) as Box<dyn SecondaryIndex>)
        });
        r.register("PICKY", |_spec| {
            Err(IndexError::UnsupportedKeySet {
                backend: "PICKY".into(),
                reason: "never supported".into(),
            })
        });
        r
    }

    #[test]
    fn build_by_name_and_unknown_backend() {
        let device = Device::default_eval();
        let r = registry();
        assert_eq!(r.backends(), vec!["NULL", "PICKY"]);
        let ix = r
            .build("NULL", &IndexSpec::keys_only(&device, &[1, 2, 3]))
            .unwrap();
        assert_eq!(ix.key_count(), 3);
        assert_eq!(
            ix.execute(&QueryBatch::new().point(1)).unwrap().hit_count(),
            0
        );

        let err = r
            .build("XX", &IndexSpec::keys_only(&device, &[]))
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, IndexError::UnknownBackend { .. }));
        assert!(
            err.to_string().contains("NULL") && err.to_string().contains("PICKY"),
            "unknown-backend errors list every registered backend: {err}"
        );
    }

    #[test]
    fn names_returns_owned_sorted_backend_names() {
        let mut r = registry();
        assert_eq!(r.names(), vec!["NULL".to_string(), "PICKY".to_string()]);
        assert_eq!(
            r.names(),
            r.backends()
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        );
        // Updatable registrations appear too (they register a read-only
        // builder alongside), and the list stays sorted.
        r.register_updatable("AAA", |spec| {
            let keys = spec.keys.len();
            Err::<Box<dyn UpdatableIndex>, _>(IndexError::Backend {
                backend: "AAA".into(),
                message: format!("{keys} keys"),
            })
        });
        assert_eq!(r.names(), vec!["AAA", "NULL", "PICKY"]);
    }

    #[test]
    fn shard_specs_without_a_sharding_layer_fail_with_guidance() {
        let device = Device::default_eval();
        let r = registry();
        assert!(!r.supports_sharding());
        let spec = IndexSpec::keys_only(&device, &[1]);
        let err = r.build("NULL@4", &spec).map(|_| ()).unwrap_err();
        assert!(
            err.to_string().contains("no sharding layer")
                && err.to_string().contains("NULL, PICKY"),
            "{err}"
        );
        let err = r.build_updatable("NULL@4", &spec).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("no sharding layer"), "{err}");
    }

    #[test]
    fn installed_sharded_builders_resolve_shard_specs() {
        let mut r = registry();
        r.set_sharded_builders(
            Box::new(|registry, shard_spec, spec| {
                // A degenerate "sharded" factory: builds the inner backend
                // once; enough to prove routing, recursion and validation.
                registry.build(&shard_spec.backend, spec)
            }),
            Box::new(|_, shard_spec, _| {
                Err(IndexError::Backend {
                    backend: shard_spec.name().into(),
                    message: "updatable shards unsupported here".into(),
                })
            }),
        );
        assert!(r.supports_sharding());
        let device = Device::default_eval();
        let spec = IndexSpec::keys_only(&device, &[1, 2]);
        let ix = r.build("NULL@4", &spec).unwrap();
        assert_eq!(ix.key_count(), 2);

        // Unknown inner backends surface the full backend listing.
        let err = r.build("XX@4", &spec).map(|_| ()).unwrap_err();
        assert!(matches!(err, IndexError::UnknownBackend { .. }), "{err}");
        assert!(err.to_string().contains("NULL"));

        // A zero shard count is rejected before the factory runs.
        let err = r.build("NULL@0", &spec).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("at least 1"), "{err}");

        // Exact registrations always win over shard-spec parsing.
        r.register("NULL@4", |spec| {
            Ok(Box::new(NullIndex {
                keys: spec.keys.len() + 100,
            }) as Box<dyn SecondaryIndex>)
        });
        assert_eq!(r.build("NULL@4", &spec).unwrap().key_count(), 102);
    }

    #[test]
    fn builder_suffixes_parse_and_ride_the_spec() {
        assert_eq!(parse_builder_name("RX:sah"), Some(("RX", BuilderKind::Sah)));
        assert_eq!(
            parse_builder_name("RX:lbvh"),
            Some(("RX", BuilderKind::Lbvh))
        );
        assert_eq!(
            parse_builder_name("RX@8:sah"),
            Some(("RX@8", BuilderKind::Sah))
        );
        assert_eq!(parse_builder_name("RX"), None);
        assert_eq!(parse_builder_name("RX:fast"), None);
        assert_eq!(parse_builder_name(":sah"), None);

        // A registry backend observes the selection through the spec.
        let mut r = Registry::new();
        r.register("PROBE", |spec| {
            Ok(Box::new(NullIndex {
                keys: match spec.builder {
                    Some(BuilderKind::Sah) => 1,
                    Some(BuilderKind::Lbvh) => 2,
                    None => 0,
                },
            }) as Box<dyn SecondaryIndex>)
        });
        let device = Device::default_eval();
        let spec = IndexSpec::keys_only(&device, &[]);
        assert_eq!(r.build("PROBE", &spec).unwrap().key_count(), 0);
        assert_eq!(r.build("PROBE:sah", &spec).unwrap().key_count(), 1);
        assert_eq!(r.build("PROBE:lbvh", &spec).unwrap().key_count(), 2);
        // Unknown bases still fail with the full backend listing.
        let err = r.build("XX:sah", &spec).map(|_| ()).unwrap_err();
        assert!(matches!(err, IndexError::UnknownBackend { .. }), "{err}");
        // Only one builder suffix may resolve: a second is rejected, never
        // silently dropped.
        let err = r.build("PROBE:lbvh:sah", &spec).map(|_| ()).unwrap_err();
        assert!(matches!(err, IndexError::UnknownBackend { .. }), "{err}");
        let err = r
            .build_updatable("PROBE:lbvh:sah", &spec)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, IndexError::UnknownBackend { .. }), "{err}");

        // The suffix composes with sharding: the inner resolution sees the
        // builder via the spec handed to the factory.
        r.set_sharded_builders(
            Box::new(|registry, shard_spec, spec| registry.build(&shard_spec.backend, spec)),
            Box::new(|_, shard_spec, _| {
                Err(IndexError::Backend {
                    backend: shard_spec.name().into(),
                    message: "unused".into(),
                })
            }),
        );
        assert_eq!(r.build("PROBE:sah@4", &spec).unwrap().key_count(), 1);
        assert_eq!(r.build("PROBE@4:sah", &spec).unwrap().key_count(), 1);
        assert_eq!(r.build("PROBE@4:range:lbvh", &spec).unwrap().key_count(), 2);
    }

    #[test]
    fn durable_suffix_routes_to_the_installed_factory() {
        assert_eq!(
            parse_durable_name("RXD+wal:/tmp/x"),
            Some(("RXD", "/tmp/x"))
        );
        assert_eq!(
            parse_durable_name("RXD:sah@4:hash+wal:/p"),
            Some(("RXD:sah@4:hash", "/p"))
        );
        assert_eq!(parse_durable_name("RXD"), None);

        let mut r = registry();
        let device = Device::default_eval();
        let spec = IndexSpec::keys_only(&device, &[1]);
        assert!(!r.supports_durability());
        let err = r.build("NULL+wal:/tmp/x", &spec).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("no durability layer"), "{err}");

        // A probe factory: verifies the stripped base name and the path
        // riding in the spec reach the factory intact.
        r.set_durable_builder(Box::new(|_, base, spec| {
            let d = spec.durability.as_ref().expect("durability rides the spec");
            Err(IndexError::Backend {
                backend: base.into(),
                message: format!("wal at {}", d.path.display()),
            })
        }));
        assert!(r.supports_durability());
        let err = r
            .build_updatable("NULL+wal:/tmp/x", &spec)
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("wal at /tmp/x"), "{err}");
        let err = r.build("NULL+wal:/tmp/x", &spec).map(|_| ()).unwrap_err();
        assert!(matches!(err, IndexError::Backend { backend, .. } if &*backend == "NULL"));

        // Degenerate specs are rejected before the factory runs.
        let err = r.build("NULL+wal:", &spec).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("needs both"), "{err}");
        let err = r.build_updatable("+wal:/p", &spec).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("needs both"), "{err}");
    }

    #[test]
    fn build_supported_skips_unsupported_key_sets() {
        let device = Device::default_eval();
        let built = registry()
            .build_supported(&IndexSpec::keys_only(&device, &[1]))
            .unwrap();
        assert_eq!(built.len(), 1);
        assert_eq!(built[0].name(), "NULL");
    }

    #[test]
    fn specs_validate_value_column_length() {
        let device = Device::default_eval();
        let err = registry()
            .build(
                "NULL",
                &IndexSpec {
                    device: &device,
                    keys: &[1, 2],
                    values: Some(Arc::from(&[9u64][..])),
                    builder: None,
                    durability: None,
                    key_schema: None,
                    rows: None,
                },
            )
            .map(|_| ())
            .unwrap_err();
        assert_eq!(
            err,
            IndexError::ValueColumnLengthMismatch {
                expected: 2,
                actual: 1
            }
        );
    }

    #[test]
    fn updatable_registrations_also_serve_read_only_builds() {
        // No updatable backend registered here: the lookup must fail with
        // the updatable-specific known list.
        let r = registry();
        let device = Device::default_eval();
        let err = r
            .build_updatable("NULL", &IndexSpec::keys_only(&device, &[]))
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, IndexError::UnknownBackend { known, .. } if known.is_empty()));
    }
}
