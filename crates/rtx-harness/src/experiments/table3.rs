//! Table 3: ray origin for range lookups (offset vs. zero).
//!
//! The paper compares rays originating just before the lower bound against
//! rays originating at x = 0 with `tmin` clipping, for range lookups with
//! 1 to 256 qualifying entries; the offset origin wins in all cases.

use rtindex_core::{RangeRayStrategy, RtIndex, RtIndexConfig};
use rtx_workloads as wl;

use crate::report::{fmt_ms, Table};
use crate::scale::ExperimentScale;

/// Numbers of qualifying entries per range lookup (as in the paper).
pub const HITS_PER_RANGE: [u64; 5] = [1, 4, 16, 64, 256];

/// Runs the range-lookup ray-origin comparison (3D mode, dense keys).
pub fn run(scale: &ExperimentScale) -> Vec<Table> {
    let device = crate::scaled_device(scale);
    let n = scale.default_keys();
    let keys = wl::dense_shuffled(n, scale.seed);
    // Fewer range lookups than point lookups: each returns many rows.
    let lookup_count = (scale.default_lookups() / 8).max(16);

    let mut table = Table::new(
        "Table 3: range-lookup ray origin, cumulative lookup time [ms] (3D mode)",
        &[
            "hits per range",
            "parallel from offset",
            "parallel from zero",
        ],
    );
    for hits in HITS_PER_RANGE {
        if hits > n as u64 {
            continue;
        }
        let ranges = wl::range_lookups(n as u64, lookup_count, hits, scale.seed + hits);
        let mut row = vec![hits.to_string()];
        for strategy in [
            RangeRayStrategy::ParallelFromOffset,
            RangeRayStrategy::ParallelFromZero,
        ] {
            let config = RtIndexConfig::default().with_range_ray(strategy);
            let index = RtIndex::build(&device, &keys, config).expect("build");
            let out = index.range_lookup_batch(&ranges, None).expect("lookup");
            row.push(fmt_ms(out.metrics.simulated_time_s * 1e3));
        }
        table.push_row(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_origins_answer_ranges_correctly_and_cost_grows_with_hits() {
        let device = crate::default_device();
        let n = 1usize << 12;
        let keys = wl::dense_shuffled(n, 3);
        let small = wl::range_lookups(n as u64, 256, 4, 5);
        let large = wl::range_lookups(n as u64, 256, 64, 6);
        for strategy in [
            RangeRayStrategy::ParallelFromOffset,
            RangeRayStrategy::ParallelFromZero,
        ] {
            let config = RtIndexConfig::default().with_range_ray(strategy);
            let index = RtIndex::build(&device, &keys, config).expect("build");
            let out_small = index.range_lookup_batch(&small, None).expect("lookup");
            let out_large = index.range_lookup_batch(&large, None).expect("lookup");
            assert!(out_small.results.iter().all(|r| r.hit_count == 4));
            assert!(out_large.results.iter().all(|r| r.hit_count == 64));
            assert!(
                out_large.metrics.simulated_time_s > out_small.metrics.simulated_time_s,
                "{strategy:?}: wider ranges must cost more"
            );
        }
    }

    #[test]
    fn smoke_table_has_one_row_per_hit_count() {
        let tables = run(&ExperimentScale::tiny());
        assert_eq!(tables[0].rows.len(), HITS_PER_RANGE.len());
    }
}
