//! Dynamic-update benchmarks: the `rtx-delta` layer vs. the static index's
//! refit and rebuild paths, plus the delta-side read amplification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_device::Device;
use rtindex_core::{RtIndex, RtIndexConfig};
use rtx_delta::{CompactionPolicy, DynamicRtConfig, DynamicRtIndex};
use rtx_workloads as wl;

const KEYS_EXP: u32 = 14;

fn fixture() -> (Vec<u64>, Vec<u64>) {
    let keys = wl::dense_shuffled(1 << KEYS_EXP, 42);
    let values = wl::value_column(keys.len(), 43);
    (keys, values)
}

/// Insert throughput into the delta buffer, varying the batch size.
fn bench_insert_batches(c: &mut Criterion) {
    let device = Device::default_eval();
    let (keys, values) = fixture();

    let mut group = c.benchmark_group("delta_insert");
    for exp in [6u32, 8, 10] {
        let batch = 1usize << exp;
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            let fresh_keys: Vec<u64> = ((1 << KEYS_EXP)..(1 << KEYS_EXP) + batch as u64).collect();
            let fresh_values = vec![1u64; batch];
            b.iter_batched(
                || {
                    DynamicRtIndex::build(
                        &device,
                        &keys,
                        &values,
                        DynamicRtConfig::default().with_policy(CompactionPolicy::never()),
                    )
                    .unwrap()
                },
                |mut index| index.insert_batch(&fresh_keys, &fresh_values).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// The three update strategies applying the same churn batch.
fn bench_update_strategies(c: &mut Criterion) {
    let device = Device::default_eval();
    let (keys, values) = fixture();
    let batch = 1usize << 8;
    let old_keys: Vec<u64> = keys[..batch].to_vec();
    let new_keys: Vec<u64> = ((1 << KEYS_EXP)..(1 << KEYS_EXP) + batch as u64).collect();
    let mut churned = keys.clone();
    for (slot, &nk) in churned[..batch].iter_mut().zip(&new_keys) {
        *slot = nk;
    }

    let mut group = c.benchmark_group("update_strategy");
    group.throughput(Throughput::Elements(batch as u64));
    group.bench_function("delta_buffer", |b| {
        b.iter_batched(
            || {
                DynamicRtIndex::build(
                    &device,
                    &keys,
                    &values,
                    DynamicRtConfig::default().with_policy(CompactionPolicy::never()),
                )
                .unwrap()
            },
            |mut index| {
                index.delete_batch(&old_keys).unwrap();
                index.insert_batch(&new_keys, &vec![1u64; batch]).unwrap()
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("refit", |b| {
        b.iter_batched(
            || RtIndex::build(&device, &keys, RtIndexConfig::default().updatable()).unwrap(),
            |mut index| index.update_keys(&churned).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("rebuild", |b| {
        b.iter(|| RtIndex::build(&device, &churned, RtIndexConfig::default()).unwrap())
    });
    group.finish();
}

/// Read amplification of the delta layer: lookups against a compacted index
/// vs. one with a populated delta and tombstones.
fn bench_lookup_amplification(c: &mut Criterion) {
    let device = Device::default_eval();
    let (keys, values) = fixture();
    let queries = wl::point_lookups(&keys, 1 << KEYS_EXP, 44);

    let compacted =
        DynamicRtIndex::build(&device, &keys, &values, DynamicRtConfig::default()).unwrap();
    let mut dirty = DynamicRtIndex::build(
        &device,
        &keys,
        &values,
        DynamicRtConfig::default().with_policy(CompactionPolicy::never()),
    )
    .unwrap();
    let fresh: Vec<u64> = ((1 << KEYS_EXP)..(1 << KEYS_EXP) + (1 << 10)).collect();
    dirty
        .insert_batch(&fresh, &vec![1u64; fresh.len()])
        .unwrap();
    dirty.delete_batch(&keys[..1 << 10]).unwrap();

    let mut group = c.benchmark_group("dynamic_lookup");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("compacted", |b| {
        b.iter(|| compacted.point_lookup_batch(&queries).unwrap())
    });
    group.bench_function("with_delta_and_tombstones", |b| {
        b.iter(|| dirty.point_lookup_batch(&queries).unwrap())
    });
    group.finish();
}

/// Compaction cost: merging a populated delta back into the BVH.
fn bench_compaction(c: &mut Criterion) {
    let device = Device::default_eval();
    let (keys, values) = fixture();
    let fresh: Vec<u64> = ((1 << KEYS_EXP)..(1 << KEYS_EXP) + (1 << 11)).collect();

    let mut group = c.benchmark_group("compaction");
    group.sample_size(10);
    group.bench_function("merge_delta", |b| {
        b.iter_batched(
            || {
                let mut index = DynamicRtIndex::build(
                    &device,
                    &keys,
                    &values,
                    DynamicRtConfig::default().with_policy(CompactionPolicy::never()),
                )
                .unwrap();
                index
                    .insert_batch(&fresh, &vec![1u64; fresh.len()])
                    .unwrap();
                index.delete_batch(&keys[..1 << 11]).unwrap();
                index
            },
            |mut index| index.compact_now(),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_insert_batches, bench_update_strategies, bench_lookup_amplification, bench_compaction
}
criterion_main!(benches);
