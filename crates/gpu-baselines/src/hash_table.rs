//! HT: a WarpCore-style GPU hash table.
//!
//! WarpCore assigns each key to a cooperative group of threads that probes a
//! group of neighbouring slots at once. We model the same structure: the
//! table is an open-addressing array of slots, probed in groups of
//! [`GROUP_SIZE`]; the target load factor is 0.8 (i.e. 25 % over-allocation),
//! and there is no bulk-loading — every key is inserted individually during
//! the build phase, exactly as in the paper's setup.
//!
//! Duplicate keys occupy separate slots; a lookup therefore keeps probing
//! until it sees a free slot in a group, which is also why misses cause
//! longer probe sequences than hits (the effect behind Figure 14).

use gpu_device::{Device, KernelStats};
use rtx_query::IndexError;

use crate::common::{BaselineBatch, BaselineBuildMetrics, GpuIndex};
use crate::kernel::{fetch_value, run_lookup_kernel};
use rtx_query::{LookupResult, MISS};

/// Number of slots probed together by one cooperative group.
pub const GROUP_SIZE: usize = 8;

/// Target load factor of the table (the paper uses 0.8).
pub const TARGET_LOAD_FACTOR: f64 = 0.8;

/// Bytes per slot: 8-byte key + 4-byte rowID + 1-byte occupancy flag,
/// padded to 16 for coalesced accesses.
const SLOT_BYTES: u64 = 16;

/// The slot hash shared by the WarpCore-style tables in this workspace
/// (SplitMix64 finaliser: well distributed and cheap, similar in spirit to
/// the multiply-shift hashes GPU tables use). Exposed so that other
/// hash-probing structures — such as the `rtx-delta` insert buffer — place
/// keys exactly like [`WarpHashTable`] does.
#[inline]
pub fn slot_hash(key: u64, capacity: usize) -> usize {
    let mut x = key.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^= x >> 31;
    (x % capacity as u64) as usize
}

#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    key: u64,
    row: u32,
    occupied: bool,
}

/// The WarpCore-like hash table baseline.
#[derive(Debug)]
pub struct WarpHashTable {
    slots: Vec<Slot>,
    key_count: usize,
    /// Whether any key was inserted more than once. With unique keys a
    /// lookup may stop at the first match (as WarpCore does); with
    /// duplicates it must continue until it sees a free slot.
    has_duplicates: bool,
    build_metrics: BaselineBuildMetrics,
    /// Device allocation backing the table.
    _table_buffer: gpu_device::DeviceBuffer<u8>,
}

impl WarpHashTable {
    /// Builds the table by inserting every key of `keys` individually
    /// (rowID = position).
    ///
    /// An empty key set builds an empty table whose lookups all miss.
    /// Degenerate inputs that previously panicked deep inside the build —
    /// key counts that exhaust the 32-bit rowID space (the [`MISS`]
    /// sentinel is reserved) or overflow the slot-capacity computation —
    /// are rejected up front with [`IndexError::CapacityOverflow`].
    pub fn build(device: &Device, keys: &[u64]) -> Result<Self, IndexError> {
        let start = std::time::Instant::now();
        if keys.len() as u64 >= MISS as u64 {
            return Err(IndexError::CapacityOverflow {
                backend: "HT".to_string().into(),
                keys: keys.len(),
                limit: MISS as u64 - 1,
            });
        }
        let capacity = Self::capacity_for(keys.len());
        let mut slots = vec![Slot::default(); capacity];

        let mut insert_probes = 0u64;
        let mut has_duplicates = false;
        for (row, &key) in keys.iter().enumerate() {
            let (probes, saw_duplicate) = Self::insert(&mut slots, key, row as u32);
            insert_probes += probes;
            has_duplicates |= saw_duplicate;
        }

        let table_bytes = capacity as u64 * SLOT_BYTES;
        let table_buffer = device.alloc::<u8>(table_bytes as usize);

        // Charge the build: one kernel per insert batch; every insert hashes
        // and writes one slot, plus the probed groups.
        let n = keys.len() as u64;
        let stats = KernelStats {
            threads_launched: n,
            kernel_launches: 1,
            instructions: n * 12 + insert_probes * 4,
            dram_bytes_read: insert_probes * GROUP_SIZE as u64 * SLOT_BYTES,
            dram_bytes_written: n * SLOT_BYTES,
            ..KernelStats::new()
        };
        let simulated = device.cost_model().simulated_time(&stats);
        device.profiler().record_kernel(stats);

        Ok(WarpHashTable {
            slots,
            key_count: keys.len(),
            has_duplicates,
            build_metrics: BaselineBuildMetrics {
                host_build_time: start.elapsed(),
                simulated_time_s: simulated.as_seconds(),
                scratch_bytes: 0,
            },
            _table_buffer: table_buffer,
        })
    }

    /// Number of slots allocated for `n` keys: `n / 0.8` rounded up to a
    /// whole number of groups.
    pub fn capacity_for(n: usize) -> usize {
        let raw = ((n.max(1) as f64) / TARGET_LOAD_FACTOR).ceil() as usize;
        raw.div_ceil(GROUP_SIZE) * GROUP_SIZE
    }

    /// Current load factor of the table.
    pub fn load_factor(&self) -> f64 {
        self.key_count as f64 / self.slots.len() as f64
    }

    #[inline]
    fn hash(key: u64, capacity: usize) -> usize {
        slot_hash(key, capacity)
    }

    /// Inserts a key, returning the number of probed groups and whether an
    /// existing copy of the key was encountered along the probe sequence.
    #[allow(clippy::needless_range_loop)]
    fn insert(slots: &mut [Slot], key: u64, row: u32) -> (u64, bool) {
        let capacity = slots.len();
        let start_group = Self::hash(key, capacity) / GROUP_SIZE;
        let group_count = capacity / GROUP_SIZE;
        let mut saw_duplicate = false;
        for probe in 0..group_count {
            let group = (start_group + probe) % group_count;
            for slot_idx in group * GROUP_SIZE..(group + 1) * GROUP_SIZE {
                if slots[slot_idx].occupied {
                    saw_duplicate |= slots[slot_idx].key == key;
                } else {
                    slots[slot_idx] = Slot {
                        key,
                        row,
                        occupied: true,
                    };
                    return (probe as u64 + 1, saw_duplicate);
                }
            }
        }
        panic!("hash table over-full: capacity {capacity}, inserting beyond load factor");
    }

    /// Probes for `key`, invoking `on_hit(row)` for every matching slot.
    /// Returns the number of probed groups.
    ///
    /// With a duplicate-free table the probe stops at the first match (as
    /// WarpCore does); otherwise it must continue until it sees a free slot,
    /// which is also the termination rule for misses — this is why misses
    /// have longer probe sequences than hits.
    fn probe<F: FnMut(u32)>(&self, key: u64, mut on_hit: F) -> u64 {
        let capacity = self.slots.len();
        let group_count = capacity / GROUP_SIZE;
        let start_group = Self::hash(key, capacity) / GROUP_SIZE;
        for probe in 0..group_count {
            let group = (start_group + probe) % group_count;
            let mut saw_empty = false;
            let mut saw_match = false;
            for slot_idx in group * GROUP_SIZE..(group + 1) * GROUP_SIZE {
                let slot = &self.slots[slot_idx];
                if slot.occupied {
                    if slot.key == key {
                        on_hit(slot.row);
                        saw_match = true;
                    }
                } else {
                    saw_empty = true;
                }
            }
            if saw_empty || (saw_match && !self.has_duplicates) {
                return probe as u64 + 1;
            }
        }
        group_count as u64
    }
}

impl GpuIndex for WarpHashTable {
    fn name(&self) -> &'static str {
        "HT"
    }

    fn key_count(&self) -> usize {
        self.key_count
    }

    fn memory_bytes(&self) -> u64 {
        self.slots.len() as u64 * SLOT_BYTES
    }

    fn build_metrics(&self) -> BaselineBuildMetrics {
        self.build_metrics
    }

    fn supports_range(&self) -> bool {
        false
    }

    fn supports_duplicates(&self) -> bool {
        true
    }

    fn supports_64bit_keys(&self) -> bool {
        true
    }

    fn point_lookup_batch(
        &self,
        device: &Device,
        queries: &[u64],
        values: Option<&[u64]>,
    ) -> BaselineBatch {
        let working_set = self.memory_bytes() + values.map(|v| v.len() as u64 * 8).unwrap_or(0);
        run_lookup_kernel(
            device,
            queries.len(),
            working_set,
            |ctx, classifier, idx| {
                let key = queries[idx];
                ctx.add_instructions(12); // hash + loop setup
                let mut first_row = MISS;
                let mut hit_count = 0u32;
                let mut sum = 0u64;
                let mut rows: Vec<u32> = Vec::new();
                let probed_groups = self.probe(key, |row| {
                    if first_row == MISS || row < first_row {
                        first_row = row;
                    }
                    hit_count += 1;
                    rows.push(row);
                });
                // Each probed group reads GROUP_SIZE slots; the token is the
                // group id so repeated lookups of hot keys hit the cache.
                let group_token = Self::hash(key, self.slots.len()) as u64 / GROUP_SIZE as u64;
                classifier.access(
                    ctx,
                    group_token,
                    probed_groups * GROUP_SIZE as u64 * SLOT_BYTES,
                );
                ctx.add_instructions(probed_groups * GROUP_SIZE as u64);
                if let Some(values) = values {
                    for row in rows {
                        fetch_value(ctx, classifier, values, row, &mut sum);
                    }
                }
                if hit_count == 0 {
                    LookupResult::miss()
                } else {
                    LookupResult {
                        first_row,
                        hit_count,
                        value_sum: sum,
                    }
                }
            },
        )
    }

    fn range_lookup_batch(
        &self,
        _device: &Device,
        _ranges: &[(u64, u64)],
        _values: Option<&[u64]>,
    ) -> Option<BaselineBatch> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shuffled_keys(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i * 37 + 11) % n).collect()
    }

    #[test]
    fn capacity_respects_load_factor_and_group_size() {
        let cap = WarpHashTable::capacity_for(1000);
        assert!(cap >= 1250);
        assert_eq!(cap % GROUP_SIZE, 0);
        assert!(WarpHashTable::capacity_for(0) >= GROUP_SIZE);
    }

    #[test]
    fn build_and_lookup_round_trip() {
        let device = Device::default_eval();
        let keys = shuffled_keys(997);
        let ht = WarpHashTable::build(&device, &keys).unwrap();
        assert_eq!(ht.key_count(), 997);
        assert!(ht.load_factor() <= TARGET_LOAD_FACTOR + 0.01);
        assert_eq!(ht.name(), "HT");
        assert!(!ht.supports_range());

        let queries: Vec<u64> = (0..997).collect();
        let batch = ht.point_lookup_batch(&device, &queries, None);
        assert_eq!(batch.hit_count(), 997);
        for (q, r) in queries.iter().zip(&batch.results) {
            assert_eq!(keys[r.first_row as usize], *q);
            assert_eq!(r.hit_count, 1);
        }
    }

    #[test]
    fn misses_are_reported_and_cost_more_probes() {
        let device = Device::default_eval();
        let keys = shuffled_keys(4096);
        let ht = WarpHashTable::build(&device, &keys).unwrap();
        let hits: Vec<u64> = (0..4096).collect();
        let misses: Vec<u64> = (100_000..104_096).collect();
        let hit_batch = ht.point_lookup_batch(&device, &hits, None);
        let miss_batch = ht.point_lookup_batch(&device, &misses, None);
        assert_eq!(hit_batch.hit_count(), 4096);
        assert_eq!(miss_batch.hit_count(), 0);
        assert!(miss_batch.results.iter().all(|r| r.first_row == MISS));
        // The paper: "a miss usually causes longer probe sequences than a
        // hit", i.e. at least as much memory traffic.
        assert!(
            miss_batch.kernel.total_bytes_accessed() >= hit_batch.kernel.total_bytes_accessed()
        );
    }

    #[test]
    fn duplicates_are_all_found() {
        let device = Device::default_eval();
        let keys: Vec<u64> = (0..256u64)
            .flat_map(|k| std::iter::repeat_n(k, 4))
            .collect();
        let values = vec![1u64; keys.len()];
        let ht = WarpHashTable::build(&device, &keys).unwrap();
        let batch = ht.point_lookup_batch(&device, &[10, 200], Some(&values));
        for r in &batch.results {
            assert_eq!(r.hit_count, 4);
            assert_eq!(r.value_sum, 4);
        }
    }

    #[test]
    fn value_aggregation_matches_ground_truth() {
        let device = Device::default_eval();
        let keys = shuffled_keys(500);
        let values: Vec<u64> = (0..500u64).map(|i| i * 3).collect();
        let ht = WarpHashTable::build(&device, &keys).unwrap();
        let queries: Vec<u64> = (0..500).collect();
        let batch = ht.point_lookup_batch(&device, &queries, Some(&values));
        let expected: u64 = queries
            .iter()
            .map(|q| values[keys.iter().position(|k| k == q).unwrap()])
            .sum();
        assert_eq!(batch.total_value_sum(), expected);
    }

    #[test]
    fn supports_full_64bit_keys() {
        let device = Device::default_eval();
        let keys = vec![0u64, u64::MAX, 1 << 63, 42];
        let ht = WarpHashTable::build(&device, &keys).unwrap();
        assert!(ht.supports_64bit_keys());
        let batch = ht.point_lookup_batch(&device, &keys, None);
        assert_eq!(batch.hit_count(), 4);
    }

    #[test]
    fn range_lookups_unsupported() {
        let device = Device::default_eval();
        let ht = WarpHashTable::build(&device, &[1, 2, 3]).unwrap();
        assert!(ht.range_lookup_batch(&device, &[(0, 10)], None).is_none());
    }

    #[test]
    fn memory_footprint_includes_overallocation() {
        let device = Device::default_eval();
        let n = 10_000usize;
        let ht = WarpHashTable::build(&device, &shuffled_keys(n as u64)).unwrap();
        // At least 25% more slots than keys.
        assert!(ht.memory_bytes() >= (n as u64 * SLOT_BYTES * 5) / 4);
        assert!(ht.build_metrics().simulated_time_s > 0.0);
    }
}
