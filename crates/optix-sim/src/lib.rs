//! # optix-sim
//!
//! An OptiX-shaped raytracing API executed entirely in software on the
//! [`gpu_device`] performance model.
//!
//! RTIndeX uses a small slice of the OptiX 7 API surface; this crate
//! reproduces exactly that slice with the same semantics:
//!
//! * [`DeviceContext`] — owns the simulated device (`optixDeviceContextCreate`),
//! * [`BuildInput`] — triangle / sphere / AABB build inputs,
//! * [`AccelBuildOptions`] / [`GeometryAccel`] — `optixAccelBuild`,
//!   `optixAccelCompact` and refitting updates,
//! * pipeline-style launches via [`launch`]: a ray-generation program is
//!   invoked per launch index, calls [`Tracer::trace`] (our `optixTrace`), and
//!   an any-hit program receives every intersection along with the primitive
//!   index (= rowID),
//! * [`AccessClassifier`] — a measured memory-locality model that attributes
//!   traversal traffic to L1/L2/DRAM, feeding the cost model the same way
//!   Nsight counters inform the paper's analysis.
//!
//! What is intentionally *not* reproduced: shader binding tables, motion
//! blur, instancing, curves, and denoising — none of which the paper uses.

pub mod accel;
pub mod build_input;
pub mod context;

pub mod pipeline;

pub use accel::{AccelBuildOptions, BuildMetrics, GeometryAccel, PendingAccelBuild};
pub use build_input::{BuildInput, PrimitiveKind};
pub use context::DeviceContext;
pub use gpu_device::AccessClassifier;
pub use pipeline::{launch, LaunchMetrics, ProgramSet, Tracer};

// Re-export the pieces callers constantly need alongside this API.
pub use gpu_device::{Device, DeviceSpec, KernelStats, SimulatedTime};
pub use rtx_bvh::AnyHitControl;
pub use rtx_math::{Ray, Vec3f};
