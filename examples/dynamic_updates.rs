//! Dynamic updates end to end: insert → lookup → delete → automatic
//! compaction.
//!
//! The static RT index can only refit or rebuild; this example drives the
//! `rtx-delta` layer instead — a mutable GPU hash buffer plus tombstones
//! over the immutable BVH — and watches the configured policy fold the
//! delta back into a rebuilt base automatically.
//!
//! Run with: `cargo run --release --example dynamic_updates`

use rtindex::rtx_delta::CompactionPolicy;
use rtindex::{registry, Device, DynamicRtConfig, DynamicRtIndex, IndexSpec, QueryBatch};

fn main() {
    let device = Device::default_eval();

    // A users table: user id (key) -> account balance in cents (value).
    let user_ids: Vec<u64> = (0..10_000).collect();
    let balances: Vec<u64> = user_ids.iter().map(|id| id * 7 % 100_000).collect();

    // Compact once the delta reaches 10% of the base, or once 20% of the
    // base rows are tombstoned.
    let config = DynamicRtConfig::default().with_policy(CompactionPolicy {
        max_delta_entries: 1 << 20,
        max_delta_fraction: 0.10,
        max_delete_ratio: 0.20,
    });
    let mut index = DynamicRtIndex::build(&device, &user_ids, &balances, config).unwrap();
    println!(
        "built dynamic index: {} rows in the base, {} in the delta, {:.1} MiB on device",
        index.base_rows(),
        index.delta_len(),
        index.memory_bytes() as f64 / (1 << 20) as f64,
    );

    // --- Inserts land in the delta; the BVH is untouched. -----------------
    let new_ids: Vec<u64> = (10_000..10_500).collect();
    let new_balances = vec![500u64; new_ids.len()];
    let outcome = index.insert_batch(&new_ids, &new_balances).unwrap();
    println!(
        "\ninserted {} users in {:.3} simulated ms (compaction: {})",
        outcome.inserted_rows,
        outcome.simulated_time_s * 1e3,
        outcome.compaction.is_some(),
    );
    println!(
        "delta now buffers {} rows over a {}-row base",
        index.delta_len(),
        index.base_rows()
    );

    // --- Lookups reconcile base and delta. --------------------------------
    let out = index.point_lookup_batch(&[42, 10_042, 777_777]).unwrap();
    for (query, result) in [42u64, 10_042, 777_777].iter().zip(&out.results) {
        match result.is_hit() {
            true => println!(
                "user {query}: row {} balance {} (hits: {})",
                result.first_row, result.value_sum, result.hit_count
            ),
            false => println!("user {query}: not found"),
        }
    }
    let ranges = index.range_lookup_batch(&[(10_000, 10_099)]).unwrap();
    println!(
        "balance sum of users [10000, 10099] (all in the delta): {}",
        ranges.results[0].value_sum
    );

    // --- Deletes tombstone; enough of them trigger a compaction. ----------
    let churn: Vec<u64> = (0..2_500).collect();
    let outcome = index.delete_batch(&churn).unwrap();
    println!(
        "\ndeleted {} rows; dead base rows now {}",
        outcome.deleted_rows,
        index.dead_base_rows()
    );
    match outcome.compaction {
        Some(event) => println!(
            "automatic compaction ({}): merged {} delta rows, dropped {} tombstones, \
             rebuilt {} live rows in {:.3} simulated ms",
            event.trigger.name(),
            event.merged_delta_entries,
            event.dropped_base_tombstones,
            event.live_rows,
            event.simulated_build_s * 1e3,
        ),
        None => println!("no compaction triggered yet"),
    }
    println!(
        "after compaction: base {} rows, delta {} rows, {} compactions total",
        index.base_rows(),
        index.delta_len(),
        index.compaction_count(),
    );

    // --- The merged index answers like nothing ever happened. -------------
    let out = index.point_lookup_batch(&[42, 2_600, 10_042]).unwrap();
    assert!(!out.results[0].is_hit(), "user 42 was deleted");
    assert!(out.results[1].is_hit(), "user 2600 survived the churn");
    assert!(
        out.results[2].is_hit(),
        "user 10042 moved from the delta into the base"
    );
    println!(
        "\nverification: deleted user misses, surviving users hit; device memory {:.1} MiB",
        index.memory_bytes() as f64 / (1 << 20) as f64,
    );
    println!("lifetime stats: {:?}", index.stats());

    // --- The same backend through the unified query API. ------------------
    // `registry().build_updatable("RXD", ...)` hands out the identical index
    // family as an `UpdatableIndex` trait object: writes and mixed
    // point/range batches go through the backend-agnostic interface the
    // whole harness uses.
    let mut unified = registry()
        .build_updatable(
            "RXD",
            &IndexSpec::with_values(&device, &user_ids, &balances),
        )
        .unwrap();
    unified.upsert(&[42], &[999]).unwrap();
    let out = unified
        .execute(
            &QueryBatch::new()
                .point(42)
                .range(100, 109)
                .fetch_values(true),
        )
        .unwrap();
    println!(
        "\nunified API: user 42 balance {} after upsert, range [100,109] sum {}",
        out.results[0].value_sum, out.results[1].value_sum,
    );
}
