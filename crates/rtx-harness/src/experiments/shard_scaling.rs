//! Beyond-paper experiment: shard-scaling of every backend.
//!
//! The paper (and every experiment above) drives each index as one
//! monolithic structure. The sharded execution layer (`rtx-shard`) cuts the
//! key space over N inner backends and runs per-shard sub-batches
//! concurrently on the host worker pool. This experiment measures what that
//! buys — and what it costs — per backend:
//!
//! * **host throughput** (wall clock) is where sharding wins: per-shard
//!   sub-batches execute in parallel, and each shard's structure is smaller
//!   (shallower BVH / tree, better locality). The gain tracks the number of
//!   physical cores (`RTX_WORKERS` pins it for reproducibility).
//! * **simulated device time** stays roughly flat by design — the sharded
//!   outcome merges the per-shard launch metrics, so total simulated work
//!   is conserved (point lookups even get slightly cheaper on RX: shallower
//!   per-shard BVHs) while hash-partitioned *range* lookups pay the
//!   broadcast.
//!
//! Reported per backend (RX, HT, B+, SA, RXD) over shard counts 1/2/4/8:
//! point-lookup throughput under hash partitioning, and range-lookup
//! throughput under contiguous-range partitioning for the range-capable
//! backends.

use rtx_query::{IndexSpec, QueryBatch};
use rtx_workloads as wl;

use crate::indexes::registry;
use crate::report::{fmt_ms, fmt_throughput, Table};
use crate::scale::ExperimentScale;

/// Shard counts swept per backend.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One measured (backend, shard count) cell.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Sharded backend name as built from the registry ("RX@4", …).
    pub name: String,
    /// Inner backend ("RX", …).
    pub backend: &'static str,
    /// Shard count.
    pub shards: usize,
    /// Operations in the measured batch.
    pub ops: usize,
    /// Host wall-clock milliseconds of the batch, timed around the whole
    /// `execute` call. (The outcome's own merged `host_time` *sums* the
    /// per-shard kernel times and therefore cannot show parallel speedup.)
    pub host_ms: f64,
    /// Simulated device milliseconds of the batch.
    pub sim_ms: f64,
    /// Lookups that hit (sanity: constant across shard counts).
    pub hits: usize,
    /// Host milliseconds of the (parallel) sharded build.
    pub build_host_ms: f64,
}

impl ShardRun {
    /// Host-side lookup throughput in operations per second.
    pub fn host_throughput(&self) -> f64 {
        if self.host_ms <= 0.0 {
            return 0.0;
        }
        self.ops as f64 / (self.host_ms / 1e3)
    }
}

fn run_backend(
    backend: &'static str,
    suffix: &str,
    spec: &IndexSpec<'_>,
    batch: &QueryBatch,
) -> Vec<ShardRun> {
    let registry = registry();
    SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let name = format!("{backend}@{shards}{suffix}");
            let index = registry.build(&name, spec).expect("sharded build");
            let started = std::time::Instant::now();
            let outcome = index.execute(batch).expect("sharded batch");
            let host_ms = started.elapsed().as_secs_f64() * 1e3;
            ShardRun {
                name,
                backend,
                shards,
                ops: batch.len(),
                host_ms,
                sim_ms: outcome.sim_ms(),
                hits: outcome.hit_count(),
                build_host_ms: index.build_metrics().host_time.as_secs_f64() * 1e3,
            }
        })
        .collect()
}

/// Runs the point-lookup sweep (hash partitioning) for every backend.
pub fn run_points(scale: &ExperimentScale) -> Vec<ShardRun> {
    let device = crate::scaled_device(scale);
    let n = scale.default_keys();
    let keys = wl::dense_shuffled(n, scale.seed);
    let values = wl::value_column(n, scale.seed + 1);
    let queries = wl::point_lookups(&keys, scale.default_lookups().min(n * 2), scale.seed + 2);
    let batch = QueryBatch::of_points(&queries).fetch_values(true);
    let spec = IndexSpec::with_values(&device, &keys, &values);

    let mut runs = Vec::new();
    for backend in ["RX", "HT", "B+", "SA", "RXD"] {
        runs.extend(run_backend(backend, "", &spec, &batch));
    }
    runs
}

/// Runs the range-lookup sweep (contiguous-range partitioning, so ranges
/// split instead of broadcast) for the range-capable backends.
pub fn run_ranges(scale: &ExperimentScale) -> Vec<ShardRun> {
    let device = crate::scaled_device(scale);
    let n = scale.default_keys();
    let keys = wl::dense_shuffled(n, scale.seed);
    let values = wl::value_column(n, scale.seed + 1);
    let ranges = wl::range_lookups(n as u64, (n / 16).max(1), 32, scale.seed + 3);
    let batch = QueryBatch::of_ranges(&ranges).fetch_values(true);
    let spec = IndexSpec::with_values(&device, &keys, &values);

    let mut runs = Vec::new();
    for backend in ["RX", "B+", "SA", "RXD"] {
        runs.extend(run_backend(backend, ":range", &spec, &batch));
    }
    runs
}

fn table_from(title: String, runs: &[ShardRun]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "backend",
            "shards",
            "host [ms]",
            "host ops/s",
            "host speedup",
            "sim [ms]",
            "build host [ms]",
            "hits",
        ],
    );
    for run in runs {
        let baseline = runs
            .iter()
            .find(|r| r.backend == run.backend && r.shards == 1)
            .expect("1-shard baseline present");
        let speedup = if run.host_ms > 0.0 {
            baseline.host_ms / run.host_ms
        } else {
            0.0
        };
        table.push_row(vec![
            run.backend.to_string(),
            run.shards.to_string(),
            fmt_ms(run.host_ms),
            fmt_throughput(run.host_throughput()),
            format!("{speedup:.2}x"),
            fmt_ms(run.sim_ms),
            fmt_ms(run.build_host_ms),
            run.hits.to_string(),
        ]);
    }
    table
}

/// The `shard_scaling` experiment: point-lookup scaling under hash
/// partitioning and range-lookup scaling under range partitioning.
pub fn run(scale: &ExperimentScale) -> Vec<Table> {
    let points = run_points(scale);
    let ranges = run_ranges(scale);
    vec![
        table_from(
            format!(
                "Shard scaling, point lookups (hash partitioning), 2^{} keys, {} workers",
                scale.keys_exp,
                gpu_device::worker_count()
            ),
            &points,
        ),
        table_from(
            format!(
                "Shard scaling, range lookups (range partitioning), 2^{} keys, {} workers",
                scale.keys_exp,
                gpu_device::worker_count()
            ),
            &ranges,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_preserves_answers_across_shard_counts() {
        let scale = ExperimentScale::tiny();
        let runs = run_points(&scale);
        assert_eq!(runs.len(), 5 * SHARD_COUNTS.len());
        for backend in ["RX", "HT", "B+", "SA", "RXD"] {
            let of_backend: Vec<&ShardRun> = runs.iter().filter(|r| r.backend == backend).collect();
            assert_eq!(of_backend.len(), SHARD_COUNTS.len());
            assert!(
                of_backend.windows(2).all(|w| w[0].hits == w[1].hits),
                "{backend}: hits must not depend on the shard count"
            );
            assert!(of_backend.iter().all(|r| r.hits > 0), "{backend}");
            assert!(of_backend.iter().all(|r| r.sim_ms > 0.0), "{backend}");
        }

        let ranges = run_ranges(&scale);
        assert_eq!(ranges.len(), 4 * SHARD_COUNTS.len());
        for w in ranges.windows(2) {
            if w[0].backend == w[1].backend {
                assert_eq!(w[0].hits, w[1].hits, "{}", w[0].backend);
            }
        }

        let tables = run(&scale);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 5 * SHARD_COUNTS.len());
        assert_eq!(tables[1].rows.len(), 4 * SHARD_COUNTS.len());
    }
}
