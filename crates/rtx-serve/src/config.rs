//! Service tuning knobs.

use std::time::Duration;

/// Configuration of a [`QueryService`](crate::QueryService).
///
/// The three policies interact the way they do in any batching front-end:
///
/// * **admission** ([`max_queue_depth`](ServiceConfig::max_queue_depth))
///   bounds the operations waiting in the submission queue — beyond it,
///   submissions fail with
///   [`ServeError::Overloaded`](crate::ServeError::Overloaded) instead of
///   growing the queue without bound (backpressure);
/// * **coalescing** ([`max_coalesce_ops`](ServiceConfig::max_coalesce_ops))
///   caps how many queued operations fuse into one backend submission, so
///   one giant fused batch cannot monopolise the executor or its result
///   buffers;
/// * **linger** ([`linger`](ServiceConfig::linger)) trades latency for
///   batch size: a non-full fusion waits up to this long for more client
///   batches to arrive before executing, which is what lets concurrent
///   small submitters fuse at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Admission limit: maximum operations (reads) / rows (writes) queued
    /// at once. A submission that would exceed it is rejected. Every
    /// request costs at least 1, so empty batches cannot flood the queue.
    pub max_queue_depth: usize,
    /// Maximum operations fused into one backend submission.
    pub max_coalesce_ops: usize,
    /// How long a non-full fusion waits for more client batches before
    /// executing. Zero executes whatever one queue drain finds.
    pub linger: Duration,
    /// Chunk size applied to the *fused* batch (per-client chunk settings
    /// are not meaningful once batches fuse). Zero means unbounded
    /// launches.
    pub chunk_size: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_queue_depth: 1 << 20,
            max_coalesce_ops: 1 << 16,
            linger: Duration::from_micros(200),
            chunk_size: 0,
        }
    }
}

impl ServiceConfig {
    /// The default configuration.
    pub fn new() -> Self {
        ServiceConfig::default()
    }

    /// Sets the admission limit (clamped to at least 1).
    pub fn with_max_queue_depth(mut self, ops: usize) -> Self {
        self.max_queue_depth = ops.max(1);
        self
    }

    /// Sets the fusion cap (clamped to at least 1).
    pub fn with_max_coalesce_ops(mut self, ops: usize) -> Self {
        self.max_coalesce_ops = ops.max(1);
        self
    }

    /// Sets the linger time.
    pub fn with_linger(mut self, linger: Duration) -> Self {
        self.linger = linger;
        self
    }

    /// Sets the fused-batch chunk size (0 = unbounded).
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_clamps_degenerate_limits() {
        let c = ServiceConfig::new()
            .with_max_queue_depth(0)
            .with_max_coalesce_ops(0)
            .with_linger(Duration::ZERO)
            .with_chunk_size(128);
        assert_eq!(c.max_queue_depth, 1);
        assert_eq!(c.max_coalesce_ops, 1);
        assert_eq!(c.linger, Duration::ZERO);
        assert_eq!(c.chunk_size, 128);
        assert!(ServiceConfig::default().max_queue_depth > 0);
    }
}
