//! Hot-shard rebalancing: Zipf-skewed traffic against a sharded service,
//! watched through the per-shard load counters and migrated off the hot
//! shard live, behind the coalescer's write fence.
//!
//! A hash partitioner balances *rows*, not *traffic*: under a skewed key
//! distribution one shard ends up serving most of the lookups while the
//! others idle. This example drives exactly that traffic at an updatable
//! sharded backend ("RXD@4") through a [`QueryService`] configured with
//!
//! * the **adaptive linger** policy (the coalescer lingers only as long as
//!   filling its fusion budget should take at the observed arrival rate),
//! * **hot-shard rebalancing** (when the per-shard op counters show one
//!   shard sustaining more than 1.2x its fair share, rows migrate to
//!   load-weighted shard assignments — global row ids preserved, so
//!   answers never change).
//!
//! Run with: `cargo run --release --example hot_shard`
//! Pin the worker pool with e.g. `RTX_WORKERS=8` for reproducible timings.

use std::time::Duration;

use rtindex::{
    registry, AdaptiveLingerConfig, Device, IndexSpec, QueryBatch, QueryService, RebalanceConfig,
    ServiceConfig,
};
use rtx_workloads::{skewed_point_lookups, GroundTruth, SkewProfile};

fn main() {
    let device = Device::default_eval();
    let registry = registry();

    // An updatable index over 64k rows, hash-sharded 4 ways.
    let n: u64 = 65_536;
    let keys: Vec<u64> = (0..n).map(|i| (i * 2_654_435_761) % n).collect();
    let values: Vec<u64> = keys.iter().map(|k| k * 3 + 7).collect();
    let truth = GroundTruth::new(&keys, Some(&values));
    let backend = registry
        .build_updatable("RXD@4", &IndexSpec::with_values(&device, &keys, &values))
        .expect("sharded build");

    // The heavy-traffic hardening stack: adaptive linger between 2us and
    // 200us, rebalancing once 8k observed ops show a 1.2x-or-worse skew.
    let service = QueryService::start_updatable(
        backend,
        ServiceConfig::new()
            .with_adaptive_linger(
                AdaptiveLingerConfig::new()
                    .with_floor(Duration::from_micros(2))
                    .with_ceiling(Duration::from_micros(200))
                    .with_target_ops(512),
            )
            .with_rebalance(
                RebalanceConfig::new()
                    .with_min_ops(8_192)
                    .with_max_imbalance_permille(1200),
            ),
    );
    let handle = service.handle();

    // Zipf-skewed lookups: rank 0 (key `keys[0]`) is the hottest, and the
    // handful of top ranks absorb most of the traffic — all of it landing
    // on whichever shards those few keys hash to.
    let profile = SkewProfile::zipfian(1.2);
    let queries = skewed_point_lookups(&keys, 40_000, &profile, 42);
    println!(
        "service backend: RXD@4 ({n} keys), {} zipf(1.2) lookups in 16-op batches",
        queries.len()
    );

    let mut hits = 0usize;
    let mut value_sum = 0u64;
    let mut reported = false;
    for chunk in queries.chunks(16) {
        let out = handle
            .query(QueryBatch::of_points(chunk).fetch_values(true))
            .expect("skewed batch");
        hits += out.hit_count();
        value_sum += out.results.iter().map(|r| r.value_sum).sum::<u64>();
        let stats = service.stats();
        if stats.rebalances > 0 && !reported {
            reported = true;
            println!(
                "rebalanced after {} fused submissions: {} rows migrated, \
                 imbalance gauge {:.2}x",
                stats.fused_submissions,
                stats.rebalanced_rows,
                stats.shard_imbalance_ratio(),
            );
        }
    }

    // Answers are oracle-exact across the live migration.
    let expected = truth.batch_point_hits(&queries);
    let expected_sum = truth.batch_point_sum(&queries);
    assert_eq!(hits, expected, "hits must survive the migration");
    assert_eq!(value_sum, expected_sum, "values must survive the migration");

    let stats = service.shutdown();
    assert!(stats.rebalances >= 1, "skewed traffic must trigger a pass");
    println!(
        "done: {hits} hits (oracle-exact), {} rebalance pass(es), {} rows moved,\n      \
         mean linger {:.1} us across {} drains, final imbalance {:.2}x",
        stats.rebalances,
        stats.rebalanced_rows,
        stats.mean_linger_s() * 1e6,
        stats.linger_decisions,
        stats.shard_imbalance_ratio(),
    );
}
