//! The dynamic index: an immutable RX base + the mutable delta layer.
//!
//! Reads fan out to both sides and reconcile:
//!
//! * the **base** is an ordinary [`RtIndex`] (BVH over the scene) queried
//!   through its masked-lookup hooks, so tombstoned rows never surface;
//! * the **delta** is queried by a hash-probe kernel (point lookups) or a
//!   scan kernel (range lookups) over the [`DeltaBuffer`];
//! * per query, the two partial results merge: hit counts and value sums
//!   add, and the first row is the minimum qualifying rowID (base rows are
//!   always smaller than delta rows, because delta rows are assigned after
//!   the base was built).
//!
//! Writes never touch the BVH: inserts append to the delta, deletes clear
//! validity bits (base) or tombstone slots (delta). Once the configured
//! [`CompactionPolicy`](crate::config::CompactionPolicy) trips, the live
//! key set is merged and the base is rebuilt through the ordinary
//! `optixAccelBuild` path — the same cost the paper charges for its
//! "rebuild" update strategy.
//!
//! ## Two-generation (background) compaction
//!
//! With [`DynamicRtConfig::background`] set, a triggered compaction does
//! not stop the world. Instead the index **freezes** the current delta and
//! snapshots the live entries, hands the snapshot to
//! [`RtIndex::build_async`] on a background thread, and keeps serving:
//!
//! * **reads** fan out to *three* structures — old base (masked), frozen
//!   delta, fresh delta — and reconcile exactly as before;
//! * **inserts** land in the fresh delta;
//! * **deletes** tombstone all three views and are additionally recorded
//!   for replay, because the snapshot already left for the builder;
//! * once the rebuild lands, the next write (or an explicit
//!   [`DynamicRtIndex::poll_compaction`]) performs the **swap**: the new
//!   base replaces old base + frozen delta, recorded deletes are replayed
//!   onto its validity mask, and the fresh delta carries over as the new
//!   generation's delta. Only this swap ever blocks a write.
//!
//! RowIDs follow the generation: snapshot rows renumber densely to their
//! snapshot position at the swap (exactly like a synchronous compaction),
//! while rows inserted during the rebuild keep their already-assigned IDs —
//! `rtx_workloads::truth::DynamicOracle` mirrors this with its
//! `begin_compaction` / `finish_compaction` pair.

use gpu_baselines::{kernel as baseline_kernel, GROUP_SIZE};
use gpu_device::{Device, DeviceBuffer};
use optix_sim::LaunchMetrics;
use rtindex_core::{PendingIndexBuild, RtIndex, RtIndexError};
use rtx_bvh::BvhQuality;
use rtx_query::{BatchOutcome, LookupResult, MISS};

use crate::config::{CompactionTrigger, DynamicRtConfig};
use crate::delta_buffer::{DeltaBuffer, DELTA_SLOT_BYTES};

/// Summary of one completed compaction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionEvent {
    /// Why the compaction ran.
    pub trigger: CompactionTrigger,
    /// Live rows in the rebuilt base (excluding rows deleted while a
    /// background rebuild was in flight).
    pub live_rows: usize,
    /// Delta entries merged into the new base.
    pub merged_delta_entries: usize,
    /// Tombstoned base rows dropped by the merge.
    pub dropped_base_tombstones: usize,
    /// Simulated device seconds of the BVH rebuild.
    pub simulated_build_s: f64,
    /// Whether the rebuild ran on a background thread (two-generation
    /// mode) rather than stop-the-world.
    pub background: bool,
    /// Quality of the rebuilt BVH (SAH cost, sibling overlap, …) — makes
    /// rebuild quality visible after every compaction, not just at the
    /// initial build.
    pub quality: BvhQuality,
}

/// Result of one update batch (insert, delete or upsert).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UpdateOutcome {
    /// Rows inserted by the batch.
    pub inserted_rows: usize,
    /// Rows deleted by the batch (base tombstones + delta removals).
    pub deleted_rows: usize,
    /// Simulated device seconds spent applying the batch (kernels plus a
    /// compaction rebuild, when one completed in this batch).
    pub simulated_time_s: f64,
    /// The compaction that **completed** during this batch: a synchronous
    /// merge, or the swap of a background rebuild that landed. For a
    /// background compaction the swap happens *before* the batch's
    /// operations apply.
    pub compaction: Option<CompactionEvent>,
    /// True when this batch *started* a background compaction (froze the
    /// delta and kicked off the rebuild). The matching completion surfaces
    /// in a later outcome's [`compaction`](UpdateOutcome::compaction).
    pub compaction_began: bool,
}

/// Lifetime counters of a [`DynamicRtIndex`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UpdateStats {
    /// Rows inserted since construction.
    pub inserted_rows: u64,
    /// Rows deleted since construction.
    pub deleted_rows: u64,
    /// Update batches applied.
    pub update_batches: u64,
    /// Compactions performed (completed).
    pub compactions: u64,
    /// Simulated device seconds spent in update kernels and rebuilds.
    pub simulated_update_s: f64,
}

/// A background compaction between freeze and swap.
struct InflightCompaction {
    trigger: CompactionTrigger,
    /// The delta generation frozen at trigger time. Still serves reads and
    /// accepts tombstones; never accepts inserts.
    frozen: DeltaBuffer,
    /// Frozen-delta entries at freeze time (the merge size reported at the
    /// swap).
    merged_delta_entries: usize,
    /// Base tombstones dropped by the merge (at freeze time).
    dropped_base_tombstones: usize,
    /// Rows in the snapshot handed to the builder.
    snapshot_rows: usize,
    /// Value column of the snapshot, uploaded at the swap.
    values: Vec<u64>,
    /// Keys deleted while the rebuild was in flight; replayed onto the new
    /// base's validity mask at the swap (the snapshot predates them).
    pending_deletes: Vec<u64>,
    /// The rebuild running on the background thread.
    build: PendingIndexBuild,
}

/// A dynamically updatable RT index: immutable [`RtIndex`] base, mutable
/// delta buffer, tombstone mask and automatic compaction.
///
/// Unlike the static index, the dynamic index owns its value column: every
/// row carries a `u64` value supplied at insert time, and lookups aggregate
/// those values (the paper's secondary-index methodology) without the caller
/// passing a column around — rows move between delta and base during
/// compaction, so only the index knows where a row's value lives.
#[derive(Debug)]
pub struct DynamicRtIndex {
    device: Device,
    config: DynamicRtConfig,
    base: RtIndex,
    /// Value column of the base rows (device copy).
    base_values: DeviceBuffer<u64>,
    /// Validity of each base row; cleared by deletes.
    live: Vec<bool>,
    /// Device allocation standing in for the packed validity bitmap.
    live_bitmap: DeviceBuffer<u8>,
    dead_rows: usize,
    delta: DeltaBuffer,
    next_row: u32,
    stats: UpdateStats,
    last_compaction: Option<CompactionEvent>,
    inflight: Option<InflightCompaction>,
}

impl std::fmt::Debug for InflightCompaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InflightCompaction")
            .field("trigger", &self.trigger)
            .field("snapshot_rows", &self.snapshot_rows)
            .field("frozen_entries", &self.frozen.len())
            .field("pending_deletes", &self.pending_deletes.len())
            .field("finished", &self.build.is_finished())
            .finish()
    }
}

impl DynamicRtIndex {
    /// Builds the dynamic index over an initial `(keys, values)` column pair
    /// (either may be empty; both must have equal length).
    pub fn build(
        device: &Device,
        keys: &[u64],
        values: &[u64],
        config: DynamicRtConfig,
    ) -> Result<Self, RtIndexError> {
        if keys.len() != values.len() {
            return Err(RtIndexError::ValueColumnLengthMismatch {
                expected: keys.len(),
                actual: values.len(),
            });
        }
        let base = RtIndex::build(device, keys, config.rx)?;
        let n = keys.len();
        Ok(DynamicRtIndex {
            device: device.clone(),
            config,
            base,
            base_values: device.upload(values),
            live: vec![true; n],
            live_bitmap: device.alloc::<u8>(n.div_ceil(8)),
            dead_rows: 0,
            delta: DeltaBuffer::new(device),
            next_row: u32::try_from(n).expect("base exceeds the rowID space"),
            stats: UpdateStats::default(),
            last_compaction: None,
            inflight: None,
        })
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &DynamicRtConfig {
        &self.config
    }

    /// The device the index lives on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Live entries (base rows not tombstoned + frozen and fresh delta
    /// entries).
    pub fn len(&self) -> usize {
        self.base.key_count() - self.dead_rows + self.frozen_delta_len() + self.delta.len()
    }

    /// True when no live entry is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rows in the immutable base (live and tombstoned).
    pub fn base_rows(&self) -> usize {
        self.base.key_count()
    }

    /// Tombstoned base rows awaiting compaction.
    pub fn dead_base_rows(&self) -> usize {
        self.dead_rows
    }

    /// Live entries buffered in the (fresh) delta.
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Live entries in the frozen delta of an in-flight background
    /// compaction (0 when none is in flight).
    pub fn frozen_delta_len(&self) -> usize {
        self.inflight.as_ref().map_or(0, |c| c.frozen.len())
    }

    /// True while a background compaction rebuild is in flight (frozen
    /// generation present, swap not performed yet).
    pub fn compaction_in_flight(&self) -> bool {
        self.inflight.is_some()
    }

    /// Lifetime update counters.
    pub fn stats(&self) -> &UpdateStats {
        &self.stats
    }

    /// Build metrics of the current base index (the most recent initial
    /// build or compaction rebuild).
    pub fn base_build_metrics(&self) -> &optix_sim::BuildMetrics {
        self.base.build_metrics()
    }

    /// RowIDs allocated so far (the next insert starts here). Unlike
    /// [`DynamicRtIndex::len`] this only ever grows between compactions —
    /// deletes free no rowIDs — so it is the quantity to check against the
    /// rowID space before inserting.
    pub fn allocated_rows(&self) -> u32 {
        self.next_row
    }

    /// Number of compactions performed so far.
    pub fn compaction_count(&self) -> u64 {
        self.stats.compactions
    }

    /// The most recent completed compaction, if any.
    pub fn last_compaction(&self) -> Option<&CompactionEvent> {
        self.last_compaction.as_ref()
    }

    /// Device memory occupied by the dynamic index's *serving* structures:
    /// base (BVH + primitive buffer + key column), value column, validity
    /// bitmap, the delta table and — during a background compaction — the
    /// frozen delta table. The replacement base an in-flight background
    /// rebuild is constructing (plus its build scratch) is **not** counted
    /// here: it allocates against the shared device, so
    /// [`device().memory()`](DynamicRtIndex::device) shows the true
    /// double-footprint while a rebuild is in flight.
    pub fn memory_bytes(&self) -> u64 {
        self.base.total_memory_bytes()
            + self.base_values.size_bytes()
            + self.live_bitmap.size_bytes()
            + self.delta.memory_bytes()
            + self
                .inflight
                .as_ref()
                .map_or(0, |c| c.frozen.memory_bytes())
    }

    /// [`memory_bytes`](DynamicRtIndex::memory_bytes) split by structural
    /// role: `(base, delta, tombstone)` bytes. The base covers the BVH,
    /// primitive/key buffers and the value column; the delta covers the
    /// fresh table plus a frozen generation when a background compaction is
    /// in flight; the tombstone share is the validity bitmap.
    pub fn memory_breakdown(&self) -> (u64, u64, u64) {
        let base = self.base.total_memory_bytes() + self.base_values.size_bytes();
        let delta = self.delta.memory_bytes()
            + self
                .inflight
                .as_ref()
                .map_or(0, |c| c.frozen.memory_bytes());
        (base, delta, self.live_bitmap.size_bytes())
    }

    /// All live `(row, key, value)` entries in ascending row order — the
    /// exact column a compaction (or an oracle) materialises. Base rows
    /// come first, then the frozen delta (when a background compaction is
    /// in flight), then the fresh delta: each generation's rows were
    /// assigned after the previous one's, so concatenation preserves
    /// ascending order.
    pub fn live_entries(&self) -> Vec<(u32, u64, u64)> {
        let keys = self.base.keys();
        let values = self.base_values.as_slice();
        let mut entries: Vec<(u32, u64, u64)> = (0..keys.len())
            .filter(|&row| self.live[row])
            .map(|row| (row as u32, keys[row], values[row]))
            .collect();
        if let Some(inflight) = &self.inflight {
            entries.extend(
                inflight
                    .frozen
                    .entries_sorted_by_row()
                    .iter()
                    .map(|e| (e.row, e.key, e.value)),
            );
        }
        entries.extend(
            self.delta
                .entries_sorted_by_row()
                .iter()
                .map(|e| (e.row, e.key, e.value)),
        );
        entries
    }

    fn validate_keys(&self, keys: &[u64]) -> Result<(), RtIndexError> {
        let mode = self.config.rx.key_mode;
        let max_key = mode.max_key();
        if let Some(&bad) = keys.iter().find(|&&k| k > max_key) {
            return Err(RtIndexError::KeyOutOfRange {
                key: bad,
                mode,
                max_key,
            });
        }
        Ok(())
    }

    /// Rejects a batch that would allocate rowIDs at or beyond the reserved
    /// [`MISS`] sentinel. Checked before any state mutates, so a failed
    /// insert/upsert leaves the index untouched.
    fn validate_row_space(&self, new_rows: usize) -> Result<(), RtIndexError> {
        if self.next_row as u64 + new_rows as u64 >= MISS as u64 {
            return Err(RtIndexError::RowIdSpaceExhausted {
                allocated: self.next_row as u64,
                requested: new_rows as u64,
                limit: MISS as u64 - 1,
            });
        }
        Ok(())
    }

    /// Buffers the inserts in the delta; no compaction check (the public
    /// batch methods run it once, at the batch boundary). Returns the
    /// simulated seconds of the insert kernels.
    fn apply_insert(&mut self, keys: &[u64], values: &[u64]) -> f64 {
        debug_assert!(
            (self.next_row as u64 + keys.len() as u64) < MISS as u64,
            "row space validated by the public batch methods"
        );
        let entries: Vec<(u64, u32, u64)> = keys
            .iter()
            .zip(values)
            .enumerate()
            .map(|(i, (&k, &v))| (k, self.next_row + i as u32, v))
            .collect();
        let simulated = self.delta.insert_batch(&entries);
        self.next_row += keys.len() as u32;
        self.stats.inserted_rows += keys.len() as u64;
        simulated
    }

    /// Tombstones every live entry holding one of `keys` across all
    /// generations (base mask, frozen delta, fresh delta); no compaction
    /// check. When a background rebuild is in flight, the keys are also
    /// recorded for replay onto the new base at the swap. Returns the
    /// deleted row count and the simulated seconds.
    fn apply_delete(&mut self, keys: &[u64]) -> Result<(usize, f64), RtIndexError> {
        let mut simulated = 0.0;
        let mut deleted = 0usize;

        if self.base.key_count() > 0 && !keys.is_empty() {
            let (rows_per_key, metrics) = self.base.collect_point_rows(keys, Some(&self.live))?;
            simulated += metrics.simulated_time_s;
            for row in rows_per_key.into_iter().flatten() {
                if self.live[row as usize] {
                    self.live[row as usize] = false;
                    self.dead_rows += 1;
                    deleted += 1;
                }
            }
        }

        if let Some(inflight) = &mut self.inflight {
            let (removed, frozen_sim) = inflight.frozen.delete_batch(keys);
            simulated += frozen_sim;
            deleted += removed.len();
            // The snapshot already left for the builder: replay the keys on
            // the rebuilt base at the swap. By-key replay is idempotent and
            // covers both the base rows and the frozen entries above.
            inflight.pending_deletes.extend_from_slice(keys);
        }

        let (removed, delta_sim) = self.delta.delete_batch(keys);
        simulated += delta_sim;
        deleted += removed.len();
        self.stats.deleted_rows += deleted as u64;
        Ok((deleted, simulated))
    }

    /// Runs the policy once at the end of a public update batch, folding a
    /// triggered compaction (synchronous merge or background freeze) and a
    /// pre-batch swap into the outcome.
    fn finish_batch(
        &mut self,
        swapped: Option<CompactionEvent>,
        inserted_rows: usize,
        deleted_rows: usize,
        mut simulated: f64,
    ) -> UpdateOutcome {
        self.stats.update_batches += 1;
        if let Some(event) = swapped {
            simulated += event.simulated_build_s;
        }
        let mut compaction = swapped;
        let mut compaction_began = false;
        match self.maybe_compact() {
            Some(TriggeredCompaction::Synchronous(event)) => {
                simulated += event.simulated_build_s;
                debug_assert!(compaction.is_none(), "a swap implies background mode");
                compaction = Some(event);
            }
            Some(TriggeredCompaction::Began) => compaction_began = true,
            None => {}
        }
        self.stats.simulated_update_s += simulated;
        UpdateOutcome {
            inserted_rows,
            deleted_rows,
            simulated_time_s: simulated,
            compaction,
            compaction_began,
        }
    }

    /// Inserts a batch of `(key, value)` rows. Every key is validated
    /// against the configured key mode up front, so a later compaction
    /// rebuild can never fail. Returns what the batch did, including the
    /// compaction it may have triggered or completed.
    ///
    /// Compaction runs at most once, after the whole batch is applied, so
    /// callers observing [`DynamicRtIndex::compaction_count`] between
    /// batches see every row renumbering.
    pub fn insert_batch(
        &mut self,
        keys: &[u64],
        values: &[u64],
    ) -> Result<UpdateOutcome, RtIndexError> {
        if keys.len() != values.len() {
            return Err(RtIndexError::ValueColumnLengthMismatch {
                expected: keys.len(),
                actual: values.len(),
            });
        }
        self.validate_keys(keys)?;
        self.validate_row_space(keys.len())?;
        let swapped = self.auto_poll_swap();
        let simulated = self.apply_insert(keys, values);
        Ok(self.finish_batch(swapped, keys.len(), 0, simulated))
    }

    /// Deletes every live entry whose key appears in `keys` (all duplicates,
    /// wherever they live). Base hits are found by rays — a delete *is* a
    /// lookup — and tombstoned via the validity mask; delta hits are
    /// tombstoned in the hash table. Unknown keys are ignored.
    pub fn delete_batch(&mut self, keys: &[u64]) -> Result<UpdateOutcome, RtIndexError> {
        let swapped = self.auto_poll_swap();
        let (deleted, simulated) = self.apply_delete(keys)?;
        Ok(self.finish_batch(swapped, 0, deleted, simulated))
    }

    /// Upserts a batch: every key's existing entries (base and delta) are
    /// deleted, then one fresh `(key, value)` row is inserted per pair. Like
    /// every update batch, compaction runs at most once, at the end.
    pub fn upsert_batch(
        &mut self,
        keys: &[u64],
        values: &[u64],
    ) -> Result<UpdateOutcome, RtIndexError> {
        if keys.len() != values.len() {
            return Err(RtIndexError::ValueColumnLengthMismatch {
                expected: keys.len(),
                actual: values.len(),
            });
        }
        self.validate_keys(keys)?;
        self.validate_row_space(keys.len())?;
        let swapped = self.auto_poll_swap();
        let (deleted, delete_sim) = self.apply_delete(keys)?;
        let insert_sim = self.apply_insert(keys, values);
        Ok(self.finish_batch(swapped, keys.len(), deleted, delete_sim + insert_sim))
    }

    /// One delta-side hash-probe kernel over `queries`.
    fn delta_point_kernel(
        &self,
        delta: &DeltaBuffer,
        queries: &[u64],
    ) -> gpu_baselines::BaselineBatch {
        let working_set = delta.memory_bytes();
        baseline_kernel::run_lookup_kernel(&self.device, queries.len(), working_set, {
            |ctx, classifier, idx| {
                let key = queries[idx];
                ctx.add_instructions(12); // hash + loop setup
                let mut first_row = MISS;
                let mut hit_count = 0u32;
                let mut sum = 0u64;
                let probed = delta.probe(key, |e| {
                    if first_row == MISS || e.row < first_row {
                        first_row = e.row;
                    }
                    hit_count += 1;
                    sum = sum.wrapping_add(e.value);
                });
                classifier.access(
                    ctx,
                    delta.group_token(key),
                    probed * GROUP_SIZE as u64 * DELTA_SLOT_BYTES,
                );
                ctx.add_instructions(probed * GROUP_SIZE as u64);
                LookupResult {
                    first_row,
                    hit_count,
                    value_sum: sum,
                }
            }
        })
    }

    /// One delta-side scan kernel over `ranges`.
    fn delta_range_kernel(
        &self,
        delta: &DeltaBuffer,
        ranges: &[(u64, u64)],
    ) -> gpu_baselines::BaselineBatch {
        let working_set = delta.memory_bytes();
        let slot_bytes = delta.capacity() as u64 * DELTA_SLOT_BYTES;
        baseline_kernel::run_lookup_kernel(&self.device, ranges.len(), working_set, {
            |ctx, classifier, idx| {
                let (lower, upper) = ranges[idx];
                ctx.add_instructions(8);
                let mut first_row = MISS;
                let mut hit_count = 0u32;
                let mut sum = 0u64;
                delta.scan_range(lower, upper, |e| {
                    if first_row == MISS || e.row < first_row {
                        first_row = e.row;
                    }
                    hit_count += 1;
                    sum = sum.wrapping_add(e.value);
                });
                // The scan streams the whole table once.
                classifier.access(ctx, u64::MAX, slot_bytes);
                ctx.add_instructions(delta.capacity() as u64);
                LookupResult {
                    first_row,
                    hit_count,
                    value_sum: sum,
                }
            }
        })
    }

    /// Answers a batch of point lookups against the merged view. Results
    /// carry the hit counts and value sums of all live entries;
    /// `first_row` is the smallest qualifying rowID. During a background
    /// compaction the view spans old base + frozen delta + fresh delta.
    pub fn point_lookup_batch(&self, queries: &[u64]) -> Result<BatchOutcome, RtIndexError> {
        let mut outcome = self.base.point_lookup_batch_masked(
            queries,
            Some(self.base_values.as_slice()),
            Some(&self.live),
        )?;

        // Delta side: one hash-probe kernel per non-empty delta generation.
        // An empty delta (e.g. right after a compaction) skips its kernel
        // entirely — the host knows the entry count, so a real system would
        // not launch.
        if let Some(inflight) = &self.inflight {
            if !inflight.frozen.is_empty() {
                let batch = self.delta_point_kernel(&inflight.frozen, queries);
                merge_delta_results(&mut outcome, &batch);
            }
        }
        if !self.delta.is_empty() {
            let batch = self.delta_point_kernel(&self.delta, queries);
            merge_delta_results(&mut outcome, &batch);
        }
        Ok(outcome)
    }

    /// Answers a batch of inclusive range lookups `[lower, upper]` against
    /// the merged view. The base side traces range rays; each non-empty
    /// delta generation scans its (small, unordered) table per query.
    pub fn range_lookup_batch(&self, ranges: &[(u64, u64)]) -> Result<BatchOutcome, RtIndexError> {
        let mut outcome = self.base.range_lookup_batch_masked(
            ranges,
            Some(self.base_values.as_slice()),
            Some(&self.live),
        )?;

        if let Some(inflight) = &self.inflight {
            if !inflight.frozen.is_empty() {
                let batch = self.delta_range_kernel(&inflight.frozen, ranges);
                merge_delta_results(&mut outcome, &batch);
            }
        }
        if !self.delta.is_empty() {
            let batch = self.delta_range_kernel(&self.delta, ranges);
            merge_delta_results(&mut outcome, &batch);
        }
        Ok(outcome)
    }

    /// Compacts if the policy says so.
    fn maybe_compact(&mut self) -> Option<TriggeredCompaction> {
        // Never start a second compaction while one is rebuilding; the
        // fresh delta keeps absorbing writes and the policy re-fires after
        // the swap if it is still over budget.
        if self.inflight.is_some() {
            return None;
        }
        let trigger =
            self.config
                .policy
                .trigger(self.delta.len(), self.base.key_count(), self.dead_rows)?;
        if self.config.background {
            self.begin_background_compaction(trigger);
            Some(TriggeredCompaction::Began)
        } else {
            Some(TriggeredCompaction::Synchronous(self.compact(trigger)))
        }
    }

    /// Unconditionally merges every generation into a rebuilt base,
    /// synchronously. If a background rebuild is in flight, its swap is
    /// awaited first, then the remaining delta merges; the returned event
    /// describes the final (synchronous) merge.
    pub fn compact_now(&mut self) -> CompactionEvent {
        let _ = self.wait_for_compaction();
        self.compact(CompactionTrigger::Manual)
    }

    /// Freezes the current delta and starts the background rebuild.
    fn begin_background_compaction(&mut self, trigger: CompactionTrigger) {
        debug_assert!(self.inflight.is_none());
        let mut keys = Vec::with_capacity(self.len());
        let mut values = Vec::with_capacity(self.len());
        for (_, key, value) in self.live_entries() {
            keys.push(key);
            values.push(value);
        }
        let snapshot_rows = keys.len();
        let frozen = std::mem::replace(&mut self.delta, DeltaBuffer::new(&self.device));
        // Every key was validated at insert/build time, so the rebuild
        // cannot fail on key range; any failure here is a logic error.
        let build = RtIndex::build_async(&self.device, keys, self.config.rx)
            .expect("background compaction rebuild");
        self.inflight = Some(InflightCompaction {
            trigger,
            merged_delta_entries: frozen.len(),
            dropped_base_tombstones: self.dead_rows,
            frozen,
            snapshot_rows,
            values,
            pending_deletes: Vec::new(),
            build,
        });
    }

    /// Swaps in a *finished* background rebuild, if any. Non-blocking: an
    /// unfinished rebuild keeps serving from the frozen generation.
    pub fn poll_compaction(&mut self) -> Option<CompactionEvent> {
        let event = self.poll_swap()?;
        self.stats.simulated_update_s += event.simulated_build_s;
        Some(event)
    }

    /// Blocks until an in-flight background rebuild lands and swaps it in
    /// (a real join on the builder thread, not a spin). Returns `None`
    /// when no compaction is in flight.
    pub fn wait_for_compaction(&mut self) -> Option<CompactionEvent> {
        let inflight = self.inflight.take()?;
        let event = self.swap_in(inflight);
        self.stats.simulated_update_s += event.simulated_build_s;
        Some(event)
    }

    /// The automatic swap landing at the start of every update batch —
    /// disabled under [`DynamicRtConfig::auto_swap`]` = false`, where a
    /// durability wrapper controls (and logs) the swap points explicitly
    /// through [`DynamicRtIndex::poll_compaction`].
    fn auto_poll_swap(&mut self) -> Option<CompactionEvent> {
        if self.config.auto_swap {
            self.poll_swap()
        } else {
            None
        }
    }

    /// Swaps in a finished rebuild without blocking. Returns `None` while
    /// none is available. The caller accounts the simulated build time
    /// (batch outcomes and stats differ).
    fn poll_swap(&mut self) -> Option<CompactionEvent> {
        if !self.inflight.as_ref()?.build.is_finished() {
            return None;
        }
        let inflight = self.inflight.take().expect("checked above");
        Some(self.swap_in(inflight))
    }

    /// The swap: replaces (old base + frozen delta) with the rebuilt base,
    /// replaying deletes recorded during the rebuild onto the new validity
    /// mask. The fresh delta and its rowIDs carry over unchanged. Blocks
    /// until the rebuild completes (instant when the caller checked
    /// `is_finished`).
    fn swap_in(&mut self, inflight: InflightCompaction) -> CompactionEvent {
        let new_base = inflight.build.wait();
        debug_assert_eq!(new_base.key_count(), inflight.snapshot_rows);

        let mut live = vec![true; inflight.snapshot_rows];
        let mut dead_rows = 0usize;
        if !inflight.pending_deletes.is_empty() {
            let doomed: std::collections::HashSet<u64> =
                inflight.pending_deletes.iter().copied().collect();
            for (row, &key) in new_base.keys().iter().enumerate() {
                if doomed.contains(&key) {
                    live[row] = false;
                    dead_rows += 1;
                }
            }
        }

        let simulated_build_s = new_base.build_metrics().simulated_time_s;
        let quality = BvhQuality::measure(new_base.accel().bvh());
        self.base = new_base;
        self.base_values = self.device.upload(&inflight.values);
        self.live_bitmap = self.device.alloc::<u8>(inflight.snapshot_rows.div_ceil(8));
        self.live = live;
        self.dead_rows = dead_rows;
        // The fresh delta stays. When it still holds rows, their IDs above
        // the snapshot remain valid, so the allocator cannot move; when it
        // is empty, nothing lives above the snapshot and the allocator
        // resets like a synchronous merge — without this, sustained churn
        // under background compaction would leak the u32 rowID space.
        if self.delta.is_empty() {
            self.next_row = inflight.snapshot_rows as u32;
        }

        let event = CompactionEvent {
            trigger: inflight.trigger,
            live_rows: inflight.snapshot_rows - dead_rows,
            merged_delta_entries: inflight.merged_delta_entries,
            dropped_base_tombstones: inflight.dropped_base_tombstones,
            simulated_build_s,
            background: true,
            quality,
        };
        self.stats.compactions += 1;
        self.last_compaction = Some(event);
        event
    }

    fn compact(&mut self, trigger: CompactionTrigger) -> CompactionEvent {
        debug_assert!(self.inflight.is_none(), "synchronous compaction only");
        let merged_delta_entries = self.delta.len();
        let dropped_base_tombstones = self.dead_rows;

        // The merged column is exactly the live entry sequence in ascending
        // row order — [`live_entries`](Self::live_entries) is the single
        // definition of that order, shared with the verification oracle.
        let mut keys = Vec::with_capacity(self.len());
        let mut values = Vec::with_capacity(self.len());
        for (_, key, value) in self.live_entries() {
            keys.push(key);
            values.push(value);
        }

        // Every key was validated at insert/build time, so the rebuild
        // cannot fail on key range; any failure here is a logic error.
        let rebuilt =
            RtIndex::build(&self.device, &keys, self.config.rx).expect("compaction rebuild");
        let simulated_build_s = rebuilt.build_metrics().simulated_time_s;
        let quality = BvhQuality::measure(rebuilt.accel().bvh());

        self.base = rebuilt;
        self.base_values = self.device.upload(&values);
        self.live = vec![true; keys.len()];
        self.live_bitmap = self.device.alloc::<u8>(keys.len().div_ceil(8));
        self.dead_rows = 0;
        self.delta = DeltaBuffer::new(&self.device);
        self.next_row = keys.len() as u32;

        let event = CompactionEvent {
            trigger,
            live_rows: keys.len(),
            merged_delta_entries,
            dropped_base_tombstones,
            simulated_build_s,
            background: false,
            quality,
        };
        self.stats.compactions += 1;
        self.last_compaction = Some(event);
        event
    }
}

/// What the end-of-batch policy check did.
enum TriggeredCompaction {
    /// A stop-the-world merge completed (background mode off).
    Synchronous(CompactionEvent),
    /// A background rebuild was started (two-generation mode).
    Began,
}

/// Folds the delta-side partial results into the base outcome: counts and
/// sums add, the first row is the minimum, and the launch metrics merge so
/// callers see the cost of both kernels.
fn merge_delta_results(outcome: &mut BatchOutcome, delta: &gpu_baselines::BaselineBatch) {
    debug_assert_eq!(outcome.results.len(), delta.results.len());
    for (merged, partial) in outcome.results.iter_mut().zip(&delta.results) {
        if partial.hit_count == 0 {
            continue;
        }
        *merged = LookupResult {
            first_row: merged.first_row.min(partial.first_row),
            hit_count: merged.hit_count + partial.hit_count,
            value_sum: merged.value_sum.wrapping_add(partial.value_sum),
        };
    }
    outcome.metrics.merge(&LaunchMetrics {
        kernel: delta.kernel,
        simulated_time_s: delta.simulated_time_s,
        host_time: delta.host_time,
        ..Default::default()
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompactionPolicy;
    use rtx_workloads::truth::DynamicOracle;

    fn background_config(max_delta_entries: usize) -> DynamicRtConfig {
        DynamicRtConfig::default()
            .with_policy(CompactionPolicy {
                max_delta_entries,
                max_delta_fraction: f64::INFINITY,
                max_delete_ratio: f64::INFINITY,
            })
            .with_background_compaction(true)
    }

    fn assert_matches_oracle(index: &DynamicRtIndex, oracle: &DynamicOracle, queries: &[u64]) {
        let out = index.point_lookup_batch(queries).expect("lookup");
        for (&q, r) in queries.iter().zip(&out.results) {
            assert_eq!(*r, oracle.point(q), "key {q}");
        }
    }

    #[test]
    fn background_compaction_serves_reads_during_rebuild_and_swaps_later() {
        let device = Device::default_eval();
        let keys: Vec<u64> = (0..256).collect();
        let values: Vec<u64> = (0..256).map(|k| k * 10).collect();
        let mut index =
            DynamicRtIndex::build(&device, &keys, &values, background_config(16)).unwrap();
        let mut oracle = DynamicOracle::new(&keys, &values);

        // Trip the policy: the batch freezes the delta instead of stalling.
        let fresh: Vec<u64> = (1000..1016).collect();
        let fresh_values: Vec<u64> = fresh.iter().map(|k| k * 10).collect();
        let outcome = index.insert_batch(&fresh, &fresh_values).unwrap();
        oracle.insert_batch(&fresh, &fresh_values);
        assert!(outcome.compaction_began, "policy must freeze in background");
        assert!(outcome.compaction.is_none(), "nothing completed yet");
        assert!(index.compaction_in_flight());
        assert_eq!(index.frozen_delta_len(), 16);
        assert_eq!(index.delta_len(), 0, "fresh generation starts empty");
        oracle.begin_compaction();

        // Reads during the rebuild serve the merged three-generation view.
        let queries: Vec<u64> = (0..1100).step_by(7).collect();
        assert_matches_oracle(&index, &oracle, &queries);
        let ranges = [(0u64, 64u64), (900, 1200), (100, 90)];
        let out = index.range_lookup_batch(&ranges).unwrap();
        for (&(lo, hi), r) in ranges.iter().zip(&out.results) {
            assert_eq!(*r, oracle.range(lo, hi), "range [{lo}, {hi}]");
        }

        // Writes during the rebuild: inserts land in the fresh delta,
        // deletes tombstone every generation and are replayed at the swap.
        // Each write may also be the one that lands the swap (rebuild speed
        // is not deterministic), so mirror whatever the outcome reports, in
        // the index's own order: swap before the batch's operations (it may
        // reset the row allocator), freeze after them.
        let mut swap_event = None;
        let pre = |oracle: &mut DynamicOracle,
                   swap_event: &mut Option<CompactionEvent>,
                   outcome: &UpdateOutcome| {
            if let Some(event) = outcome.compaction {
                assert!(event.background);
                oracle.finish_compaction();
                *swap_event = Some(event);
            }
        };
        let post = |oracle: &mut DynamicOracle, outcome: &UpdateOutcome| {
            if outcome.compaction_began {
                oracle.begin_compaction();
            }
        };
        let out = index.insert_batch(&[2000, 2001], &[1, 2]).unwrap();
        pre(&mut oracle, &mut swap_event, &out);
        oracle.insert_batch(&[2000, 2001], &[1, 2]);
        post(&mut oracle, &out);
        let out = index.delete_batch(&[3, 1002, 2000]).unwrap();
        pre(&mut oracle, &mut swap_event, &out);
        oracle.delete_batch(&[3, 1002, 2000]);
        post(&mut oracle, &out);
        assert_matches_oracle(&index, &oracle, &queries);

        // Claim the swap (if a write above did not already land it): rows
        // renumber exactly like the oracle's two-phase mirror.
        let event = swap_event.unwrap_or_else(|| {
            let event = index.wait_for_compaction().expect("rebuild in flight");
            oracle.finish_compaction();
            event
        });
        assert!(event.background);
        assert_eq!(event.merged_delta_entries, 16);
        assert!(event.quality.sah_cost > 0.0, "rebuild quality is surfaced");
        assert!(
            (270..=272).contains(&event.live_rows),
            "snapshot rows minus any snapshot keys deleted mid-rebuild, got {}",
            event.live_rows
        );
        assert!(!index.compaction_in_flight());
        assert_eq!(index.compaction_count(), 1);
        assert_matches_oracle(&index, &oracle, &queries);

        // Life goes on in the new generation (a new freeze may begin if the
        // fresh delta is over budget again — mirror it).
        let out = index.insert_batch(&[5000], &[50]).unwrap();
        pre(&mut oracle, &mut swap_event, &out);
        oracle.insert_batch(&[5000], &[50]);
        post(&mut oracle, &out);
        let out = index.delete_batch(&[10]).unwrap();
        pre(&mut oracle, &mut swap_event, &out);
        oracle.delete_batch(&[10]);
        post(&mut oracle, &out);
        assert_matches_oracle(&index, &oracle, &queries);
    }

    #[test]
    fn compact_now_waits_for_the_inflight_rebuild_then_merges_everything() {
        let device = Device::default_eval();
        let keys: Vec<u64> = (0..64).collect();
        let values = vec![7u64; 64];
        let mut index =
            DynamicRtIndex::build(&device, &keys, &values, background_config(8)).unwrap();
        let began = index
            .insert_batch(&(100..108).collect::<Vec<u64>>(), &[1; 8])
            .unwrap();
        assert!(began.compaction_began);
        index.insert_batch(&[200], &[2]).unwrap();

        let event = index.compact_now();
        assert!(!event.background, "the final merge is synchronous");
        assert_eq!(index.compaction_count(), 2, "swap + manual merge");
        assert_eq!(index.delta_len(), 0);
        assert_eq!(index.len(), 64 + 8 + 1);
        assert_eq!(index.allocated_rows() as usize, index.len());
        let out = index.point_lookup_batch(&[200]).unwrap();
        assert_eq!(out.results[0].hit_count, 1);
    }

    #[test]
    fn no_second_compaction_starts_while_one_is_in_flight() {
        let device = Device::default_eval();
        let keys: Vec<u64> = (0..512).collect();
        let values = vec![1u64; 512];
        let mut index =
            DynamicRtIndex::build(&device, &keys, &values, background_config(4)).unwrap();
        let first = index
            .insert_batch(&[1000, 1001, 1002, 1003], &[0; 4])
            .unwrap();
        assert!(first.compaction_began);
        assert!(index.compaction_in_flight());
        // Far over budget again, but an in-flight rebuild defers the next
        // trigger: a second freeze can only begin once the first swap has
        // landed (which this very batch may perform).
        let second = index
            .insert_batch(&[2000, 2001, 2002, 2003], &[0; 4])
            .unwrap();
        assert!(
            !second.compaction_began || second.compaction.is_some(),
            "a second freeze requires the first swap to have landed"
        );
        index.wait_for_compaction();
        index.compact_now();
        assert!(!index.compaction_in_flight());
        assert_eq!(index.len(), 512 + 8);
        assert_eq!(index.delta_len(), 0);
    }

    #[test]
    fn swap_resets_the_row_allocator_when_the_fresh_delta_is_empty() {
        let device = Device::default_eval();
        let keys: Vec<u64> = (0..128).collect();
        let values = vec![0u64; 128];
        let mut index =
            DynamicRtIndex::build(&device, &keys, &values, background_config(8)).unwrap();
        let mut oracle = DynamicOracle::new(&keys, &values);

        // Trigger a freeze; nothing is inserted into the fresh generation,
        // so the swap can reclaim the rowID space like a synchronous merge.
        let fresh: Vec<u64> = (500..508).collect();
        let out = index.insert_batch(&fresh, &[1; 8]).unwrap();
        oracle.insert_batch(&fresh, &[1; 8]);
        assert!(out.compaction_began);
        oracle.begin_compaction();
        index.wait_for_compaction().expect("rebuild in flight");
        oracle.finish_compaction();
        assert_eq!(index.allocated_rows(), 136, "allocator reset to snapshot");

        // The next insert lands right after the snapshot, on both sides.
        index.insert_batch(&[900], &[9]).unwrap();
        oracle.insert_batch(&[900], &[9]);
        assert_eq!(index.point_lookup_batch(&[900]).unwrap().results[0], {
            oracle.point(900)
        });
        assert_eq!(oracle.point(900).first_row, 136);
    }

    #[test]
    fn synchronous_compaction_reports_quality() {
        let device = Device::default_eval();
        let keys: Vec<u64> = (0..128).collect();
        let values = vec![1u64; 128];
        let mut index = DynamicRtIndex::build(
            &device,
            &keys,
            &values,
            DynamicRtConfig::default().with_policy(CompactionPolicy::never()),
        )
        .unwrap();
        index.insert_batch(&[500, 501], &[5, 5]).unwrap();
        let event = index.compact_now();
        assert!(!event.background);
        assert!(event.quality.sah_cost > 0.0);
        assert!(event.quality.leaf_count > 0);
        assert_eq!(event.live_rows, 130);
    }
}
