//! Sharding vocabulary of the query layer: shard specs, key routing and the
//! scatter/gather plan.
//!
//! The sharded execution engine itself lives above this crate (`rtx-shard`,
//! which also implements the concrete partitioners), but the *vocabulary* —
//! how a sharded backend is named, how keys are routed and how a mixed
//! [`QueryBatch`] is split into per-shard sub-batches and gathered back —
//! belongs to the query API so that the [`Registry`](crate::Registry) can
//! resolve names like `"RX@8"` and so that planning stays a pure,
//! independently testable step.
//!
//! The plan treats the two partitioning families differently:
//!
//! * **point lookups** are always routed to the single shard owning the key;
//! * **range lookups** are *split at partition boundaries* under range
//!   partitioning (each shard sees only the sub-range it owns) and
//!   *broadcast* under hash partitioning (every shard may hold keys of the
//!   range);
//! * **inverted ranges** (`lower > upper`) are routed nowhere and gather as
//!   the uniform empty result.

use crate::batch::{QueryBatch, QueryOp, QueryOps};
use crate::types::{BatchOutcome, LookupResult, QueryOutcome};

/// How a sharded backend distributes the key space over its shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Partitioning {
    /// Keys are routed by a hash of the key: points touch one shard, ranges
    /// are broadcast to every shard. The default.
    #[default]
    Hash,
    /// The `u64` key domain is cut into contiguous spans (one per shard):
    /// points touch one shard, ranges are split at the span boundaries.
    Range,
}

impl Partitioning {
    /// The spelling used in shard-spec names (`"hash"` / `"range"`).
    pub fn name(&self) -> &'static str {
        match self {
            Partitioning::Hash => "hash",
            Partitioning::Range => "range",
        }
    }
}

/// Per-shard load snapshot of a sharded backend: how many primitive
/// operations each shard has served and how many live rows it holds.
///
/// Returned by [`SecondaryIndex::shard_load`](crate::SecondaryIndex::shard_load)
/// (`None` on unsharded backends) and consumed by the hot-shard detection in
/// `rtx-serve` / `rtx-shard`: a sustained [`imbalance_ratio`] above a
/// threshold marks the [`hottest_shard`] as a rebalance candidate.
///
/// [`imbalance_ratio`]: ShardLoad::imbalance_ratio
/// [`hottest_shard`]: ShardLoad::hottest_shard
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardLoad {
    /// Primitive operations routed to each shard (point/range lookups plus
    /// routed update rows) since the backend was built or its counters were
    /// last reset by a rebalance pass.
    pub ops: Vec<u64>,
    /// Live rows currently owned by each shard.
    pub rows: Vec<u64>,
}

impl ShardLoad {
    /// Number of shards in the snapshot.
    pub fn shard_count(&self) -> usize {
        self.ops.len()
    }

    /// Total operations across all shards.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().sum()
    }

    /// Ratio of the hottest shard's op count to the per-shard mean: `1.0`
    /// is perfectly balanced, `shard_count()` is everything-on-one-shard.
    /// Returns `0.0` while no operations have been observed (never NaN).
    pub fn imbalance_ratio(&self) -> f64 {
        let total = self.total_ops();
        if total == 0 || self.ops.is_empty() {
            return 0.0;
        }
        let max = *self.ops.iter().max().expect("non-empty") as f64;
        let mean = total as f64 / self.ops.len() as f64;
        max / mean
    }

    /// Index of the shard that served the most operations; `None` while no
    /// operations have been observed.
    pub fn hottest_shard(&self) -> Option<usize> {
        if self.total_ops() == 0 {
            return None;
        }
        self.ops
            .iter()
            .enumerate()
            .max_by_key(|&(_, ops)| ops)
            .map(|(shard, _)| shard)
    }
}

/// What one shard-rebalance pass did: how many rows migrated between shards
/// and how many inner reorganisations (delta compactions) the migration
/// batches triggered. `moved_rows == 0` means the pass decided the layout
/// was already acceptable (or the backend has no shards to move).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Rows migrated from a donor shard to a receiver shard.
    pub moved_rows: u64,
    /// Inner structural reorganisations triggered by the migration batches.
    pub reorganisations: u64,
}

/// A parsed sharded-backend name: the inner backend, the shard count and the
/// partitioning strategy.
///
/// The textual form is `"<backend>@<shards>"` with an optional
/// `":hash"` / `":range"` suffix — `"RX@8"`, `"SA@4:range"`,
/// `"RXD@2:hash"`. Any name the registry does not know verbatim is tried as
/// a shard spec, so sharded variants of every registered backend are
/// buildable without registering each combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Registry name of the inner backend every shard runs.
    pub backend: String,
    /// Number of shards (must be at least 1).
    pub shards: usize,
    /// How keys are distributed over the shards.
    pub partitioning: Partitioning,
}

impl ShardSpec {
    /// A hash-partitioned spec.
    pub fn hash(backend: &str, shards: usize) -> Self {
        ShardSpec {
            backend: backend.to_string(),
            shards,
            partitioning: Partitioning::Hash,
        }
    }

    /// A range-partitioned spec.
    pub fn range(backend: &str, shards: usize) -> Self {
        ShardSpec {
            backend: backend.to_string(),
            shards,
            partitioning: Partitioning::Range,
        }
    }

    /// Parses `"<backend>@<shards>[:hash|:range]"`. Returns `None` when the
    /// name does not have that shape (it is then an ordinary backend name);
    /// a zero shard count parses — [`Registry`](crate::Registry) rejects it
    /// with a precise error instead of "unknown backend".
    pub fn parse(name: &str) -> Option<ShardSpec> {
        let (backend, rest) = name.split_once('@')?;
        if backend.is_empty() {
            return None;
        }
        let (count, partitioning) = match rest.split_once(':') {
            Some((count, "hash")) => (count, Partitioning::Hash),
            Some((count, "range")) => (count, Partitioning::Range),
            Some(_) => return None,
            None => (rest, Partitioning::Hash),
        };
        let shards: usize = count.parse().ok()?;
        Some(ShardSpec {
            backend: backend.to_string(),
            shards,
            partitioning,
        })
    }

    /// The canonical textual form (`"RX@8"` for hash — the default — and
    /// `"RX@8:range"` for range partitioning).
    pub fn name(&self) -> String {
        match self.partitioning {
            Partitioning::Hash => format!("{}@{}", self.backend, self.shards),
            Partitioning::Range => format!("{}@{}:range", self.backend, self.shards),
        }
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Routes keys (and key ranges) to shards. Implemented by the concrete
/// partitioners in `rtx-shard`; consumed by [`ScatterPlan`].
pub trait KeyRouter: Send + Sync {
    /// Number of shards keys are routed across.
    fn shard_count(&self) -> usize;

    /// The shard owning `key`. Must be total over the `u64` domain and
    /// stable across calls (updates and lookups must agree).
    fn shard_of_point(&self, key: u64) -> usize;

    /// The shards a non-inverted range `[lower, upper]` must consult, each
    /// with the sub-range it should answer. Sub-ranges must cover every key
    /// of the range exactly once across the returned shards (split for
    /// range partitioning, full-range broadcast for hash partitioning).
    fn shards_of_range(&self, lower: u64, upper: u64) -> Vec<(usize, (u64, u64))>;
}

/// The scatter side of a sharded execution: one SoA sub-batch
/// ([`QueryOps`]) per shard plus the submission-order slot each
/// sub-operation answers, so the gather can merge per-shard outcomes back
/// into one [`QueryOutcome`].
///
/// Plans are reusable: [`replan`](ScatterPlan::replan) /
/// [`replan_ops`](ScatterPlan::replan_ops) clear and refill an existing
/// plan in place, keeping every per-shard buffer's capacity — a sharded
/// executor pools its plans and replans submissions allocation-free at
/// steady state.
#[derive(Debug, Clone, Default)]
pub struct ScatterPlan {
    /// Number of operations in the planned batch.
    submitted_ops: usize,
    /// One sub-batch per shard (possibly empty). Value-fetch and chunk-size
    /// settings are inherited from the planned batch.
    sub_ops: Vec<QueryOps>,
    /// For each shard, the originating slot of each of its sub-operations.
    slots: Vec<Vec<usize>>,
}

impl ScatterPlan {
    /// Plans `batch` over the shards of `router`. Points go to their owning
    /// shard, ranges go wherever the router sends them, inverted ranges go
    /// nowhere (their slots gather as the empty result).
    pub fn plan(batch: &QueryBatch, router: &dyn KeyRouter) -> ScatterPlan {
        let mut plan = ScatterPlan::default();
        plan.replan(batch, router);
        plan
    }

    /// Re-plans `batch` into this plan in place (see [`plan`](ScatterPlan::plan)
    /// for the routing rules), reusing every buffer.
    pub fn replan(&mut self, batch: &QueryBatch, router: &dyn KeyRouter) {
        self.replan_iter(
            batch.ops().iter().copied(),
            batch.len(),
            batch.fetches_values(),
            batch.chunk_size(),
            router,
        );
    }

    /// Re-plans an SoA op stream into this plan in place.
    pub fn replan_ops(&mut self, ops: &QueryOps, router: &dyn KeyRouter) {
        self.replan_iter(
            ops.iter(),
            ops.len(),
            ops.fetches_values(),
            ops.chunk_size(),
            router,
        );
    }

    fn replan_iter<I: Iterator<Item = QueryOp>>(
        &mut self,
        ops: I,
        len: usize,
        fetch_values: bool,
        chunk_size: Option<usize>,
        router: &dyn KeyRouter,
    ) {
        let shards = router.shard_count();
        self.sub_ops.resize_with(shards, QueryOps::new);
        self.sub_ops.truncate(shards);
        self.slots.resize_with(shards, Vec::new);
        self.slots.truncate(shards);
        for sub in &mut self.sub_ops {
            sub.clear();
            sub.set_fetch_values(fetch_values);
            sub.set_chunk_size(chunk_size.unwrap_or(0));
        }
        for shard_slots in &mut self.slots {
            shard_slots.clear();
        }
        self.submitted_ops = len;
        for (slot, op) in ops.enumerate() {
            match op {
                QueryOp::Point(key) => {
                    let s = router.shard_of_point(key);
                    self.sub_ops[s].push_point(key);
                    self.slots[s].push(slot);
                }
                QueryOp::Range(lower, upper) => {
                    if lower > upper {
                        continue;
                    }
                    for (s, (sub_lower, sub_upper)) in router.shards_of_range(lower, upper) {
                        self.sub_ops[s].push_range(sub_lower, sub_upper);
                        self.slots[s].push(slot);
                    }
                }
            }
        }
    }

    /// The per-shard SoA sub-batches, indexed by shard.
    pub fn sub_ops(&self) -> &[QueryOps] {
        &self.sub_ops
    }

    /// The originating submission-order slots of shard `s`'s sub-operations.
    pub fn slots(&self, s: usize) -> &[usize] {
        &self.slots[s]
    }

    /// Number of shards with a non-empty sub-batch.
    pub fn active_shards(&self) -> usize {
        self.sub_ops.iter().filter(|b| !b.is_empty()).count()
    }

    /// Gathers per-shard outcomes (one per shard, in shard order, already
    /// translated to global rowIDs by the caller) back into submission
    /// order: slots fed by several shards merge via [`LookupResult::merge`],
    /// slots fed by none stay misses, and launch metrics merge across
    /// shards.
    ///
    /// # Panics
    ///
    /// Panics when an outcome's result count does not match its shard's
    /// planned sub-batch (a sharded executor bug, not a caller mistake).
    pub fn gather(&self, outcomes: Vec<BatchOutcome>) -> QueryOutcome {
        assert_eq!(
            outcomes.len(),
            self.sub_ops.len(),
            "gather needs one outcome per shard"
        );
        let mut merged = QueryOutcome {
            results: vec![LookupResult::miss(); self.submitted_ops],
            metrics: Default::default(),
        };
        for (s, outcome) in outcomes.into_iter().enumerate() {
            assert_eq!(
                outcome.results.len(),
                self.slots[s].len(),
                "shard {s} answered {} of {} planned operations",
                outcome.results.len(),
                self.slots[s].len()
            );
            for (&slot, result) in self.slots[s].iter().zip(&outcome.results) {
                merged.results[slot].merge(result);
            }
            merged.metrics.merge(&outcome.metrics);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MISS;

    /// A router over `shards` equal contiguous spans of `0..domain`, with
    /// everything at/above `domain` owned by the last shard.
    struct SpanRouter {
        shards: usize,
        domain: u64,
    }

    impl SpanRouter {
        fn span(&self, s: usize) -> (u64, u64) {
            let width = self.domain / self.shards as u64;
            let lo = s as u64 * width;
            let hi = if s + 1 == self.shards {
                u64::MAX
            } else {
                lo + width - 1
            };
            (lo, hi)
        }
    }

    impl KeyRouter for SpanRouter {
        fn shard_count(&self) -> usize {
            self.shards
        }
        fn shard_of_point(&self, key: u64) -> usize {
            let width = self.domain / self.shards as u64;
            ((key / width) as usize).min(self.shards - 1)
        }
        fn shards_of_range(&self, lower: u64, upper: u64) -> Vec<(usize, (u64, u64))> {
            (self.shard_of_point(lower)..=self.shard_of_point(upper))
                .map(|s| {
                    let (lo, hi) = self.span(s);
                    (s, (lower.max(lo), upper.min(hi)))
                })
                .collect()
        }
    }

    /// Broadcast router: points by modulo, ranges to every shard whole.
    struct ModRouter {
        shards: usize,
    }

    impl KeyRouter for ModRouter {
        fn shard_count(&self) -> usize {
            self.shards
        }
        fn shard_of_point(&self, key: u64) -> usize {
            (key % self.shards as u64) as usize
        }
        fn shards_of_range(&self, lower: u64, upper: u64) -> Vec<(usize, (u64, u64))> {
            (0..self.shards).map(|s| (s, (lower, upper))).collect()
        }
    }

    #[test]
    fn spec_parsing_round_trips() {
        assert_eq!(ShardSpec::parse("RX@8"), Some(ShardSpec::hash("RX", 8)));
        assert_eq!(
            ShardSpec::parse("SA@4:range"),
            Some(ShardSpec::range("SA", 4))
        );
        assert_eq!(
            ShardSpec::parse("B+@2:hash"),
            Some(ShardSpec::hash("B+", 2))
        );
        assert_eq!(ShardSpec::parse("RX@0"), Some(ShardSpec::hash("RX", 0)));
        for not_a_spec in ["RX", "@8", "RX@", "RX@x", "RX@8:zigzag", "RX@8:"] {
            assert_eq!(ShardSpec::parse(not_a_spec), None, "{not_a_spec}");
        }
        let spec = ShardSpec::range("RXD", 7);
        assert_eq!(spec.name(), "RXD@7:range");
        assert_eq!(ShardSpec::parse(&spec.name()), Some(spec.clone()));
        assert_eq!(spec.to_string(), "RXD@7:range");
        assert_eq!(ShardSpec::hash("HT", 2).name(), "HT@2");
        assert_eq!(Partitioning::Hash.name(), "hash");
        assert_eq!(Partitioning::Range.name(), "range");
    }

    #[test]
    fn plan_routes_points_and_splits_ranges() {
        let router = SpanRouter {
            shards: 4,
            domain: 400,
        };
        let batch = QueryBatch::new()
            .point(5) // shard 0
            .range(90, 210) // shards 0..=2, split
            .point(399) // shard 3
            .range(50, 10) // inverted: routed nowhere
            .fetch_values(true)
            .with_chunk_size(7);
        let plan = ScatterPlan::plan(&batch, &router);
        assert_eq!(plan.sub_ops().len(), 4);
        assert_eq!(plan.active_shards(), 4);
        let sub = |s: usize| plan.sub_ops()[s].iter().collect::<Vec<_>>();
        assert_eq!(sub(0), &[QueryOp::Point(5), QueryOp::Range(90, 99)]);
        assert_eq!(sub(1), &[QueryOp::Range(100, 199)]);
        assert_eq!(sub(2), &[QueryOp::Range(200, 210)]);
        assert_eq!(sub(3), &[QueryOp::Point(399)]);
        assert_eq!(plan.slots(0), &[0, 1]);
        assert_eq!(plan.slots(1), &[1]);
        assert_eq!(plan.slots(2), &[1]);
        assert_eq!(plan.slots(3), &[2]);
        for sub in plan.sub_ops() {
            assert!(sub.fetches_values());
            assert_eq!(sub.chunk_size(), Some(7));
        }
    }

    #[test]
    fn replanning_reuses_buffers_and_matches_a_fresh_plan() {
        let router = SpanRouter {
            shards: 4,
            domain: 400,
        };
        let big = QueryBatch::new()
            .points((0..100).map(|i| i * 4))
            .range(90, 210)
            .fetch_values(true);
        let small = QueryBatch::new().point(5).range(50, 10).with_chunk_size(3);
        let mut plan = ScatterPlan::plan(&big, &router);
        plan.replan(&small, &router);
        let fresh = ScatterPlan::plan(&small, &router);
        assert_eq!(plan.submitted_ops, fresh.submitted_ops);
        for s in 0..4 {
            assert_eq!(
                plan.sub_ops()[s].iter().collect::<Vec<_>>(),
                fresh.sub_ops()[s].iter().collect::<Vec<_>>()
            );
            assert_eq!(plan.slots(s), fresh.slots(s));
            assert!(!plan.sub_ops()[s].fetches_values(), "flags re-derived");
            assert_eq!(plan.sub_ops()[s].chunk_size(), Some(3));
        }
        // Replanning from the SoA form agrees with the enum form.
        let mut from_ops = ScatterPlan::default();
        from_ops.replan_ops(&QueryOps::from_batch(&small), &router);
        for s in 0..4 {
            assert_eq!(
                from_ops.sub_ops()[s].iter().collect::<Vec<_>>(),
                fresh.sub_ops()[s].iter().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn plan_broadcasts_ranges_under_hash_routing() {
        let router = ModRouter { shards: 3 };
        let batch = QueryBatch::new().range(10, 20).point(4);
        let plan = ScatterPlan::plan(&batch, &router);
        for s in 0..3 {
            assert!(plan.sub_ops()[s]
                .iter()
                .any(|op| op == QueryOp::Range(10, 20)));
        }
        assert_eq!(plan.sub_ops()[1].iter().nth(1), Some(QueryOp::Point(4)));
        assert_eq!(plan.slots(1), &[0, 1]);
    }

    #[test]
    fn gather_merges_shared_slots_and_defaults_to_miss() {
        let router = SpanRouter {
            shards: 2,
            domain: 200,
        };
        // Slot 0: range split over both shards; slot 1: inverted range.
        let batch = QueryBatch::new().range(50, 150).range(9, 1);
        let plan = ScatterPlan::plan(&batch, &router);
        let shard0 = BatchOutcome {
            results: vec![LookupResult {
                first_row: 7,
                hit_count: 2,
                value_sum: 10,
            }],
            ..Default::default()
        };
        let shard1 = BatchOutcome {
            results: vec![LookupResult {
                first_row: 3,
                hit_count: 1,
                value_sum: 5,
            }],
            ..Default::default()
        };
        let merged = plan.gather(vec![shard0, shard1]);
        assert_eq!(merged.results.len(), 2);
        assert_eq!(merged.results[0].first_row, 3);
        assert_eq!(merged.results[0].hit_count, 3);
        assert_eq!(merged.results[0].value_sum, 15);
        assert_eq!(merged.results[1].first_row, MISS);
        assert!(!merged.results[1].is_hit());
    }

    #[test]
    #[should_panic(expected = "answered")]
    fn gather_rejects_miscounted_shard_outcomes() {
        let plan = ScatterPlan::plan(&QueryBatch::new().point(1), &ModRouter { shards: 1 });
        let _ = plan.gather(vec![BatchOutcome::default()]);
    }
}
