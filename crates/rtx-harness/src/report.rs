//! Plain-text report tables.
//!
//! Experiments produce [`Table`]s that render as aligned text, one per paper
//! table/figure (or sub-figure). Keeping the output plain text (rather than
//! JSON/CSV) makes `cargo run -p rtx-harness -- <experiment>` directly
//! comparable with the rows the paper prints.

/// A report table: a title, a header row and data rows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    /// Title shown above the table (e.g. "Figure 10a: lookup throughput").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each row has one cell per header.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    /// Panics when the row length does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Returns the values of one column (by header name), if present.
    pub fn column(&self, header: &str) -> Option<Vec<&str>> {
        let idx = self.headers.iter().position(|h| h == header)?;
        Some(self.rows.iter().map(|r| r[idx].as_str()).collect())
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a millisecond value with two decimals.
pub fn fmt_ms(ms: f64) -> String {
    format!("{ms:.2}")
}

/// Formats a throughput value (operations per second) in engineering
/// notation.
pub fn fmt_throughput(ops_per_s: f64) -> String {
    format!("{ops_per_s:.3e}")
}

/// Formats a byte count as GiB with two decimals.
pub fn fmt_gib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1u64 << 30) as f64)
}

/// Formats a ratio/percentage with one decimal.
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.1}", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_text() {
        let mut t = Table::new("Demo", &["index", "time [ms]"]);
        t.push_row(vec!["RX".to_string(), "12.50".to_string()]);
        t.push_row(vec!["HT".to_string(), "7.03".to_string()]);
        let text = t.render();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("index"));
        assert!(text.contains("12.50"));
        assert_eq!(t.column("index").unwrap(), vec!["RX", "HT"]);
        assert!(t.column("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_length_panics() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["only one".to_string()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ms(12.345), "12.35");
        assert_eq!(fmt_gib(1 << 30), "1.00");
        assert_eq!(fmt_pct(0.755), "75.5");
        assert!(fmt_throughput(1.5e7).contains('e'));
    }
}
