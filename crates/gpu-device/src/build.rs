//! Cost model of the staged, parallel acceleration-structure build.
//!
//! A GPU driver builds a BVH with a *pipeline* of kernels — snapshot the
//! primitives, Morton-encode and sort them, emit the subtree hierarchies,
//! stitch the top levels, compact — not with one monolithic launch. This
//! module gives each stage a kernel-cost shape ([`stage_stats`]) and charges
//! the pipeline as a whole ([`staged_build_cost`]) under a configurable
//! build-queue width: the data-parallel stages split their grid over
//! `workers` concurrent queues (the same width policy as
//! [`worker_count`](crate::worker_count), which also drives the host-side
//! execution in `rtx-bvh`), so the simulated wall time of a stage is the
//! cost of its critical-path chunk while the launch overhead is paid once
//! per kernel. Serial stages (the top-level stitch) never scale.
//!
//! The per-worker chunk still runs through the ordinary roofline
//! [`CostModel`](crate::CostModel), so scaling is *sub*-linear where it
//! should be: small chunks lose occupancy (and with it achieved bandwidth),
//! and the fixed per-launch overheads are unaffected by width — which is why
//! tiny builds see almost no speedup and large builds approach the queue
//! count.

use crate::profiler::KernelStats;
use crate::Device;

/// One stage of the staged build pipeline, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildStage {
    /// Snapshot the primitive buffer into build records (bounds, centroid,
    /// index).
    Snapshot,
    /// Morton-encode the centroids and radix-sort the records by code.
    MortonSort,
    /// Emit the per-subtree hierarchies over the sorted records.
    EmitSubtrees,
    /// Stitch the subtree roots together with the top-level interior nodes.
    Stitch,
    /// Compact the hierarchy into its tight footprint.
    Compact,
}

/// Number of pipeline stages.
pub const BUILD_STAGE_COUNT: usize = 5;

impl BuildStage {
    /// Every stage, in execution order.
    pub const ALL: [BuildStage; BUILD_STAGE_COUNT] = [
        BuildStage::Snapshot,
        BuildStage::MortonSort,
        BuildStage::EmitSubtrees,
        BuildStage::Stitch,
        BuildStage::Compact,
    ];

    /// Short display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            BuildStage::Snapshot => "snapshot",
            BuildStage::MortonSort => "morton-sort",
            BuildStage::EmitSubtrees => "emit-subtrees",
            BuildStage::Stitch => "stitch",
            BuildStage::Compact => "compact",
        }
    }

    /// Position in [`BuildStage::ALL`].
    pub fn index(&self) -> usize {
        match self {
            BuildStage::Snapshot => 0,
            BuildStage::MortonSort => 1,
            BuildStage::EmitSubtrees => 2,
            BuildStage::Stitch => 3,
            BuildStage::Compact => 4,
        }
    }

    /// Whether the stage's grid is split over the concurrent build queues.
    /// The top-level stitch touches only the subtree roots and runs serial.
    pub fn is_parallel(&self) -> bool {
        !matches!(self, BuildStage::Stitch)
    }
}

/// Size of the work the pipeline runs over, from which every stage's kernel
/// shape derives.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildWork {
    /// Primitives in the build input.
    pub prims: u64,
    /// Bytes of the primitive buffer (36 per triangle, 16 per sphere, …).
    pub prim_buffer_bytes: u64,
    /// Bytes of the emitted hierarchy (nodes + primitive order).
    pub bvh_bytes: u64,
    /// Subtrees emitted by the parallel stage (1 when the build is one
    /// subtree).
    pub subtrees: u64,
    /// Whether the pipeline runs the Morton-sort stage (LBVH). A builder
    /// without it (SAH) skips that stage's charge and instead pays heavier
    /// emission — its top-down binning re-sorts every slice per level.
    pub morton_sort: bool,
}

/// Bytes of one snapshotted build record: 24-byte bounds + 12-byte centroid
/// + 4-byte primitive index.
const RECORD_BYTES: u64 = 40;

/// Bytes of one sort pair: 8-byte Morton code + 4-byte record index.
const SORT_PAIR_BYTES: u64 = 12;

/// Radix-sort passes over the 64-bit Morton codes (8-bit digits), matching
/// the `gpu_baselines` radix sort the SA/B+ builds are charged with.
const SORT_PASSES: u64 = 8;

/// The kernel-cost shape of one build stage.
pub fn stage_stats(stage: BuildStage, work: &BuildWork) -> KernelStats {
    let n = work.prims;
    let pair_bytes = n * SORT_PAIR_BYTES;
    match stage {
        // One pass over the primitive buffer, one record written per prim.
        BuildStage::Snapshot => KernelStats {
            threads_launched: n,
            kernel_launches: 1,
            instructions: n * 12,
            dram_bytes_read: work.prim_buffer_bytes,
            dram_bytes_written: n * RECORD_BYTES,
            ..KernelStats::new()
        },
        // Morton encoding plus the 8-pass LSD radix sort of (code, index)
        // pairs — the same family of sort behind the SA build.
        BuildStage::MortonSort => KernelStats {
            threads_launched: n,
            kernel_launches: 1 + SORT_PASSES,
            instructions: n * 30 + n * SORT_PASSES * 4,
            dram_bytes_read: n * RECORD_BYTES + pair_bytes * SORT_PASSES,
            dram_bytes_written: pair_bytes + pair_bytes * SORT_PASSES,
            ..KernelStats::new()
        },
        // Hierarchy emission: the builders stream the records a few times
        // (splits re-read their slice per level near the top) and write
        // the whole hierarchy once. Without a Morton pre-sort (SAH), the
        // emit additionally bins and re-sorts each slice along its split
        // axis at every level, which is why the quality builder is the
        // slower one.
        BuildStage::EmitSubtrees => {
            let (instr_per_prim, record_passes, launches) = if work.morton_sort {
                (90, 3, 1)
            } else {
                // The per-level binning and slice re-sorts replace the
                // Morton pre-sort — strictly more traffic and launches
                // than the radix passes they stand in for.
                (220, 10, 1 + SORT_PASSES + 1)
            };
            KernelStats {
                threads_launched: n,
                kernel_launches: launches,
                instructions: n * instr_per_prim,
                dram_bytes_read: n * RECORD_BYTES * record_passes,
                dram_bytes_written: work.bvh_bytes,
                ..KernelStats::new()
            }
        }
        // Top-level stitch: reads the subtree root nodes, writes the spine
        // interiors and the fixed-up child pointers.
        BuildStage::Stitch => KernelStats {
            threads_launched: work.subtrees.max(1),
            kernel_launches: 1,
            instructions: work.subtrees.max(1) * 64,
            dram_bytes_read: work.subtrees.max(1) * 64,
            dram_bytes_written: work.subtrees.max(1) * 64,
            ..KernelStats::new()
        },
        // Compaction copies the hierarchy into its tight allocation.
        BuildStage::Compact => KernelStats {
            threads_launched: n,
            kernel_launches: 1,
            instructions: n * 4,
            dram_bytes_read: work.bvh_bytes,
            dram_bytes_written: work.bvh_bytes,
            ..KernelStats::new()
        },
    }
}

/// Scales a stage's shape down to the critical-path chunk of one of
/// `workers` concurrent build queues. Launches are *not* divided: each
/// queue's launches overlap, so the overhead of the widest queue is what
/// the wall clock sees.
fn chunk_of(stats: &KernelStats, workers: u64) -> KernelStats {
    KernelStats {
        threads_launched: stats.threads_launched.div_ceil(workers),
        kernel_launches: stats.kernel_launches,
        instructions: stats.instructions.div_ceil(workers),
        dram_bytes_read: stats.dram_bytes_read.div_ceil(workers),
        dram_bytes_written: stats.dram_bytes_written.div_ceil(workers),
        ..*stats
    }
}

/// Simulated seconds of one stage executed across `workers` build queues.
pub fn stage_simulated_time(
    device: &Device,
    stage: BuildStage,
    stats: &KernelStats,
    workers: usize,
) -> f64 {
    let workers = effective_workers(stage, stats.threads_launched, workers);
    let chunk = chunk_of(stats, workers as u64);
    device.cost_model().simulated_time(&chunk).as_seconds()
}

/// The queue width a stage can actually use: serial stages run on one
/// queue, and no stage can use more queues than it has threads.
fn effective_workers(stage: BuildStage, threads: u64, workers: usize) -> usize {
    if !stage.is_parallel() {
        return 1;
    }
    workers.max(1).min(threads.max(1) as usize)
}

/// The simulated cost of one staged build.
#[derive(Debug, Clone, Copy, Default)]
pub struct StagedBuildCost {
    /// Simulated seconds per stage, indexed by [`BuildStage::index`].
    pub stage_s: [f64; BUILD_STAGE_COUNT],
    /// Sum over the stages.
    pub total_s: f64,
}

impl StagedBuildCost {
    /// Simulated seconds of one stage.
    pub fn stage(&self, stage: BuildStage) -> f64 {
        self.stage_s[stage.index()]
    }
}

/// Charges a staged build against `device`: computes each stage's simulated
/// time under `workers` concurrent build queues, records every stage kernel
/// (with its *full* counters — the profiler sees total work, the wall clock
/// sees the chunked critical path) and returns the per-stage cost.
/// `run_compaction` skips the compaction stage's charge when the build left
/// the structure uncompacted.
pub fn staged_build_cost(
    device: &Device,
    work: &BuildWork,
    workers: usize,
    run_compaction: bool,
) -> StagedBuildCost {
    let mut cost = StagedBuildCost::default();
    for stage in BuildStage::ALL {
        if matches!(stage, BuildStage::Compact) && !run_compaction {
            continue;
        }
        if matches!(stage, BuildStage::MortonSort) && !work.morton_sort {
            continue;
        }
        let stats = stage_stats(stage, work);
        let seconds = stage_simulated_time(device, stage, &stats, workers);
        device.profiler().record_kernel(stats);
        cost.stage_s[stage.index()] = seconds;
        cost.total_s += seconds;
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(prims: u64) -> BuildWork {
        BuildWork {
            prims,
            prim_buffer_bytes: prims * 36,
            bvh_bytes: prims * 24,
            subtrees: 64,
            morton_sort: true,
        }
    }

    #[test]
    fn stage_metadata_is_consistent() {
        assert_eq!(BuildStage::ALL.len(), BUILD_STAGE_COUNT);
        for (i, stage) in BuildStage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
            assert!(!stage.name().is_empty());
        }
        assert!(!BuildStage::Stitch.is_parallel());
        assert!(BuildStage::MortonSort.is_parallel());
    }

    #[test]
    fn more_workers_shrink_large_builds() {
        let device = Device::default_eval();
        let w = work(1 << 20);
        let serial = staged_build_cost(&device, &w, 1, true);
        let wide = staged_build_cost(&device, &w, 8, true);
        assert!(serial.total_s > 0.0);
        let speedup = serial.total_s / wide.total_s;
        assert!(
            speedup >= 3.0,
            "8 build queues must give at least 3x on 2^20 prims, got {speedup:.2}x"
        );
        assert!(speedup <= 8.0 + 1e-9, "cannot beat the queue count");
    }

    #[test]
    fn tiny_builds_are_overhead_dominated() {
        let device = Device::default_eval();
        let w = work(256);
        let serial = staged_build_cost(&device, &w, 1, true);
        let wide = staged_build_cost(&device, &w, 16, true);
        // Launch overhead is unaffected by queue width, so the speedup on a
        // tiny build stays small.
        assert!(serial.total_s / wide.total_s < 2.0);
    }

    #[test]
    fn stitch_never_scales_and_compaction_is_optional() {
        let device = Device::default_eval();
        let w = work(1 << 16);
        let serial = staged_build_cost(&device, &w, 1, true);
        let wide = staged_build_cost(&device, &w, 8, true);
        assert_eq!(
            serial.stage(BuildStage::Stitch),
            wide.stage(BuildStage::Stitch),
            "the stitch stage is serial"
        );
        let uncompacted = staged_build_cost(&device, &w, 8, false);
        assert_eq!(uncompacted.stage(BuildStage::Compact), 0.0);
        assert!(uncompacted.total_s < wide.total_s);
    }

    #[test]
    fn every_stage_kernel_is_recorded() {
        let device = Device::default_eval();
        let before = device.profiler().kernels_recorded();
        let _ = staged_build_cost(&device, &work(1024), 4, true);
        assert_eq!(
            device.profiler().kernels_recorded(),
            before + BUILD_STAGE_COUNT as u64
        );
    }

    #[test]
    fn sortless_builds_skip_the_morton_stage_but_pay_heavier_emission() {
        let device = Device::default_eval();
        let sorted = work(1 << 16);
        let sortless = BuildWork {
            morton_sort: false,
            ..sorted
        };
        let lbvh = staged_build_cost(&device, &sorted, 1, true);
        let before = device.profiler().kernels_recorded();
        let sah = staged_build_cost(&device, &sortless, 1, true);
        assert_eq!(
            device.profiler().kernels_recorded(),
            before + BUILD_STAGE_COUNT as u64 - 1,
            "no Morton-sort kernel without a Morton sort"
        );
        assert_eq!(sah.stage(BuildStage::MortonSort), 0.0);
        assert!(
            sah.stage(BuildStage::EmitSubtrees) > lbvh.stage(BuildStage::EmitSubtrees),
            "per-level slice sorting makes the sortless emission heavier"
        );
        assert!(
            sah.total_s >= lbvh.total_s,
            "the quality builder must not be cheaper overall"
        );
    }
}
