//! Secondary-index scan: the paper's evaluation methodology as a runnable
//! program.
//!
//! A GPU-resident fact table has a key column and a value column. A batch of
//! range predicates is answered through a secondary index; the qualifying
//! rowIDs are used to fetch and aggregate the projected values (here: a
//! per-predicate SUM), and the result is verified against a scan-based
//! oracle. Every range-capable backend of the registry runs the identical
//! workload through the unified API.
//!
//! Run with: `cargo run --release --example secondary_index_scan`

use rtindex::{registry, Device, IndexSpec, QueryBatch};
use rtx_workloads as wl;

fn main() {
    let device = Device::default_eval();
    let n = 1usize << 16;
    let seed = 7;

    // The fact table: a shuffled dense key column (e.g. order numbers) and a
    // value column (e.g. revenue in cents).
    let keys = wl::dense_shuffled(n, seed);
    let values = wl::value_column(n, seed + 1);
    println!("fact table: {n} rows");

    // A batch of range predicates: WHERE key BETWEEN l AND l+63.
    let predicates = wl::range_lookups(n as u64, 1 << 12, 64, seed + 2);
    let batch = QueryBatch::of_ranges(&predicates).fetch_values(true);

    // The ground-truth oracle (a plain scan).
    let truth = wl::GroundTruth::new(&keys, Some(&values));
    let expected = truth.batch_range_sum(&predicates);

    let registry = registry();
    let spec = IndexSpec::with_values(&device, &keys, &values);
    for name in registry.backends() {
        let index = registry.build(name, &spec).expect("build");
        if !index.capabilities().range_lookups {
            println!("\n{name}: no range lookups (skipped)");
            continue;
        }
        println!(
            "\n{name} built: {:.2} MiB index memory, simulated build time {:.3} ms",
            index.memory_bytes() as f64 / (1 << 20) as f64,
            index.build_metrics().sim_ms()
        );
        let out = index.execute(&batch).expect("range predicates");
        println!(
            "answered {} range predicates: {} hits, total SUM = {}",
            predicates.len(),
            out.hit_count(),
            out.total_value_sum()
        );
        println!(
            "simulated device time {:.3} ms ({:.1} GiB read from DRAM, cache hit rate {:.1}%)",
            out.sim_ms(),
            out.kernel().dram_bytes_read as f64 / (1u64 << 30) as f64,
            out.kernel().cache_hit_rate() * 100.0
        );
        assert_eq!(
            out.total_value_sum(),
            expected,
            "{name}: index answer must match the scan"
        );
        println!("verified against a scan-based oracle: OK");
    }
}
