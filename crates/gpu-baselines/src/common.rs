//! Shared types and the [`GpuIndex`] trait implemented by all baselines.

use gpu_device::{Device, KernelStats};

// The miss sentinel and per-lookup result type are shared with RX and live
// in `rtx-query` (the canonical home; the historical `gpu_baselines`
// re-exports are gone).
use rtx_query::LookupResult;

/// Result of a batched lookup against a baseline index.
#[derive(Debug, Clone, Default)]
pub struct BaselineBatch {
    /// One result per lookup, in submission order.
    pub results: Vec<LookupResult>,
    /// Merged hardware counters of the lookup kernel.
    pub kernel: KernelStats,
    /// Simulated device time of the kernel.
    pub simulated_time_s: f64,
    /// Host wall-clock time of the software execution.
    pub host_time: std::time::Duration,
}

impl BaselineBatch {
    /// Number of lookups that found at least one qualifying entry.
    pub fn hit_count(&self) -> usize {
        self.results.iter().filter(|r| r.is_hit()).count()
    }

    /// Sum of all per-lookup value sums.
    pub fn total_value_sum(&self) -> u64 {
        self.results
            .iter()
            .map(|r| r.value_sum)
            .fold(0u64, u64::wrapping_add)
    }

    /// Merges another batch's metrics and results into this one.
    pub fn merge(&mut self, mut other: BaselineBatch) {
        self.results.append(&mut other.results);
        self.kernel.merge(&other.kernel);
        self.simulated_time_s += other.simulated_time_s;
        self.host_time += other.host_time;
    }
}

/// Metrics of a baseline index build.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineBuildMetrics {
    /// Host wall-clock build time.
    pub host_build_time: std::time::Duration,
    /// Simulated device build time.
    pub simulated_time_s: f64,
    /// Temporary device memory used during the build (released afterwards).
    pub scratch_bytes: u64,
}

/// The interface shared by HT, B+ and SA so the experiment harness can drive
/// them uniformly.
pub trait GpuIndex: Send + Sync {
    /// Short display name ("HT", "B+", "SA").
    fn name(&self) -> &'static str;

    /// Number of indexed keys.
    fn key_count(&self) -> usize;

    /// Device memory the index occupies after construction.
    fn memory_bytes(&self) -> u64;

    /// Metrics captured while building.
    fn build_metrics(&self) -> BaselineBuildMetrics;

    /// Whether the index supports range lookups (HT does not).
    fn supports_range(&self) -> bool;

    /// Whether the index supports duplicate keys (B+ does not).
    fn supports_duplicates(&self) -> bool;

    /// Whether the index supports 64-bit keys (B+ does not).
    fn supports_64bit_keys(&self) -> bool;

    /// Batched point lookups, optionally aggregating a value column.
    fn point_lookup_batch(
        &self,
        device: &Device,
        queries: &[u64],
        values: Option<&[u64]>,
    ) -> BaselineBatch;

    /// Batched inclusive range lookups; `None` when unsupported.
    fn range_lookup_batch(
        &self,
        device: &Device,
        ranges: &[(u64, u64)],
        values: Option<&[u64]>,
    ) -> Option<BaselineBatch>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_query::MISS;

    #[test]
    fn miss_constructor_and_predicates() {
        let m = LookupResult::miss();
        assert_eq!(m.first_row, MISS);
        assert!(!m.is_hit());
        let h = LookupResult {
            first_row: 3,
            hit_count: 2,
            value_sum: 10,
        };
        assert!(h.is_hit());
    }

    #[test]
    fn batch_aggregations() {
        let batch = BaselineBatch {
            results: vec![
                LookupResult {
                    first_row: 0,
                    hit_count: 1,
                    value_sum: 5,
                },
                LookupResult::miss(),
                LookupResult {
                    first_row: 2,
                    hit_count: 3,
                    value_sum: 7,
                },
            ],
            ..Default::default()
        };
        assert_eq!(batch.hit_count(), 2);
        assert_eq!(batch.total_value_sum(), 12);
    }

    #[test]
    fn batch_merge_concatenates() {
        let mut a = BaselineBatch {
            results: vec![LookupResult::miss()],
            simulated_time_s: 1.0,
            ..Default::default()
        };
        let b = BaselineBatch {
            results: vec![LookupResult {
                first_row: 1,
                hit_count: 1,
                value_sum: 2,
            }],
            simulated_time_s: 0.5,
            ..Default::default()
        };
        a.merge(b);
        assert_eq!(a.results.len(), 2);
        assert!((a.simulated_time_s - 1.5).abs() < 1e-12);
    }
}
