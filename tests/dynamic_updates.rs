//! Acceptance test of the dynamic-update subsystem: `DynamicRtIndex` must
//! answer identically to the CPU oracle over a 10k-operation mixed workload
//! (inserts, deletes, upserts, point and range lookups; uniform and Zipf
//! key choice), with at least one *automatic* compaction observed
//! mid-workload and the device-memory accounting balanced afterwards.

use rtindex::rtx_delta::CompactionPolicy;
use rtindex::{Device, DynamicRtConfig, DynamicRtIndex, MISS};
use rtx_workloads as wl;
use rtx_workloads::mixed::{mixed_ops, MixedOp, MixedWorkloadConfig};
use rtx_workloads::truth::DynamicOracle;

/// Drives `index` and `oracle` through `ops` in lockstep, comparing every
/// lookup answer, and mirroring each compaction into the oracle.
fn drive_and_verify(
    index: &mut DynamicRtIndex,
    oracle: &mut DynamicOracle,
    ops: &[MixedOp],
) -> (usize, u64) {
    let mut verified_lookups = 0usize;
    let mut seen_compactions = index.compaction_count();
    for (op_idx, op) in ops.iter().enumerate() {
        match op {
            MixedOp::Insert(pairs) => {
                let keys: Vec<u64> = pairs.iter().map(|&(k, _)| k).collect();
                let values: Vec<u64> = pairs.iter().map(|&(_, v)| v).collect();
                index.insert_batch(&keys, &values).expect("insert");
                oracle.insert_batch(&keys, &values);
            }
            MixedOp::Delete(keys) => {
                let outcome = index.delete_batch(keys).expect("delete");
                let expected = oracle.delete_batch(keys);
                assert_eq!(outcome.deleted_rows, expected, "op {op_idx}: delete count");
            }
            MixedOp::Upsert(pairs) => {
                let keys: Vec<u64> = pairs.iter().map(|&(k, _)| k).collect();
                let values: Vec<u64> = pairs.iter().map(|&(_, v)| v).collect();
                let outcome = index.upsert_batch(&keys, &values).expect("upsert");
                let expected = oracle.upsert_batch(&keys, &values);
                assert_eq!(
                    outcome.deleted_rows, expected,
                    "op {op_idx}: upsert deletions"
                );
            }
            MixedOp::PointLookups(queries) => {
                let out = index.point_lookup_batch(queries).expect("point lookups");
                for (q, r) in queries.iter().zip(&out.results) {
                    let truth = oracle.point(*q);
                    assert_eq!(r.hit_count, truth.hit_count, "op {op_idx}: key {q} count");
                    assert_eq!(
                        r.first_row, truth.first_row,
                        "op {op_idx}: key {q} first row"
                    );
                    assert_eq!(r.value_sum, truth.value_sum, "op {op_idx}: key {q} sum");
                }
                verified_lookups += queries.len();
            }
            MixedOp::RangeLookups(ranges) => {
                let out = index.range_lookup_batch(ranges).expect("range lookups");
                for (&(l, u), r) in ranges.iter().zip(&out.results) {
                    let truth = oracle.range(l, u);
                    assert_eq!(r.hit_count, truth.hit_count, "op {op_idx}: [{l},{u}] count");
                    assert_eq!(
                        r.first_row, truth.first_row,
                        "op {op_idx}: [{l},{u}] first row"
                    );
                    assert_eq!(r.value_sum, truth.value_sum, "op {op_idx}: [{l},{u}] sum");
                }
                verified_lookups += ranges.len();
            }
        }
        // Compactions renumber rows; mirror each into the oracle.
        let compactions = index.compaction_count();
        if compactions > seen_compactions {
            assert_eq!(
                compactions,
                seen_compactions + 1,
                "at most one compaction per batch"
            );
            oracle.compact();
            seen_compactions = compactions;
        }
        assert_eq!(index.len(), oracle.len(), "op {op_idx}: live entry count");
    }
    (verified_lookups, seen_compactions)
}

fn run_mixed_workload(config: MixedWorkloadConfig) {
    let device = Device::default_eval();
    let initial_keys = wl::dense_shuffled((config.key_domain / 4) as usize, config.seed);
    let initial_values = wl::value_column(initial_keys.len(), config.seed + 1);

    // Thresholds low enough that the 10k-operation stream compacts several
    // times mid-workload.
    let dyn_config = DynamicRtConfig::default().with_policy(CompactionPolicy {
        max_delta_entries: 1 << 12,
        max_delta_fraction: 0.25,
        max_delete_ratio: 0.25,
    });
    let mut index =
        DynamicRtIndex::build(&device, &initial_keys, &initial_values, dyn_config).unwrap();
    let mut oracle = DynamicOracle::new(&initial_keys, &initial_values);

    let ops = mixed_ops(&config);
    let total_ops: usize = ops.iter().map(MixedOp::len).sum();
    assert_eq!(total_ops, config.total_ops);

    let (verified_lookups, compactions) = drive_and_verify(&mut index, &mut oracle, &ops);

    assert!(
        verified_lookups > 1000,
        "the mix must verify a substantial lookup volume"
    );
    assert!(
        compactions >= 1,
        "the workload must trigger at least one automatic compaction (delta {}, base {})",
        index.delta_len(),
        index.base_rows()
    );
    assert_eq!(
        device.memory().current_bytes(),
        index.memory_bytes(),
        "device memory accounting must balance after compactions"
    );

    // Full final sweep: every key of the domain answers like the oracle.
    let sweep: Vec<u64> = (0..config.key_domain).collect();
    let out = index.point_lookup_batch(&sweep).unwrap();
    for (q, r) in sweep.iter().zip(&out.results) {
        let truth = oracle.point(*q);
        assert_eq!(
            (r.first_row, r.hit_count, r.value_sum),
            (truth.first_row, truth.hit_count, truth.value_sum),
            "final sweep: key {q}"
        );
        if truth.hit_count == 0 {
            assert_eq!(r.first_row, MISS);
        }
    }
}

#[test]
fn uniform_mixed_workload_matches_oracle_10k_ops() {
    run_mixed_workload(MixedWorkloadConfig::uniform(10_000, 4096, 0x00DD_BA11));
}

#[test]
fn zipfian_mixed_workload_matches_oracle_10k_ops() {
    run_mixed_workload(MixedWorkloadConfig::zipfian(10_000, 4096, 1.0, 0x5EED));
}

#[test]
fn heavy_zipf_hot_key_churn_matches_oracle() {
    // theta = 1.5 hammers a handful of hot keys with repeated
    // delete/reinsert/upsert cycles — the delta/tombstone stress case.
    run_mixed_workload(MixedWorkloadConfig::zipfian(6_000, 1024, 1.5, 7));
}
