//! Figure 10: scaling behaviour of all four indexes.
//!
//! * 10a — throughput while varying the number of point lookups,
//! * 10b — throughput while varying the number of indexed keys,
//! * 10c — build time for sorted and unsorted inserts.
//!
//! Qualitative expectations from the paper: HT wins point lookups overall;
//! RX is competitive with (and for small builds better than) the order-based
//! indexes; RX's build is the most expensive and scales linearly.

use rtindex_core::RtIndexConfig;
use rtx_workloads as wl;

use crate::indexes::{build_all_indexes, measure_points};
use crate::report::{fmt_ms, fmt_throughput, Table};
use crate::scale::ExperimentScale;

/// Figure 10a: throughput vs. number of lookups (fixed build size).
pub fn run_lookup_scaling(scale: &ExperimentScale) -> Vec<Table> {
    let device = crate::scaled_device(scale);
    let keys = wl::dense_shuffled(scale.default_keys(), scale.seed);
    let values = wl::value_column(keys.len(), scale.seed + 7);
    let indexes = build_all_indexes(&device, &keys, Some(&values), RtIndexConfig::default());

    let mut table = Table::new(
        "Figure 10a: throughput [lookups/s] vs. number of point lookups",
        &["lookups [2^n]", "HT", "B+", "SA", "RX"],
    );
    for exp in scale.lookup_exponent_sweep(6) {
        let lookups = wl::point_lookups(&keys, 1usize << exp, scale.seed + exp as u64);
        let mut row = vec![exp.to_string()];
        for name in ["HT", "B+", "SA", "RX"] {
            let cell = indexes
                .iter()
                .find(|ix| ix.name() == name)
                .map(|ix| {
                    let m = measure_points(ix.as_ref(), &lookups, true);
                    fmt_throughput(m.throughput(lookups.len()))
                })
                .unwrap_or_else(|| "N/A".to_string());
            row.push(cell);
        }
        table.push_row(row);
    }
    vec![table]
}

/// Figure 10b: throughput vs. number of indexed keys (fixed lookup count).
pub fn run_build_size_scaling(scale: &ExperimentScale) -> Vec<Table> {
    let device = crate::scaled_device(scale);
    let lookup_count = scale.default_lookups();

    let mut table = Table::new(
        "Figure 10b: throughput [lookups/s] vs. number of indexed keys",
        &["keys [2^n]", "HT", "B+", "SA", "RX"],
    );
    for exp in scale.key_exponent_sweep(6) {
        let keys = wl::dense_shuffled(1usize << exp, scale.seed);
        let values = wl::value_column(keys.len(), scale.seed + 7);
        let lookups = wl::point_lookups(&keys, lookup_count, scale.seed + exp as u64);
        let indexes = build_all_indexes(&device, &keys, Some(&values), RtIndexConfig::default());
        let mut row = vec![exp.to_string()];
        for name in ["HT", "B+", "SA", "RX"] {
            let cell = indexes
                .iter()
                .find(|ix| ix.name() == name)
                .map(|ix| {
                    let m = measure_points(ix.as_ref(), &lookups, true);
                    fmt_throughput(m.throughput(lookups.len()))
                })
                .unwrap_or_else(|| "N/A".to_string());
            row.push(cell);
        }
        table.push_row(row);
    }
    vec![table]
}

/// Figure 10c: simulated build time for sorted and unsorted key sets.
pub fn run_build_time(scale: &ExperimentScale) -> Vec<Table> {
    let device = crate::scaled_device(scale);
    let mut table = Table::new(
        "Figure 10c: build time [ms] (unsorted inserts / sorted inserts)",
        &["keys [2^n]", "HT", "B+", "SA", "RX"],
    );
    for exp in [scale.keys_exp - 1, scale.keys_exp] {
        let n = 1usize << exp;
        let unsorted = wl::dense_shuffled(n, scale.seed);
        let sorted = wl::keyset::dense_sorted(n);
        let idx_unsorted = build_all_indexes(&device, &unsorted, None, RtIndexConfig::default());
        let idx_sorted = build_all_indexes(&device, &sorted, None, RtIndexConfig::default());
        let mut row = vec![exp.to_string()];
        for name in ["HT", "B+", "SA", "RX"] {
            let unsorted_ms = idx_unsorted
                .iter()
                .find(|ix| ix.name() == name)
                .map(|ix| fmt_ms(ix.build_metrics().sim_ms()))
                .unwrap_or_else(|| "N/A".to_string());
            let sorted_ms = idx_sorted
                .iter()
                .find(|ix| ix.name() == name)
                .map(|ix| fmt_ms(ix.build_metrics().sim_ms()))
                .unwrap_or_else(|| "N/A".to_string());
            row.push(format!("{unsorted_ms} / {sorted_ms}"));
        }
        table.push_row(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indexes::find_index;

    #[test]
    fn ht_wins_point_lookups_and_rx_is_competitive_with_order_based() {
        let device = crate::default_device();
        let keys = wl::dense_shuffled(1 << 14, 1);
        let values = wl::value_column(keys.len(), 2);
        let lookups = wl::point_lookups(&keys, 1 << 14, 3);
        let indexes = build_all_indexes(&device, &keys, Some(&values), RtIndexConfig::default());
        let time =
            |name: &str| measure_points(find_index(&indexes, name).unwrap(), &lookups, true).sim_ms;
        let (ht, bp, sa, rx) = (time("HT"), time("B+"), time("SA"), time("RX"));
        assert!(ht <= rx, "HT must not lose to RX on uniform point lookups");
        assert!(ht <= bp && ht <= sa, "HT wins overall");
        // RX stays within a small factor of the order-based baselines.
        assert!(
            rx <= 4.0 * bp.min(sa),
            "RX must stay competitive: rx={rx}, b+={bp}, sa={sa}"
        );
    }

    #[test]
    fn rx_build_is_most_expensive_and_scales_with_keys() {
        let device = crate::default_device();
        let small = build_all_indexes(
            &device,
            &wl::dense_shuffled(1 << 12, 1),
            None,
            RtIndexConfig::default(),
        );
        let large = build_all_indexes(
            &device,
            &wl::dense_shuffled(1 << 14, 1),
            None,
            RtIndexConfig::default(),
        );
        let build = |set: &[Box<dyn rtx_query::SecondaryIndex>], name: &str| {
            find_index(set, name).unwrap().build_metrics().sim_ms()
        };
        assert!(build(&small, "RX") >= build(&small, "SA"));
        assert!(build(&small, "RX") >= build(&small, "HT"));
        // At these (deliberately small) test sizes the fixed kernel-launch
        // overhead of the multi-pass BVH build dominates, so the growth is
        // sub-linear; it must still be monotone and bounded.
        let growth = build(&large, "RX") / build(&small, "RX");
        assert!(
            (1.0..8.0).contains(&growth),
            "4x keys must not shrink the build, got {growth}"
        );
    }

    #[test]
    fn smoke_tables() {
        let scale = ExperimentScale::tiny();
        assert!(!run_lookup_scaling(&scale)[0].rows.is_empty());
        assert!(!run_build_size_scaling(&scale)[0].rows.is_empty());
        assert_eq!(run_build_time(&scale)[0].rows.len(), 2);
    }
}
