//! The cost-based predicate planner.
//!
//! Routing works in two stages:
//!
//! 1. **Eligibility** — an index can serve a predicate only when it keys
//!    on the predicate's column and its [`Capabilities`] cover the
//!    compiled operation: range (and prefix) predicates need
//!    `range_lookups`, keys above `u32::MAX` need `full_64bit_keys`, and
//!    value-fetching queries need the index to carry the value column.
//! 2. **Cost** — every eligible index carries a *calibration probe* cost,
//!    measured by executing a small fixed-size batch against the live
//!    index after each (re)build and dividing the simulated launch time by
//!    the operation count. The cheapest probe cost wins; ties break first
//!    on [`MemoryUsage::total`] (prefer the smaller structure), then on
//!    the index name (deterministic plans).
//!
//! A predicate with no eligible index falls back to a full row-store
//! scan — the scan is a fallback, never a cost competitor, so an
//! available index is always preferred. Every decision (all candidates,
//! their costs or ineligibility reasons, the route and its justification)
//! is recorded in the returned [`ExplainPlan`].
//!
//! [`Capabilities`]: rtx_query::Capabilities
//! [`MemoryUsage::total`]: rtx_query::MemoryUsage::total

use rtx_query::{
    Candidate, EncodedRange, ExplainPlan, IndexError, KeySchema, PlanChoice, QueryBatch, Route,
    SecondaryIndex, TableQuery, TableSchema,
};

/// Calibrated per-operation costs of one index, measured by
/// [`Planner::calibrate`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ProbeCost {
    /// Simulated seconds per point lookup.
    pub point_s: f64,
    /// Simulated seconds per range lookup; `None` when the index has no
    /// range capability.
    pub range_s: Option<f64>,
}

/// What the planner sees of one table index (a borrowed snapshot built by
/// the table each time it plans).
#[derive(Debug, Clone)]
pub(crate) struct CandidateView<'a> {
    /// The index's schema name.
    pub name: &'a str,
    /// The backend spec it was built from.
    pub spec: &'a str,
    /// The ordered schema columns it keys on (one entry for classic
    /// single-column indexes).
    pub columns: &'a [String],
    /// The typed key schema for composite indexes; `None` for the
    /// zero-overhead raw-`u64` path.
    pub schema: Option<&'a KeySchema>,
    /// The backend's capability flags.
    pub caps: rtx_query::Capabilities,
    /// Whether the backend carries the value column.
    pub has_values: bool,
    /// Live total memory footprint (the cost tiebreak).
    pub memory: u64,
    /// Calibrated probe costs.
    pub probe: ProbeCost,
}

/// Scores predicates against index candidates and records its decisions
/// (see the [module docs](self) for the cost model).
#[derive(Debug, Clone, Copy)]
pub struct Planner {
    /// Operations per calibration probe batch. Larger probes amortise the
    /// fixed launch overhead, making per-operation costs comparable across
    /// backends.
    pub probe_ops: usize,
    /// Modeled simulated cost of scanning one live row on the fallback
    /// path (charged to query metrics when a predicate routes to a scan).
    pub scan_cost_per_row_s: f64,
}

impl Default for Planner {
    fn default() -> Self {
        Planner {
            probe_ops: 64,
            scan_cost_per_row_s: 1e-9,
        }
    }
}

impl Planner {
    /// Measures an index's per-operation probe costs: one point batch and
    /// (when supported) one range batch of [`probe_ops`](Planner::probe_ops)
    /// operations drawn from `sample_keys` (the index's own keys, so
    /// probes exercise the hit path).
    pub fn calibrate(
        &self,
        index: &dyn SecondaryIndex,
        sample_keys: &[u64],
    ) -> Result<ProbeCost, IndexError> {
        let fallback = [0u64];
        let sample: &[u64] = if sample_keys.is_empty() {
            &fallback
        } else {
            sample_keys
        };
        let ops = self.probe_ops.max(1);
        let points: Vec<u64> = sample.iter().copied().cycle().take(ops).collect();
        let point_out = index.execute(&QueryBatch::of_points(&points))?;
        let point_s = point_out.metrics.simulated_time_s / ops as f64;

        let range_s = if index.capabilities().range_lookups {
            let ranges: Vec<(u64, u64)> =
                points.iter().map(|&k| (k, k.saturating_add(15))).collect();
            let range_out = index.execute(&QueryBatch::of_ranges(&ranges))?;
            Some(range_out.metrics.simulated_time_s / ops as f64)
        } else {
            None
        };
        Ok(ProbeCost { point_s, range_s })
    }

    /// Plans every predicate of `query` against the candidate views,
    /// choosing the cheapest eligible index per predicate and falling back
    /// to a row-store scan when none qualifies.
    pub(crate) fn plan(
        &self,
        query: &TableQuery,
        schema: &TableSchema,
        views: &[CandidateView<'_>],
    ) -> Result<ExplainPlan, IndexError> {
        let mut choices = Vec::with_capacity(query.len());
        for predicate in query.predicates() {
            predicate.validate()?;
            for column in predicate.columns() {
                if schema.column_position(column).is_none() {
                    return Err(IndexError::Backend {
                        backend: "table".to_string().into(),
                        message: format!("predicate on unknown column {column:?}"),
                    });
                }
            }
            // Every index whose *leading* key column matches is a
            // candidate: composite indexes serve leading-column scalar
            // predicates as encoded prefixes.
            let scored: Vec<(Candidate, u64)> = views
                .iter()
                .filter(|v| v.columns.first().map(String::as_str) == Some(predicate.column()))
                .map(|v| (self.score(v, predicate, query.fetches_values()), v.memory))
                .collect();
            let best = scored
                .iter()
                .filter(|(c, _)| c.eligible)
                .min_by(|(a, a_mem), (b, b_mem)| {
                    a.cost
                        .total_cmp(&b.cost)
                        .then_with(|| a_mem.cmp(b_mem))
                        .then_with(|| a.index.cmp(&b.index))
                })
                .map(|(c, _)| c.clone());
            let candidates: Vec<Candidate> = scored.into_iter().map(|(c, _)| c).collect();
            let (route, reason) = match best {
                Some(c) => (
                    Route::Index {
                        index: c.index.clone(),
                        spec: c.spec.clone(),
                    },
                    format!(
                        "cheapest of {} eligible candidate(s) at {:.3e} s/op",
                        candidates.iter().filter(|c| c.eligible).count(),
                        c.cost
                    ),
                ),
                None if candidates.is_empty() => (
                    Route::Scan,
                    format!("no index on column {:?}", predicate.column()),
                ),
                None => (
                    Route::Scan,
                    "no eligible index (capability mismatch)".to_string(),
                ),
            };
            choices.push(PlanChoice {
                predicate: predicate.clone(),
                candidates,
                route,
                reason,
            });
        }
        Ok(ExplainPlan { choices })
    }

    /// Plans every predicate through the single named index, erroring when
    /// the index does not exist, keys on the wrong column, or cannot serve
    /// a predicate — the forced-index arm of planner experiments.
    pub(crate) fn plan_forced(
        &self,
        query: &TableQuery,
        views: &[CandidateView<'_>],
        index: &str,
    ) -> Result<ExplainPlan, IndexError> {
        let view = views
            .iter()
            .find(|v| v.name == index)
            .ok_or_else(|| IndexError::Backend {
                backend: "table".to_string().into(),
                message: format!("no index named {index:?}"),
            })?;
        let mut choices = Vec::with_capacity(query.len());
        for predicate in query.predicates() {
            predicate.validate()?;
            if view.columns.first().map(String::as_str) != Some(predicate.column()) {
                return Err(IndexError::Backend {
                    backend: "table".to_string().into(),
                    message: format!(
                        "index {index:?} keys on column(s) {:?}, not {:?}",
                        view.columns,
                        predicate.column()
                    ),
                });
            }
            let candidate = self.score(view, predicate, query.fetches_values());
            if !candidate.eligible {
                return Err(IndexError::Backend {
                    backend: "table".to_string().into(),
                    message: format!(
                        "index {index:?} cannot serve {predicate}: {}",
                        candidate.detail
                    ),
                });
            }
            choices.push(PlanChoice {
                predicate: predicate.clone(),
                route: Route::Index {
                    index: candidate.index.clone(),
                    spec: candidate.spec.clone(),
                },
                candidates: vec![candidate],
                reason: "forced".to_string(),
            });
        }
        Ok(ExplainPlan { choices })
    }

    /// Scores one candidate for one predicate: eligibility plus the probe
    /// cost of the compiled operation kind. Composite (typed) indexes
    /// compile the predicate against their key schema — equality over every
    /// key column is a point lookup, anything shorter an encoded range —
    /// and pay a limb factor for wider keys.
    fn score(
        &self,
        view: &CandidateView<'_>,
        predicate: &rtx_query::Predicate,
        fetch_values: bool,
    ) -> Candidate {
        let ineligible = |detail: String| Candidate {
            index: view.name.to_string(),
            spec: view.spec.to_string(),
            eligible: false,
            cost: f64::INFINITY,
            detail,
        };
        let eligible = |cost: f64, detail: String| Candidate {
            index: view.name.to_string(),
            spec: view.spec.to_string(),
            eligible: true,
            cost,
            detail,
        };
        if fetch_values && !view.has_values {
            return ineligible("no value column".to_string());
        }
        let Some(schema) = view.schema else {
            // Zero-overhead raw-u64 path: the predicate must compile to a
            // single-column operation on the key column.
            if predicate.as_op().is_none() {
                return ineligible(
                    "single-column index cannot serve a multi-column predicate".to_string(),
                );
            }
            if predicate.needs_ranges() && !view.caps.range_lookups {
                return ineligible("no range-lookup capability".to_string());
            }
            if predicate.max_key() > u64::from(u32::MAX) && !view.caps.full_64bit_keys {
                return ineligible("32-bit keys only".to_string());
            }
            let cost = if predicate.needs_ranges() {
                // Eligibility above guarantees the range probe ran.
                view.probe.range_s.unwrap_or(f64::INFINITY)
            } else {
                view.probe.point_s
            };
            return eligible(
                cost,
                format!("probe {:.3e} s/op, {} B resident", cost, view.memory),
            );
        };
        let Some(op) = predicate.as_typed_op(view.columns) else {
            return ineligible(format!(
                "key columns {:?} do not cover the predicate's columns",
                view.columns
            ));
        };
        let compiled = match schema.compile_op(&op) {
            Ok(compiled) => compiled,
            Err(err) => {
                return ineligible(format!("predicate does not encode under {schema}: {err}"))
            }
        };
        // Anything short of full-arity equality compiles to an encoded
        // range (empties execute as inverted ranges on the same path).
        let is_point = matches!(compiled, EncodedRange::Point(_));
        if !is_point && !view.caps.range_lookups {
            return ineligible("no range-lookup capability (prefix needs an encoded range)".into());
        }
        // Direct single-limb schemas hit the backend with the raw encoded
        // key, which occupies the high bytes of the limb; dictionary-mapped
        // schemas probe mapped keys the build already validated.
        if schema.limbs() == 1 && !view.caps.full_64bit_keys {
            let max_encoded = match &compiled {
                EncodedRange::Point(k) => k.limb(0),
                EncodedRange::Range(_, hi) => hi.limb(0),
                EncodedRange::Empty => 0,
            };
            if max_encoded > u64::from(u32::MAX) {
                return ineligible("32-bit keys only (encoded key overflows)".to_string());
            }
        }
        let base = if is_point {
            view.probe.point_s
        } else {
            view.probe.range_s.unwrap_or(f64::INFINITY)
        };
        let limbs = schema.limbs();
        let cost = base * limbs as f64;
        eligible(
            cost,
            format!(
                "probe {base:.3e} s/op × {limbs} limb(s) under {schema}, {} B resident",
                view.memory
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_query::{Capabilities, ColumnType};

    fn k() -> Vec<String> {
        vec!["k".to_string()]
    }

    fn view<'a>(
        name: &'a str,
        columns: &'a [String],
        caps: Capabilities,
        point_s: f64,
        range_s: Option<f64>,
        memory: u64,
    ) -> CandidateView<'a> {
        CandidateView {
            name,
            spec: name,
            columns,
            schema: None,
            caps,
            has_values: true,
            memory,
            probe: ProbeCost { point_s, range_s },
        }
    }

    fn typed_view<'a>(
        name: &'a str,
        columns: &'a [String],
        schema: &'a KeySchema,
        caps: Capabilities,
        point_s: f64,
        range_s: Option<f64>,
        memory: u64,
    ) -> CandidateView<'a> {
        CandidateView {
            schema: Some(schema),
            ..view(name, columns, caps, point_s, range_s, memory)
        }
    }

    fn caps(ranges: bool) -> Capabilities {
        Capabilities {
            range_lookups: ranges,
            duplicate_keys: true,
            full_64bit_keys: true,
            updates: false,
        }
    }

    #[test]
    fn cheapest_eligible_index_wins_and_decisions_are_recorded() {
        let schema = TableSchema::new(["k"]);
        let k = k();
        let views = vec![
            view("ht", &k, caps(false), 1e-8, None, 100),
            view("rx", &k, caps(true), 5e-8, Some(2e-7), 200),
        ];
        let planner = Planner::default();

        let plan = planner
            .plan(&TableQuery::new().point("k", 3), &schema, &views)
            .unwrap();
        assert_eq!(plan.routed_index(0), Some("ht"));
        assert_eq!(plan.choices[0].candidates.len(), 2);

        // Ranges disqualify the point-only index.
        let plan = planner
            .plan(&TableQuery::new().range("k", 0, 9), &schema, &views)
            .unwrap();
        assert_eq!(plan.routed_index(0), Some("rx"));
        assert!(!plan.choices[0].candidates[0].eligible);
    }

    #[test]
    fn capability_gaps_fall_back_to_scan() {
        let schema = TableSchema::new(["k", "other"]);
        let narrow = Capabilities {
            full_64bit_keys: false,
            ..caps(true)
        };
        let k = k();
        let views = vec![view("bt", &k, narrow, 1e-8, Some(1e-8), 10)];
        let planner = Planner::default();

        // 64-bit key on a 32-bit index: scan.
        let plan = planner
            .plan(&TableQuery::new().point("k", u64::MAX), &schema, &views)
            .unwrap();
        assert_eq!(plan.routed_index(0), None);
        assert_eq!(plan.scan_fallbacks(), 1);

        // Unindexed column: scan with the no-index reason.
        let plan = planner
            .plan(&TableQuery::new().point("other", 1), &schema, &views)
            .unwrap();
        assert_eq!(plan.routed_index(0), None);
        assert!(plan.choices[0].reason.contains("no index"));

        // Unknown column: an error, not a silent scan.
        assert!(planner
            .plan(&TableQuery::new().point("nope", 1), &schema, &views)
            .is_err());
    }

    #[test]
    fn memory_breaks_probe_ties_deterministically() {
        let schema = TableSchema::new(["k"]);
        let k = k();
        let views = vec![
            view("big", &k, caps(false), 1e-8, None, 500),
            view("small", &k, caps(false), 1e-8, None, 50),
        ];
        let plan = Planner::default()
            .plan(&TableQuery::new().point("k", 1), &schema, &views)
            .unwrap();
        assert_eq!(plan.routed_index(0), Some("small"));
    }

    #[test]
    fn forced_plans_validate_the_target_index() {
        let k = k();
        let views = vec![
            view("ht", &k, caps(false), 1e-8, None, 100),
            view("rx", &k, caps(true), 5e-8, Some(2e-7), 200),
        ];
        let planner = Planner::default();
        let q = TableQuery::new().point("k", 3);
        let plan = planner.plan_forced(&q, &views, "rx").unwrap();
        assert_eq!(plan.routed_index(0), Some("rx"));
        assert_eq!(plan.choices[0].reason, "forced");

        // Ranges through the point-only index, or unknown names: errors.
        let ranged = TableQuery::new().range("k", 0, 9);
        assert!(planner.plan_forced(&ranged, &views, "ht").is_err());
        assert!(planner.plan_forced(&q, &views, "nope").is_err());
    }

    fn ab() -> Vec<String> {
        vec!["a".to_string(), "b".to_string()]
    }

    #[test]
    fn composite_predicates_route_to_matching_composite_indexes() {
        let table = TableSchema::new(["a", "b"]);
        let ab = ab();
        let wide = KeySchema::new(vec![ColumnType::U32, ColumnType::U32]).unwrap();
        let views = vec![typed_view(
            "ab",
            &ab,
            &wide,
            caps(true),
            1e-8,
            Some(2e-8),
            100,
        )];
        let planner = Planner::default();

        // A prefix-range over (a, b) routes as one encoded range.
        let q = TableQuery::new().prefix_range(["a", "b"], vec![5], 10, 20);
        let plan = planner.plan(&q, &table, &views).unwrap();
        assert_eq!(plan.routed_index(0), Some("ab"));
        assert!(plan.choices[0].candidates[0].detail.contains("{u32,u32}"));

        // A scalar point on the leading column is served as a prefix.
        let plan = planner
            .plan(&TableQuery::new().point("a", 5), &table, &views)
            .unwrap();
        assert_eq!(plan.routed_index(0), Some("ab"));

        // A predicate on the trailing column alone cannot use the index.
        let plan = planner
            .plan(&TableQuery::new().point("b", 5), &table, &views)
            .unwrap();
        assert_eq!(plan.routed_index(0), None);

        // Column order matters: (b, a) is not a prefix of (a, b).
        let q = TableQuery::new().prefix_tuple(["b", "a"], vec![1, 2]);
        let plan = planner.plan(&q, &table, &views).unwrap();
        assert_eq!(plan.routed_index(0), None);

        // Malformed composite predicates error instead of planning.
        let q = TableQuery::new().prefix_tuple(["a", "b"], vec![1]);
        assert!(planner.plan(&q, &table, &views).is_err());
        let q = TableQuery::new().prefix_tuple(["a", "nope"], vec![1, 2]);
        assert!(planner.plan(&q, &table, &views).is_err());
    }

    #[test]
    fn composite_point_vs_range_capabilities_and_key_widths() {
        let table = TableSchema::new(["a", "b"]);
        let ab = ab();
        let wide = KeySchema::new(vec![ColumnType::U32, ColumnType::U32]).unwrap();
        // A point-only backend without 64-bit keys (the B+ shape).
        let narrow = Capabilities {
            range_lookups: true,
            duplicate_keys: true,
            full_64bit_keys: false,
            updates: false,
        };
        let views = vec![typed_view("ab", &ab, &wide, narrow, 1e-8, Some(2e-8), 100)];
        let planner = Planner::default();

        // Full-arity equality with a zero leading column encodes below
        // u32::MAX: a genuine point lookup, eligible.
        let q = TableQuery::new().prefix_tuple(["a", "b"], vec![0, 5]);
        let plan = planner.plan(&q, &table, &views).unwrap();
        assert_eq!(plan.routed_index(0), Some("ab"));

        // A non-zero leading column pushes the encoded key past 32 bits.
        let q = TableQuery::new().prefix_tuple(["a", "b"], vec![1, 5]);
        let plan = planner.plan(&q, &table, &views).unwrap();
        assert_eq!(plan.routed_index(0), None);
        assert!(plan.choices[0].candidates[0].detail.contains("encoded key"));

        // Values too large for the declared column type do not encode.
        let q = TableQuery::new().prefix_tuple(["a", "b"], vec![0, u64::MAX]);
        let plan = planner.plan(&q, &table, &views).unwrap();
        assert!(!plan.choices[0].candidates[0].eligible);

        // A partial prefix needs range capability.
        let point_only = Capabilities {
            range_lookups: false,
            ..caps(false)
        };
        let views = vec![typed_view("ab", &ab, &wide, point_only, 1e-8, None, 100)];
        let q = TableQuery::new().prefix_tuple(["a"], vec![0]);
        let plan = planner.plan(&q, &table, &views).unwrap();
        assert_eq!(plan.routed_index(0), None);
        assert!(plan.choices[0].candidates[0].detail.contains("range"));
    }

    #[test]
    fn wider_schemas_pay_a_limb_cost_factor() {
        let table = TableSchema::new(["a", "b"]);
        let ab = ab();
        let one_limb = KeySchema::new(vec![ColumnType::U32, ColumnType::U32]).unwrap();
        let two_limb = KeySchema::new(vec![ColumnType::U64, ColumnType::U64]).unwrap();
        assert_eq!((one_limb.limbs(), two_limb.limbs()), (1, 2));
        let views = vec![
            typed_view("wide", &ab, &two_limb, caps(true), 1e-8, Some(2e-8), 100),
            typed_view("narrow", &ab, &one_limb, caps(true), 1e-8, Some(2e-8), 100),
        ];
        let q = TableQuery::new().prefix_range(["a", "b"], vec![0], 1, 2);
        let plan = Planner::default().plan(&q, &table, &views).unwrap();
        // Same probe cost, but the two-limb schema doubles it.
        assert_eq!(plan.routed_index(0), Some("narrow"));
        let by_name = |name: &str| {
            plan.choices[0]
                .candidates
                .iter()
                .find(|c| c.index == name)
                .unwrap()
                .cost
        };
        assert!(by_name("wide") > by_name("narrow"));
    }

    #[test]
    fn single_column_indexes_reject_multi_column_predicates() {
        let table = TableSchema::new(["a", "b"]);
        let a = vec!["a".to_string()];
        let views = vec![view("plain", &a, caps(true), 1e-8, Some(2e-8), 100)];
        let q = TableQuery::new().prefix_tuple(["a", "b"], vec![1, 2]);
        let plan = Planner::default().plan(&q, &table, &views).unwrap();
        assert_eq!(plan.routed_index(0), None);
        assert!(plan.choices[0].candidates[0]
            .detail
            .contains("multi-column"));

        // But a single-column composite predicate degrades to a scalar op.
        let q = TableQuery::new().prefix_tuple(["a"], vec![1]);
        let plan = Planner::default().plan(&q, &table, &views).unwrap();
        assert_eq!(plan.routed_index(0), Some("plain"));
    }
}
