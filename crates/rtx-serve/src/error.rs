//! The service-level error type.

use rtx_query::IndexError;

/// Errors a client of the query service can observe. Admission failures
/// ([`ServeError::Overloaded`]) are the backpressure signal: the client is
/// expected to retry later or shed load, the way any admission-controlled
/// service degrades.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The submission queue is full: admitting this batch would exceed the
    /// service's configured queue depth. Retry later (backpressure).
    Overloaded {
        /// Operations already queued.
        queued_ops: usize,
        /// The admission limit ([`ServiceConfig::max_queue_depth`]).
        ///
        /// [`ServiceConfig::max_queue_depth`]: crate::ServiceConfig::max_queue_depth
        max_queue_depth: usize,
    },
    /// The submission alone is larger than the whole admission limit, so
    /// it could never be admitted no matter how empty the queue is.
    /// Unlike [`ServeError::Overloaded`] this is *not* retryable: split
    /// the batch (or raise
    /// [`ServiceConfig::max_queue_depth`](crate::ServiceConfig::max_queue_depth)).
    TooLarge {
        /// Operations (or write rows) in the submission.
        ops: usize,
        /// The admission limit.
        max_queue_depth: usize,
    },
    /// A write was submitted to a service over a read-only backend.
    ReadOnlyBackend {
        /// Name of the backend the service wraps (interned — cloning this
        /// error clones a pointer, not the name).
        backend: std::sync::Arc<str>,
    },
    /// The service is shutting down (or has stopped) and admits no new
    /// submissions.
    ShuttingDown,
    /// The backend rejected the submission. Admission pre-checks make this
    /// unreachable for well-formed traffic (unsupported operations and
    /// value fetches are rejected at submit), so seeing it means the
    /// backend itself failed.
    Index(IndexError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded {
                queued_ops,
                max_queue_depth,
            } => write!(
                f,
                "service overloaded: {queued_ops} operations queued \
                 (admission limit: {max_queue_depth}); retry later"
            ),
            ServeError::TooLarge {
                ops,
                max_queue_depth,
            } => write!(
                f,
                "submission of {ops} operations exceeds the whole admission limit \
                 ({max_queue_depth}) and can never be admitted; split it"
            ),
            ServeError::ReadOnlyBackend { backend } => {
                write!(
                    f,
                    "service over read-only backend {backend} takes no writes"
                )
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Index(err) => write!(f, "backend error: {err}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Index(err) => Some(err),
            _ => None,
        }
    }
}

impl From<IndexError> for ServeError {
    fn from(err: IndexError) -> Self {
        ServeError::Index(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = ServeError::Overloaded {
            queued_ops: 900,
            max_queue_depth: 512,
        };
        assert!(e.to_string().contains("900"));
        assert!(e.to_string().contains("512"));

        let e = ServeError::TooLarge {
            ops: 100,
            max_queue_depth: 64,
        };
        assert!(e.to_string().contains("never be admitted"));

        let e = ServeError::ReadOnlyBackend {
            backend: "RX@4".into(),
        };
        assert!(e.to_string().contains("RX@4"));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting"));

        let e: ServeError = IndexError::NoValueColumn {
            backend: "SA".into(),
        }
        .into();
        assert!(e.to_string().contains("value fetch"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ServeError::ShuttingDown).is_none());
    }
}
