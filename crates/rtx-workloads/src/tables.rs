//! Multi-column table workloads and the table oracle.
//!
//! The table layer (`rtx-table`) needs workloads one level above the
//! single-column generators: streams of multi-column records arriving as
//! CDC [`IngestBatch`]es, mixed multi-predicate [`TableQuery`] traffic,
//! and a naive reference — [`TableOracle`] — that answers any predicate
//! by scanning its live records, following the exact rowID rules of the
//! table's row store (bulk load occupies `0..n`, inserts take the next
//! fresh rowID, deletes key on the primary column and leave holes,
//! upserts delete-then-insert).
//!
//! Verification pairs a generated stream with the oracle: apply every
//! batch to both the table and the oracle, and compare every query
//! answer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtx_query::{
    IngestBatch, IngestOp, LookupResult, Predicate, QueryOp, Record, TableQuery, TableSchema,
};

/// A scan-based reference table: live `(rowID, record)` entries kept in
/// ascending rowID order.
#[derive(Debug, Clone)]
pub struct TableOracle {
    columns: usize,
    entries: Vec<(u32, Record)>,
    next_row: u32,
}

impl TableOracle {
    /// An empty oracle over `columns` columns.
    pub fn new(columns: usize) -> Self {
        TableOracle {
            columns,
            entries: Vec::new(),
            next_row: 0,
        }
    }

    /// An oracle bulk-loaded with `records` (rowIDs `0..records.len()`).
    pub fn load(columns: usize, records: &[Record]) -> Self {
        let mut oracle = TableOracle::new(columns);
        for record in records {
            oracle.insert(record);
        }
        oracle
    }

    fn insert(&mut self, record: &Record) {
        assert_eq!(record.len(), self.columns, "record arity");
        self.entries.push((self.next_row, record.clone()));
        self.next_row += 1;
    }

    fn delete(&mut self, key: u64) {
        self.entries.retain(|(_, record)| record[0] != key);
    }

    /// Applies one CDC operation under the table's rowID rules.
    pub fn apply(&mut self, op: &IngestOp) {
        match op {
            IngestOp::Insert(record) => self.insert(record),
            IngestOp::Delete(key) => self.delete(*key),
            IngestOp::Upsert(record) => {
                self.delete(record[0]);
                self.insert(record);
            }
        }
    }

    /// Applies a whole batch in order.
    pub fn apply_batch(&mut self, batch: &IngestBatch) {
        for op in batch.ops() {
            self.apply(op);
        }
    }

    /// Number of live rows.
    pub fn row_count(&self) -> usize {
        self.entries.len()
    }

    /// The live records in rowID order.
    pub fn live_records(&self) -> Vec<Record> {
        self.entries.iter().map(|(_, r)| r.clone()).collect()
    }

    /// Answers one predicate by scanning: smallest matching rowID,
    /// match count, and (when `fetch` is set and the schema designates a
    /// value column) the wrapping value sum. Composite predicates match a
    /// record when every prefix column holds its exact value and — when a
    /// range is set — the next column lies inside the inclusive bounds.
    pub fn expected(
        &self,
        schema: &TableSchema,
        predicate: &Predicate,
        fetch: bool,
    ) -> LookupResult {
        let positions: Vec<usize> = predicate
            .columns()
            .iter()
            .map(|c| {
                schema
                    .column_position(c)
                    .expect("predicate on a schema column")
            })
            .collect();
        let value_column = schema
            .value_column
            .as_ref()
            .map(|c| schema.column_position(c).expect("validated schema"));
        let hit = |record: &Record| -> bool {
            match predicate {
                Predicate::Composite { prefix, range, .. } => {
                    let equal = prefix
                        .iter()
                        .zip(&positions)
                        .all(|(&want, &c)| record[c] == want);
                    let bounded = match range {
                        Some((lower, upper)) => {
                            let key = record[positions[prefix.len()]];
                            *lower <= key && key <= *upper
                        }
                        None => true,
                    };
                    equal && bounded
                }
                scalar => {
                    let key = record[positions[0]];
                    match scalar.as_op().expect("scalar predicates compile") {
                        QueryOp::Point(query) => key == query,
                        QueryOp::Range(lower, upper) => lower <= key && key <= upper,
                    }
                }
            }
        };
        let mut result = LookupResult::miss();
        for (row, record) in &self.entries {
            if hit(record) {
                result.first_row = result.first_row.min(*row);
                result.hit_count += 1;
                if fetch {
                    if let Some(vc) = value_column {
                        result.value_sum = result.value_sum.wrapping_add(record[vc]);
                    }
                }
            }
        }
        result
    }

    /// Answers a whole query, one result per predicate.
    pub fn expected_query(&self, schema: &TableSchema, query: &TableQuery) -> Vec<LookupResult> {
        query
            .predicates()
            .iter()
            .map(|p| self.expected(schema, p, query.fetches_values()))
            .collect()
    }
}

/// Shape of a generated CDC record stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TableWorkloadConfig {
    /// Columns per record (the first is the primary column).
    pub columns: usize,
    /// Number of [`IngestBatch`]es to generate.
    pub batches: usize,
    /// Operations per batch.
    pub ops_per_batch: usize,
    /// Relative weight of inserts.
    pub insert_weight: f64,
    /// Relative weight of deletes.
    pub delete_weight: f64,
    /// Relative weight of upserts.
    pub upsert_weight: f64,
    /// Every column value is drawn from `0..key_domain`.
    pub key_domain: u64,
    /// Stream seed.
    pub seed: u64,
}

impl TableWorkloadConfig {
    /// An update-heavy default mix (50% inserts, 30% deletes, 20%
    /// upserts) over `columns`-wide records.
    pub fn uniform(columns: usize, batches: usize, ops_per_batch: usize, seed: u64) -> Self {
        TableWorkloadConfig {
            columns,
            batches,
            ops_per_batch,
            insert_weight: 0.5,
            delete_weight: 0.3,
            upsert_weight: 0.2,
            key_domain: 1 << 12,
            seed,
        }
    }
}

/// Deterministic multi-column records for a bulk load: `rows` records of
/// `columns` values each, every value uniform in `0..key_domain`.
pub fn table_records(columns: usize, rows: usize, key_domain: u64, seed: u64) -> Vec<Record> {
    assert!(columns > 0 && key_domain > 0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5441_424C_4552_4543);
    (0..rows)
        .map(|_| (0..columns).map(|_| rng.gen_range(0..key_domain)).collect())
        .collect()
}

/// Generates the CDC stream described by `config`: a sequence of
/// [`IngestBatch`]es whose deletes and upserts naturally mix hits (keys
/// inserted earlier) and misses.
pub fn ingest_batches(config: &TableWorkloadConfig) -> Vec<IngestBatch> {
    assert!(config.columns > 0, "records need at least one column");
    assert!(
        config.batches > 0 && config.ops_per_batch > 0,
        "the stream needs at least one operation"
    );
    assert!(config.key_domain > 0, "the key domain must be non-empty");
    let weights = [
        config.insert_weight,
        config.delete_weight,
        config.upsert_weight,
    ];
    assert!(
        weights.iter().all(|w| *w >= 0.0) && weights.iter().sum::<f64>() > 0.0,
        "operation weights must be non-negative and not all zero"
    );
    let total_weight: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x494E_4745_5354_4344);
    let record = |rng: &mut StdRng| -> Record {
        (0..config.columns)
            .map(|_| rng.gen_range(0..config.key_domain))
            .collect()
    };
    (0..config.batches)
        .map(|_| {
            let mut batch = IngestBatch::new();
            for _ in 0..config.ops_per_batch {
                let mut pick = rng.gen_range(0.0..total_weight);
                let mut kind = weights.len() - 1;
                for (i, w) in weights.iter().enumerate() {
                    if pick < *w {
                        kind = i;
                        break;
                    }
                    pick -= w;
                }
                batch = match kind {
                    0 => batch.insert(record(&mut rng)),
                    1 => batch.delete(rng.gen_range(0..config.key_domain)),
                    _ => batch.upsert(record(&mut rng)),
                };
            }
            batch
        })
        .collect()
}

/// Shape of a generated multi-predicate query stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TableQueryConfig {
    /// Number of queries.
    pub queries: usize,
    /// Predicates per query.
    pub predicates_per_query: usize,
    /// Columns receiving point predicates (empty disables points).
    pub point_columns: Vec<String>,
    /// Columns receiving range predicates (empty disables ranges).
    pub range_columns: Vec<String>,
    /// Keys are drawn from `0..key_domain`.
    pub key_domain: u64,
    /// Span of generated ranges (`upper = lower + span - 1`).
    pub range_span: u64,
    /// Whether queries fetch value sums.
    pub fetch_values: bool,
    /// Stream seed.
    pub seed: u64,
}

/// Generates the mixed point+range query stream described by `config`,
/// alternating evenly between point and range predicates (columns drawn
/// uniformly from the respective lists).
pub fn table_queries(config: &TableQueryConfig) -> Vec<TableQuery> {
    assert!(
        config.queries > 0 && config.predicates_per_query > 0,
        "the stream needs at least one predicate"
    );
    assert!(
        !config.point_columns.is_empty() || !config.range_columns.is_empty(),
        "at least one predicate column list must be non-empty"
    );
    assert!(config.key_domain > 0 && config.range_span >= 1);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5459_5051_5245_4453);
    (0..config.queries)
        .map(|_| {
            let mut query = TableQuery::new().fetch_values(config.fetch_values);
            for _ in 0..config.predicates_per_query {
                let want_point = if config.range_columns.is_empty() {
                    true
                } else if config.point_columns.is_empty() {
                    false
                } else {
                    rng.gen_range(0..2u32) == 0
                };
                if want_point {
                    let column =
                        &config.point_columns[rng.gen_range(0..config.point_columns.len())];
                    query = query.point(column.clone(), rng.gen_range(0..config.key_domain));
                } else {
                    let column =
                        &config.range_columns[rng.gen_range(0..config.range_columns.len())];
                    let max_lower = config.key_domain.saturating_sub(config.range_span);
                    let lower = rng.gen_range(0..config.key_domain).min(max_lower);
                    query = query.range(column.clone(), lower, lower + config.range_span - 1);
                }
            }
            query
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_query::MISS;

    fn schema() -> TableSchema {
        TableSchema::new(["id", "ts", "amount"]).with_value_column("amount")
    }

    #[test]
    fn oracle_follows_table_rowid_rules() {
        let records: Vec<Record> = vec![vec![1, 10, 100], vec![2, 20, 200], vec![1, 30, 300]];
        let mut oracle = TableOracle::load(3, &records);
        assert_eq!(oracle.row_count(), 3);

        let point = |key| Predicate::Point {
            column: "id".into(),
            key,
        };
        let r = oracle.expected(&schema(), &point(1), true);
        assert_eq!((r.first_row, r.hit_count, r.value_sum), (0, 2, 400));

        // Delete keys on the primary column; rowIDs of survivors persist.
        oracle.apply(&IngestOp::Delete(1));
        let r = oracle.expected(&schema(), &point(2), false);
        assert_eq!((r.first_row, r.hit_count), (1, 1));
        // Inserts take fresh rowIDs past everything ever allocated.
        oracle.apply(&IngestOp::Insert(vec![5, 50, 500]));
        let r = oracle.expected(&schema(), &point(5), false);
        assert_eq!(r.first_row, 3);
        // Upsert = delete all copies + one fresh insert.
        oracle.apply(&IngestOp::Upsert(vec![2, 60, 600]));
        let r = oracle.expected(&schema(), &point(2), true);
        assert_eq!((r.first_row, r.hit_count, r.value_sum), (4, 1, 600));
        // Misses and ranges.
        assert_eq!(oracle.expected(&schema(), &point(9), false).first_row, MISS);
        let range = Predicate::Range {
            column: "ts".into(),
            lower: 50,
            upper: 60,
        };
        let r = oracle.expected(&schema(), &range, true);
        assert_eq!((r.hit_count, r.value_sum), (2, 1100));
    }

    #[test]
    fn oracle_answers_composite_predicates() {
        let records: Vec<Record> = vec![
            vec![1, 10, 100],
            vec![1, 20, 200],
            vec![2, 10, 300],
            vec![1, 30, 400],
        ];
        let oracle = TableOracle::load(3, &records);
        let composite = |prefix: Vec<u64>, range: Option<(u64, u64)>| Predicate::Composite {
            columns: vec!["id".into(), "ts".into()][..prefix.len() + usize::from(range.is_some())]
                .to_vec(),
            prefix,
            range,
        };
        // Full tuple equality.
        let r = oracle.expected(&schema(), &composite(vec![1, 20], None), true);
        assert_eq!((r.first_row, r.hit_count, r.value_sum), (1, 1, 200));
        // Prefix equality plus a range on the next column.
        let r = oracle.expected(&schema(), &composite(vec![1], Some((15, 35))), true);
        assert_eq!((r.first_row, r.hit_count, r.value_sum), (1, 2, 600));
        // Prefix-only equality.
        let r = oracle.expected(&schema(), &composite(vec![1], None), false);
        assert_eq!((r.first_row, r.hit_count), (0, 3));
        // Misses.
        let r = oracle.expected(&schema(), &composite(vec![9, 9], None), false);
        assert_eq!(r.first_row, MISS);
    }

    #[test]
    fn ingest_streams_are_deterministic_and_mixed() {
        let config = TableWorkloadConfig::uniform(3, 20, 16, 11);
        let batches = ingest_batches(&config);
        assert_eq!(batches.len(), 20);
        assert!(batches.iter().all(|b| b.len() == 16));
        assert_eq!(batches, ingest_batches(&config));
        let kinds: std::collections::HashSet<&str> = batches
            .iter()
            .flat_map(|b| b.ops().iter().map(|op| op.kind()))
            .collect();
        assert_eq!(kinds.len(), 3, "all op kinds appear: {kinds:?}");

        // Arity matches the configured column count.
        for batch in &batches {
            for op in batch.ops() {
                if let IngestOp::Insert(r) | IngestOp::Upsert(r) = op {
                    assert_eq!(r.len(), 3);
                }
            }
        }
    }

    #[test]
    fn query_streams_respect_column_lists_and_domains() {
        let config = TableQueryConfig {
            queries: 50,
            predicates_per_query: 3,
            point_columns: vec!["id".into()],
            range_columns: vec!["ts".into()],
            key_domain: 256,
            range_span: 16,
            fetch_values: true,
            seed: 5,
        };
        let queries = table_queries(&config);
        assert_eq!(queries.len(), 50);
        assert_eq!(queries, table_queries(&config));
        let mut points = 0usize;
        let mut ranges = 0usize;
        for q in &queries {
            assert_eq!(q.len(), 3);
            assert!(q.fetches_values());
            for p in q.predicates() {
                match p {
                    Predicate::Point { column, key } => {
                        assert_eq!(column, "id");
                        assert!(*key < 256);
                        points += 1;
                    }
                    Predicate::Range {
                        column,
                        lower,
                        upper,
                    } => {
                        assert_eq!(column, "ts");
                        assert!(lower <= upper && *upper < 256 + config.range_span);
                        assert_eq!(upper - lower + 1, config.range_span);
                        ranges += 1;
                    }
                    other => unreachable!("unexpected predicate kind {other:?}"),
                }
            }
        }
        assert!(points > 0 && ranges > 0, "{points} points, {ranges} ranges");

        // Single-kind configurations stay single-kind.
        let only_points = table_queries(&TableQueryConfig {
            range_columns: Vec::new(),
            ..config.clone()
        });
        assert!(only_points
            .iter()
            .flat_map(|q| q.predicates())
            .all(|p| matches!(p, Predicate::Point { .. })));
    }

    #[test]
    fn oracle_tracks_a_generated_stream() {
        let records = table_records(3, 64, 128, 3);
        assert_eq!(records, table_records(3, 64, 128, 3));
        let mut oracle = TableOracle::load(3, &records);
        for batch in ingest_batches(&TableWorkloadConfig {
            key_domain: 128,
            ..TableWorkloadConfig::uniform(3, 10, 8, 4)
        }) {
            oracle.apply_batch(&batch);
        }
        // The stream deletes and inserts; the oracle stays consistent.
        let live = oracle.live_records();
        assert_eq!(live.len(), oracle.row_count());
        let q = TableQuery::new().range("id", 0, 127).fetch_values(false);
        let got = oracle.expected_query(&schema(), &q);
        assert_eq!(got[0].hit_count as usize, live.len());
    }
}
