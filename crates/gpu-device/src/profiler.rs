//! Kernel-level hardware counters.
//!
//! These mirror the Nsight Compute metrics the paper relies on to explain its
//! results: executed instructions, DRAM traffic, L1/L2 hits, the number of
//! ray/primitive intersection tests (split into hardware-accelerated
//! triangle tests and software intersection-program invocations), BVH node
//! visits and early traversal aborts.

use std::sync::Arc;

use parking_lot::Mutex;

/// Counters collected for one kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Logical threads launched (one per lookup for the raytracing pipeline).
    pub threads_launched: u64,
    /// Kernel launches performed (one per batch).
    pub kernel_launches: u64,
    /// Instructions executed by the programmable cores (everything that is
    /// *not* done by fixed-function RT hardware).
    pub instructions: u64,
    /// Bytes read from device memory (after the cache).
    pub dram_bytes_read: u64,
    /// Bytes written to device memory.
    pub dram_bytes_written: u64,
    /// Bytes served from the L1 cache.
    pub l1_hit_bytes: u64,
    /// Bytes served from the L2 cache.
    pub l2_hit_bytes: u64,
    /// Ray/triangle intersection tests executed by RT cores.
    pub rt_triangle_tests: u64,
    /// Software intersection-program invocations (spheres, AABBs).
    pub sw_intersection_tests: u64,
    /// BVH nodes visited during traversal.
    pub bvh_nodes_visited: u64,
    /// Ray/box tests performed during BVH traversal (fixed-function).
    pub rt_box_tests: u64,
    /// Traversals that terminated early because no child volume could
    /// contain the searched key (the "early abort" effect behind Fig. 14).
    pub early_aborts: u64,
    /// Any-hit program invocations (reported hits).
    pub any_hit_invocations: u64,
}

impl KernelStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes requested by the kernel (DRAM + caches).
    pub fn total_bytes_accessed(&self) -> u64 {
        self.dram_bytes_read + self.l1_hit_bytes + self.l2_hit_bytes
    }

    /// Fraction of read requests served by L1/L2 (0 when nothing was read).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.total_bytes_accessed();
        if total == 0 {
            return 0.0;
        }
        (self.l1_hit_bytes + self.l2_hit_bytes) as f64 / total as f64
    }

    /// Adds another stats record to this one, field by field.
    pub fn merge(&mut self, other: &KernelStats) {
        self.threads_launched += other.threads_launched;
        self.kernel_launches += other.kernel_launches;
        self.instructions += other.instructions;
        self.dram_bytes_read += other.dram_bytes_read;
        self.dram_bytes_written += other.dram_bytes_written;
        self.l1_hit_bytes += other.l1_hit_bytes;
        self.l2_hit_bytes += other.l2_hit_bytes;
        self.rt_triangle_tests += other.rt_triangle_tests;
        self.sw_intersection_tests += other.sw_intersection_tests;
        self.bvh_nodes_visited += other.bvh_nodes_visited;
        self.rt_box_tests += other.rt_box_tests;
        self.early_aborts += other.early_aborts;
        self.any_hit_invocations += other.any_hit_invocations;
    }
}

/// Accumulates [`KernelStats`] across the lifetime of a device, and keeps the
/// most recent kernel's stats separately (the equivalent of inspecting one
/// kernel in Nsight Compute).
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    inner: Arc<Mutex<ProfilerState>>,
}

#[derive(Debug, Default)]
struct ProfilerState {
    total: KernelStats,
    last_kernel: KernelStats,
    kernels_recorded: u64,
}

impl Profiler {
    /// Creates a profiler with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the counters of one finished kernel.
    pub fn record_kernel(&self, stats: KernelStats) {
        let mut st = self.inner.lock();
        st.total.merge(&stats);
        st.last_kernel = stats;
        st.kernels_recorded += 1;
    }

    /// Counters accumulated over every recorded kernel.
    pub fn total(&self) -> KernelStats {
        self.inner.lock().total
    }

    /// Counters of the most recently recorded kernel.
    pub fn last_kernel(&self) -> KernelStats {
        self.inner.lock().last_kernel
    }

    /// Number of kernels recorded so far.
    pub fn kernels_recorded(&self) -> u64 {
        self.inner.lock().kernels_recorded
    }

    /// Clears all counters.
    pub fn reset(&self) {
        *self.inner.lock() = ProfilerState::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = KernelStats {
            instructions: 10,
            dram_bytes_read: 100,
            ..KernelStats::new()
        };
        let b = KernelStats {
            instructions: 5,
            dram_bytes_read: 50,
            early_aborts: 2,
            ..KernelStats::new()
        };
        a.merge(&b);
        assert_eq!(a.instructions, 15);
        assert_eq!(a.dram_bytes_read, 150);
        assert_eq!(a.early_aborts, 2);
    }

    #[test]
    fn cache_hit_rate_handles_zero() {
        assert_eq!(KernelStats::new().cache_hit_rate(), 0.0);
        let s = KernelStats {
            dram_bytes_read: 25,
            l1_hit_bytes: 50,
            l2_hit_bytes: 25,
            ..KernelStats::new()
        };
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(s.total_bytes_accessed(), 100);
    }

    #[test]
    fn profiler_accumulates_and_tracks_last() {
        let p = Profiler::new();
        p.record_kernel(KernelStats {
            instructions: 10,
            ..KernelStats::new()
        });
        p.record_kernel(KernelStats {
            instructions: 30,
            ..KernelStats::new()
        });
        assert_eq!(p.total().instructions, 40);
        assert_eq!(p.last_kernel().instructions, 30);
        assert_eq!(p.kernels_recorded(), 2);
        p.reset();
        assert_eq!(p.total().instructions, 0);
        assert_eq!(p.kernels_recorded(), 0);
    }

    #[test]
    fn profiler_is_thread_safe() {
        let p = Profiler::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = p.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        p.record_kernel(KernelStats {
                            instructions: 1,
                            ..KernelStats::new()
                        });
                    }
                });
            }
        });
        assert_eq!(p.total().instructions, 400);
        assert_eq!(p.kernels_recorded(), 400);
    }
}
