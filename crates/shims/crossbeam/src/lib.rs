//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is used by this workspace (the kernel
//! executors fan work out to scoped worker threads). Since Rust 1.63 the
//! standard library provides scoped threads natively, so this shim adapts
//! `std::thread::scope` to crossbeam's slightly different signatures: the
//! scope closure result is wrapped in `Ok`, and spawned closures receive a
//! scope reference they can ignore.

pub mod thread {
    //! Scoped threads with crossbeam's API shape.

    /// Scope handle passed to [`scope`] closures; spawns scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (crossbeam
        /// style) so nested spawns are possible.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope in which spawned threads may borrow from the caller's
    /// stack. All threads are joined before the call returns.
    ///
    /// The `Result` wrapper mirrors crossbeam: this implementation always
    /// returns `Ok` (panics in unjoined threads propagate as panics, exactly
    /// like `std::thread::scope`).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                handles.push(scope.spawn(move |_| chunk.iter().sum::<u64>()));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .sum::<u64>()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawns_through_the_scope_argument() {
        let n = crate::thread::scope(|scope| {
            let h = scope.spawn(|inner| {
                let h2 = inner.spawn(|_| 21u32);
                h2.join().expect("inner") * 2
            });
            h.join().expect("outer")
        })
        .expect("scope");
        assert_eq!(n, 42);
    }
}
