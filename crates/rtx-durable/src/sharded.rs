//! [`ShardedDurableIndex`]: per-shard WALs plus a root commit journal, so
//! a sharded backend persists and recovers *in parallel* on the worker
//! pool.
//!
//! # Commit protocol
//!
//! One update batch fans out to its owning shards; every per-shard record
//! of the batch carries the same bsn, and the batch is *committed* by a
//! [`WalPayload::Commit`] record with that bsn in the root journal (which
//! also persists the global row allocator). Recovery computes the commit
//! frontier from the root checkpoint and the journal, then opens each
//! shard WAL with the frontier as its cut-off: shard-side records of a
//! batch whose commit never reached the disk are physically truncated, so
//! a crash between the shard appends and the journal append rolls the
//! whole batch back.
//!
//! Per-shard insert records carry the *global* rowIDs assigned in batch
//! order — globals never renumber (the shard row mirrors preserve them
//! across compactions), which is also why an uncommitted, truncated `Swap`
//! record is harmless: the in-flight rebuild simply restarts during replay
//! and lands at the next live poll.
//!
//! # Consistency under lazy fsync
//!
//! With [`FsyncPolicy::Always`](crate::FsyncPolicy::Always) (the default)
//! an acknowledged batch is fully durable and recovery is cross-shard
//! consistent. The lazy policies (`EveryN`, `Never`) weaken this to
//! *per-shard prefix consistency*: a commit record may survive a crash
//! that lost a shard's record of the same batch, so the recovered index
//! can hold a batch partially — each shard still recovers a clean prefix
//! of its own stream, mirroring the documented non-atomicity of sharded
//! updates themselves.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gpu_device::executor::parallel_map;
use rtx_query::{
    BatchOutcome, Capabilities, DurableStats, ExecArena, IndexBuildMetrics, IndexError, IndexSpec,
    MemoryUsage, QueryBatch, QueryOps, QueryOutcome, Registry, SecondaryIndex, ShardSpec,
    UpdatableIndex, UpdateReport, MISS,
};
use rtx_shard::{RouterConfig, ShardedIndex};

use crate::config::DurableConfig;
use crate::durable::{durable_label, WAL_SUBDIR};
use crate::io_err;
use crate::record::{WalPayload, WalRecord};
use crate::snapshot::{read_latest_snapshot, write_snapshot, Snapshot};
use crate::wal::WriteAheadLog;

/// Root-journal subdirectory of a sharded durable index directory.
const JOURNAL_SUBDIR: &str = "journal";
/// Root-checkpoint subdirectory (the global allocator + frontier).
const ROOT_SUBDIR: &str = "root";

fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:03}"))
}

/// One shard's slice of an update batch, in batch order.
#[derive(Default)]
struct Route {
    keys: Vec<u64>,
    values: Vec<u64>,
    globals: Vec<u32>,
}

/// A WAL-backed persistent wrapper around a [`ShardedIndex`]: one WAL and
/// snapshot chain per shard, one root journal for cross-shard commits.
/// Shards recover in parallel and snap back together through
/// [`ShardedIndex::from_parts`].
pub struct ShardedDurableIndex {
    label: String,
    inner: ShardedIndex,
    shard_wals: Vec<WriteAheadLog>,
    journal: WriteAheadLog,
    dir: PathBuf,
    config: DurableConfig,
    /// Next batch sequence number to log (shared by shard WALs + journal).
    bsn: u64,
    snapshots: u64,
    last_snapshot_bsn: u64,
    last_snapshot_bytes: u64,
    replayed_batches: u64,
    has_values: bool,
}

impl ShardedDurableIndex {
    /// Creates a fresh sharded durable index at `dir`: builds the sharded
    /// backend over the spec's columns, snapshots every (trivially clean)
    /// shard plus the root allocator, and starts the empty WALs.
    pub fn create(
        registry: &Registry,
        base: &str,
        spec: &IndexSpec<'_>,
        dir: &Path,
        config: DurableConfig,
    ) -> Result<Self, IndexError> {
        let label = durable_label(base);
        let shard_spec = ShardSpec::parse(base).ok_or_else(|| IndexError::Backend {
            backend: label.clone().into(),
            message: format!("{base:?} is not a sharded spec"),
        })?;
        let inner = ShardedIndex::build_updatable(registry, &shard_spec, spec)?;
        let has_values = inner.has_value_column();
        let shard_rows = inner
            .shard_checkpoint_rows()
            .ok_or_else(|| IndexError::Backend {
                backend: label.clone().into(),
                message: "freshly built shards are not in a clean state; cannot snapshot"
                    .to_string(),
            })?;
        let last_snapshot_bytes =
            write_all_snapshots(dir, 0, &shard_rows, has_values, inner.next_row(), &label)?;
        let journal = WriteAheadLog::create(&dir.join(JOURNAL_SUBDIR), &config)
            .map_err(|e| io_err(&label, e))?;
        let shard_wals = (0..inner.shard_count())
            .map(|s| WriteAheadLog::create(&shard_dir(dir, s).join(WAL_SUBDIR), &config))
            .collect::<std::io::Result<Vec<_>>>()
            .map_err(|e| io_err(&label, e))?;
        Ok(ShardedDurableIndex {
            label,
            inner,
            shard_wals,
            journal,
            dir: dir.to_path_buf(),
            config,
            bsn: 1,
            snapshots: shard_rows.len() as u64 + 1,
            last_snapshot_bsn: 0,
            last_snapshot_bytes,
            replayed_batches: 0,
            has_values,
        })
    }

    /// Reopens the sharded durable index at `dir`. `router` and
    /// `has_values` come from the manifest (range partition bounds cannot
    /// be re-derived — the original build column is gone). Shards recover
    /// concurrently on the worker pool.
    pub fn open(
        registry: &Registry,
        base: &str,
        spec: &IndexSpec<'_>,
        dir: &Path,
        config: DurableConfig,
        router: RouterConfig,
        has_values: bool,
    ) -> Result<Self, IndexError> {
        let label = durable_label(base);
        let shard_spec = ShardSpec::parse(base).ok_or_else(|| IndexError::Backend {
            backend: label.clone().into(),
            message: format!("{base:?} is not a sharded spec"),
        })?;

        // The commit frontier: the root checkpoint's bsn, advanced by every
        // surviving journal commit. The journal also carries the global row
        // allocator forward.
        let (root, _) = read_latest_snapshot(&dir.join(ROOT_SUBDIR))
            .map_err(|e| io_err(&label, e))?
            .ok_or_else(|| IndexError::Backend {
                backend: label.clone().into(),
                message: format!("no intact root checkpoint in {}", dir.display()),
            })?;
        let (journal, commits) = WriteAheadLog::open(&dir.join(JOURNAL_SUBDIR), &config, None)
            .map_err(|e| io_err(&label, e))?;
        let mut frontier = root.bsn;
        let mut next_row = root.next_row;
        for record in &commits {
            if let WalPayload::Commit { next_row: row } = record.payload {
                if record.bsn >= frontier {
                    frontier = record.bsn;
                    next_row = next_row.max(row);
                }
            }
        }

        // Parallel per-shard recovery: snapshot → rebuild → WAL replay,
        // each shard cut at the commit frontier.
        let shard_count = router.shard_count();
        let recovered = parallel_map((0..shard_count).collect::<Vec<_>>(), |_, s| {
            recover_shard(
                registry,
                &shard_spec.backend,
                spec,
                &shard_dir(dir, s),
                &config,
                frontier,
            )
        });
        let mut parts = Vec::with_capacity(shard_count);
        let mut shard_wals = Vec::with_capacity(shard_count);
        let mut replayed_batches = 0;
        for shard in recovered {
            let (backend, mirror, wal, replayed) = shard?;
            parts.push((backend, mirror));
            shard_wals.push(wal);
            replayed_batches += replayed;
        }
        let inner =
            ShardedIndex::from_parts(base.to_string(), router, parts, has_values, next_row)?;
        Ok(ShardedDurableIndex {
            label,
            inner,
            shard_wals,
            journal,
            dir: dir.to_path_buf(),
            config,
            bsn: frontier + 1,
            snapshots: 0,
            last_snapshot_bsn: root.bsn,
            last_snapshot_bytes: 0,
            replayed_batches,
            has_values,
        })
    }

    /// The wrapped sharded backend (for inspection and the manifest).
    pub fn inner(&self) -> &ShardedIndex {
        &self.inner
    }

    fn next_bsn(&mut self) -> u64 {
        let bsn = self.bsn;
        self.bsn += 1;
        bsn
    }

    fn check_value_batch(&self, keys: &[u64], values: &[u64]) -> Result<(), IndexError> {
        if keys.len() != values.len() {
            return Err(IndexError::ValueColumnLengthMismatch {
                expected: keys.len(),
                actual: values.len(),
            });
        }
        Ok(())
    }

    /// The global-capacity precheck the inner router would fail *after* the
    /// batch was logged; failing it here keeps doomed batches out of the
    /// WAL entirely.
    fn check_capacity(&self, incoming: usize) -> Result<(), IndexError> {
        if self.inner.next_row() + incoming as u64 >= MISS as u64 {
            return Err(IndexError::CapacityOverflow {
                backend: self.label.clone().into(),
                keys: incoming,
                limit: (MISS as u64 - 1).saturating_sub(self.inner.next_row()),
            });
        }
        Ok(())
    }

    /// Splits a batch by the inner router, assigning global rowIDs in batch
    /// order exactly as [`ShardedIndex`] will when the batch applies.
    fn route(&self, keys: &[u64], values: Option<&[u64]>, assign_rows: bool) -> Vec<Route> {
        let mut routes: Vec<Route> = (0..self.inner.shard_count())
            .map(|_| Route::default())
            .collect();
        let mut next_row = self.inner.next_row();
        for (i, &key) in keys.iter().enumerate() {
            let route = &mut routes[self.inner.router().shard_of_point(key)];
            route.keys.push(key);
            if let Some(values) = values {
                route.values.push(values[i]);
            }
            if assign_rows {
                route.globals.push(next_row as u32);
                next_row += 1;
            }
        }
        routes
    }

    /// Appends one record per non-empty route to the owning shard WALs
    /// (shared bsn), flushes them, then commits the batch in the root
    /// journal with the post-batch allocator position.
    fn log_routed(
        &mut self,
        bsn: u64,
        routes: Vec<Route>,
        make: impl Fn(Route) -> WalPayload,
        next_row_after: u64,
    ) -> Result<(), IndexError> {
        for (s, route) in routes.into_iter().enumerate() {
            if route.keys.is_empty() {
                continue;
            }
            self.shard_wals[s]
                .append(&WalRecord::new(bsn, make(route)))
                .and_then(|_| self.shard_wals[s].commit())
                .map_err(|e| io_err(&self.label, e))?;
        }
        self.commit_point(bsn, next_row_after)
    }

    /// The cross-shard commit: one `Commit` record in the root journal.
    fn commit_point(&mut self, bsn: u64, next_row: u64) -> Result<(), IndexError> {
        self.journal
            .append(&WalRecord::new(bsn, WalPayload::Commit { next_row }))
            .and_then(|_| self.journal.commit())
            .map_err(|e| io_err(&self.label, e))
    }

    /// Lands completed background swaps shard by shard, logging a `Swap`
    /// record into each affected shard's WAL (one shared bsn).
    fn land_swaps(&mut self) -> Result<u64, IndexError> {
        let landed = self.inner.poll_shard_reorganisations()?;
        let total: u64 = landed.iter().sum();
        if total > 0 {
            let bsn = self.next_bsn();
            for (s, &count) in landed.iter().enumerate() {
                if count > 0 {
                    self.shard_wals[s]
                        .append(&WalRecord::new(bsn, WalPayload::Swap))
                        .and_then(|_| self.shard_wals[s].commit())
                        .map_err(|e| io_err(&self.label, e))?;
                }
            }
            let next_row = self.inner.next_row();
            self.commit_point(bsn, next_row)?;
        }
        Ok(total)
    }

    fn total_wal_bytes(&self) -> u64 {
        self.shard_wals.iter().map(|w| w.bytes()).sum::<u64>() + self.journal.bytes()
    }

    fn maybe_checkpoint(&mut self) -> Result<(), IndexError> {
        if self.total_wal_bytes() < self.config.snapshot_wal_bytes {
            return Ok(());
        }
        match self.checkpoint_now() {
            Ok(_) => Ok(()),
            Err(IndexError::UnsupportedOperation { .. }) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// The sharded checkpoint protocol: a `Compact` record in every shard
    /// WAL (forced to disk) committed in the journal, a forced compaction
    /// to clean state, one snapshot per shard plus the root checkpoint, and
    /// truncation of every log through the checkpoint bsn.
    fn checkpoint_now(&mut self) -> Result<u64, IndexError> {
        let bsn = self.next_bsn();
        for wal in &mut self.shard_wals {
            wal.append(&WalRecord::new(bsn, WalPayload::Compact))
                .and_then(|_| wal.sync())
                .map_err(|e| io_err(&self.label, e))?;
        }
        let next_row = self.inner.next_row();
        self.journal
            .append(&WalRecord::new(bsn, WalPayload::Commit { next_row }))
            .and_then(|_| self.journal.sync())
            .map_err(|e| io_err(&self.label, e))?;
        self.inner.compact()?;
        let shard_rows = self
            .inner
            .shard_checkpoint_rows()
            .ok_or_else(|| IndexError::Backend {
                backend: self.label.clone().into(),
                message: "shards did not reach a clean state after compaction; cannot snapshot"
                    .to_string(),
            })?;
        let bytes = write_all_snapshots(
            &self.dir,
            bsn,
            &shard_rows,
            self.has_values,
            self.inner.next_row(),
            &self.label,
        )?;
        for wal in &mut self.shard_wals {
            wal.truncate_through(bsn)
                .map_err(|e| io_err(&self.label, e))?;
        }
        self.journal
            .truncate_through(bsn)
            .map_err(|e| io_err(&self.label, e))?;
        self.snapshots += shard_rows.len() as u64 + 1;
        self.last_snapshot_bsn = bsn;
        self.last_snapshot_bytes = bytes;
        Ok(1)
    }
}

/// Writes one snapshot per shard (its clean `(key, value, global)` rows)
/// plus the root checkpoint (no rows — just the frontier bsn and the
/// global allocator). Returns the total bytes written.
fn write_all_snapshots(
    dir: &Path,
    bsn: u64,
    shard_rows: &[Vec<(u64, u64, u32)>],
    has_values: bool,
    next_row: u64,
    label: &str,
) -> Result<u64, IndexError> {
    let mut total = 0;
    for (s, rows) in shard_rows.iter().enumerate() {
        let snapshot = Snapshot {
            bsn,
            next_row: 0,
            has_values,
            rows: rows.iter().map(|&(k, v, _)| (k, v)).collect(),
            globals: Some(rows.iter().map(|&(_, _, g)| g).collect()),
        };
        total += write_snapshot(&shard_dir(dir, s), &snapshot).map_err(|e| io_err(label, e))?;
    }
    let root = Snapshot {
        bsn,
        next_row,
        has_values,
        rows: Vec::new(),
        globals: None,
    };
    total += write_snapshot(&dir.join(ROOT_SUBDIR), &root).map_err(|e| io_err(label, e))?;
    Ok(total)
}

/// Recovers one shard: rebuild from its snapshot, replay its WAL (cut at
/// the commit frontier), and reconstruct the local→global row mirror by
/// replicating the live mirror transitions record for record.
#[allow(clippy::type_complexity)]
fn recover_shard(
    registry: &Registry,
    backend: &str,
    spec: &IndexSpec<'_>,
    dir: &Path,
    config: &DurableConfig,
    frontier: u64,
) -> Result<
    (
        Box<dyn UpdatableIndex>,
        Vec<Option<(u64, u32)>>,
        WriteAheadLog,
        u64,
    ),
    IndexError,
> {
    let label = durable_label(backend);
    let (snapshot, _) = read_latest_snapshot(dir)
        .map_err(|e| io_err(&label, e))?
        .ok_or_else(|| IndexError::Backend {
            backend: label.clone().into(),
            message: format!("no intact shard snapshot in {}", dir.display()),
        })?;
    let snapshot_globals = snapshot
        .globals
        .clone()
        .ok_or_else(|| IndexError::Backend {
            backend: label.clone().into(),
            message: "shard snapshot carries no global rowIDs".to_string(),
        })?;
    let (keys, values) = snapshot.columns();
    let inner_spec = IndexSpec {
        device: spec.device,
        keys: &keys,
        values: values.map(Arc::from),
        builder: spec.builder,
        durability: spec.durability.clone(),
        // Composite schemas wrap outside the durable layer; shard rebuilds
        // happen in the encoded key space.
        key_schema: None,
        rows: None,
    };
    let mut ix = registry.build_updatable(backend, &inner_spec)?;
    let mut mirror: Vec<Option<(u64, u32)>> = snapshot
        .rows
        .iter()
        .zip(&snapshot_globals)
        .map(|(&(key, _), &global)| Some((key, global)))
        .collect();

    let (wal, records) = WriteAheadLog::open(&dir.join(WAL_SUBDIR), config, Some(frontier))
        .map_err(|e| io_err(&label, e))?;
    let mut replayed = 0u64;
    for record in &records {
        if record.bsn <= snapshot.bsn {
            continue;
        }
        match &record.payload {
            WalPayload::Insert {
                keys,
                values,
                globals,
            } => {
                replayed += 1;
                let globals = require_globals(globals, &label)?;
                if let Ok(report) = ix.insert(keys, values) {
                    mirror.extend(keys.iter().zip(globals).map(|(&k, &g)| Some((k, g))));
                    if report.reorganisations > 0 {
                        mirror.retain(Option::is_some);
                    }
                }
            }
            WalPayload::Delete { keys } => {
                replayed += 1;
                if let Ok(report) = ix.delete(keys) {
                    mirror_delete(&mut mirror, keys);
                    if report.reorganisations > 0 {
                        mirror.retain(Option::is_some);
                    }
                }
            }
            WalPayload::Upsert {
                keys,
                values,
                globals,
            } => {
                replayed += 1;
                let globals = require_globals(globals, &label)?;
                if let Ok(report) = ix.upsert(keys, values) {
                    mirror_delete(&mut mirror, keys);
                    mirror.extend(keys.iter().zip(globals).map(|(&k, &g)| Some((k, g))));
                    if report.reorganisations > 0 {
                        mirror.retain(Option::is_some);
                    }
                }
            }
            WalPayload::Swap => {
                if ix.await_reorganisation().unwrap_or(0) > 0 {
                    mirror.retain(Option::is_some);
                }
            }
            WalPayload::Compact => {
                if ix.compact().is_ok() {
                    mirror.retain(Option::is_some);
                }
            }
            WalPayload::Freeze | WalPayload::SyncCompact | WalPayload::Commit { .. } => {}
        }
    }
    Ok((ix, mirror, wal, replayed))
}

fn require_globals<'a>(
    globals: &'a Option<Vec<u32>>,
    label: &str,
) -> Result<&'a [u32], IndexError> {
    globals.as_deref().ok_or_else(|| IndexError::Backend {
        backend: label.to_string().into(),
        message: "per-shard insert record carries no global rowIDs".to_string(),
    })
}

/// Mirrors [`ShardRows::delete`]: every live mirror row holding a doomed
/// key dies in place (slots stay until the next compaction).
fn mirror_delete(mirror: &mut [Option<(u64, u32)>], keys: &[u64]) {
    let doomed: HashSet<u64> = keys.iter().copied().collect();
    for entry in mirror.iter_mut() {
        if matches!(entry, Some((k, _)) if doomed.contains(k)) {
            *entry = None;
        }
    }
}

impl SecondaryIndex for ShardedDurableIndex {
    fn name(&self) -> &str {
        &self.label
    }

    fn key_count(&self) -> usize {
        self.inner.key_count()
    }

    fn memory_bytes(&self) -> u64 {
        self.inner.memory_bytes()
    }

    fn build_metrics(&self) -> IndexBuildMetrics {
        self.inner.build_metrics()
    }

    fn capabilities(&self) -> Capabilities {
        self.inner.capabilities()
    }

    fn has_value_column(&self) -> bool {
        self.has_values
    }

    fn memory_usage(&self) -> MemoryUsage {
        let mut usage = self.inner.memory_usage();
        usage.wal_buffer_bytes += self
            .shard_wals
            .iter()
            .map(|w| w.unsynced_bytes())
            .sum::<u64>()
            + self.journal.unsynced_bytes();
        usage
    }

    fn durability_stats(&self) -> Option<DurableStats> {
        Some(DurableStats {
            wal_bytes: self.total_wal_bytes(),
            fsyncs: self.shard_wals.iter().map(|w| w.fsyncs()).sum::<u64>() + self.journal.fsyncs(),
            snapshots: self.snapshots,
            last_snapshot_bsn: self.last_snapshot_bsn,
            last_snapshot_bytes: self.last_snapshot_bytes,
            replayed_batches: self.replayed_batches,
        })
    }

    fn point_chunk(&self, queries: &[u64], fetch_values: bool) -> Result<BatchOutcome, IndexError> {
        self.inner.point_chunk(queries, fetch_values)
    }

    fn range_chunk(
        &self,
        ranges: &[(u64, u64)],
        fetch_values: bool,
    ) -> Result<BatchOutcome, IndexError> {
        self.inner.range_chunk(ranges, fetch_values)
    }

    /// Delegates to the sharded scatter/gather path (concurrent per-shard
    /// execution, global rowID translation).
    fn execute(&self, batch: &QueryBatch) -> Result<QueryOutcome, IndexError> {
        self.inner.execute(batch)
    }

    fn execute_in(
        &self,
        batch: &QueryBatch,
        arena: &mut ExecArena,
    ) -> Result<QueryOutcome, IndexError> {
        self.inner.execute_in(batch, arena)
    }

    fn execute_ops_in(
        &self,
        ops: &QueryOps,
        arena: &mut ExecArena,
    ) -> Result<QueryOutcome, IndexError> {
        self.inner.execute_ops_in(ops, arena)
    }
}

impl UpdatableIndex for ShardedDurableIndex {
    fn insert(&mut self, keys: &[u64], values: &[u64]) -> Result<UpdateReport, IndexError> {
        self.check_value_batch(keys, values)?;
        self.check_capacity(keys.len())?;
        self.land_swaps()?;
        let bsn = self.next_bsn();
        let routes = self.route(keys, Some(values), true);
        let next_row_after = self.inner.next_row() + keys.len() as u64;
        self.log_routed(
            bsn,
            routes,
            |r| WalPayload::Insert {
                keys: r.keys,
                values: r.values,
                globals: Some(r.globals),
            },
            next_row_after,
        )?;
        let report = self.inner.insert(keys, values)?;
        self.maybe_checkpoint()?;
        Ok(report)
    }

    fn delete(&mut self, keys: &[u64]) -> Result<UpdateReport, IndexError> {
        self.land_swaps()?;
        let bsn = self.next_bsn();
        let routes = self.route(keys, None, false);
        let next_row_after = self.inner.next_row();
        self.log_routed(
            bsn,
            routes,
            |r| WalPayload::Delete { keys: r.keys },
            next_row_after,
        )?;
        let report = self.inner.delete(keys)?;
        self.maybe_checkpoint()?;
        Ok(report)
    }

    fn upsert(&mut self, keys: &[u64], values: &[u64]) -> Result<UpdateReport, IndexError> {
        self.check_value_batch(keys, values)?;
        self.check_capacity(keys.len())?;
        self.land_swaps()?;
        let bsn = self.next_bsn();
        let routes = self.route(keys, Some(values), true);
        let next_row_after = self.inner.next_row() + keys.len() as u64;
        self.log_routed(
            bsn,
            routes,
            |r| WalPayload::Upsert {
                keys: r.keys,
                values: r.values,
                globals: Some(r.globals),
            },
            next_row_after,
        )?;
        let report = self.inner.upsert(keys, values)?;
        self.maybe_checkpoint()?;
        Ok(report)
    }

    fn poll_reorganisation(&mut self) -> Result<u64, IndexError> {
        self.land_swaps()
    }

    fn await_reorganisation(&mut self) -> Result<u64, IndexError> {
        let landed = self.inner.await_shard_reorganisations()?;
        let total: u64 = landed.iter().sum();
        if total > 0 {
            let bsn = self.next_bsn();
            for (s, &count) in landed.iter().enumerate() {
                if count > 0 {
                    self.shard_wals[s]
                        .append(&WalRecord::new(bsn, WalPayload::Swap))
                        .and_then(|_| self.shard_wals[s].commit())
                        .map_err(|e| io_err(&self.label, e))?;
                }
            }
            let next_row = self.inner.next_row();
            self.commit_point(bsn, next_row)?;
        }
        Ok(total)
    }

    fn reorganisation_in_flight(&self) -> bool {
        self.inner.reorganisation_in_flight()
    }

    /// An explicit compaction reaches every shard; each shard WAL gets the
    /// `Compact` record so replay re-runs it in place.
    fn compact(&mut self) -> Result<UpdateReport, IndexError> {
        let bsn = self.next_bsn();
        for wal in &mut self.shard_wals {
            wal.append(&WalRecord::new(bsn, WalPayload::Compact))
                .and_then(|_| wal.commit())
                .map_err(|e| io_err(&self.label, e))?;
        }
        let next_row = self.inner.next_row();
        self.commit_point(bsn, next_row)?;
        self.inner.compact()
    }

    fn checkpoint(&mut self) -> Result<u64, IndexError> {
        self.checkpoint_now()
    }
}

impl std::fmt::Debug for ShardedDurableIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDurableIndex")
            .field("label", &self.label)
            .field("dir", &self.dir)
            .field("shards", &self.shard_wals.len())
            .field("bsn", &self.bsn)
            .finish()
    }
}
